//! §IV-A parity claims: "ZKROWNN is able to achieve the same BER and
//! detection success from extracted watermarks as DeepSigns" and
//! "ZKROWNN does not result in any lapses in model accuracy".
//!
//! We check that (a) the fixed-point in-circuit extraction agrees with the
//! float DeepSigns extraction on watermark decisions, (b) the circuit's
//! verdict agrees bit-for-bit with the fixed-point reference, and (c) the
//! proving pipeline never touches the model weights.

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::reference::extract_fixed;
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig, WatermarkKeys};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

fn watermarked_mlp(seed: u64) -> (Network, WatermarkKeys, zkrownn_nn::Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let gmm = GmmConfig {
        input_shape: vec![24],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 140, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(24, 16, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(16, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 5, 0.05);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 16,
            signature_bits: 12,
            num_triggers: 4,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    (net, keys, data)
}

#[test]
fn fixed_point_extraction_matches_float_decisions() {
    let (net, keys, _) = watermarked_mlp(311);
    let (float_bits, float_ber) = extract(&net, &keys);
    assert_eq!(float_ber, 0.0);

    let cfg = FixedConfig::default();
    let spec = spec_from_keys(&net, &keys, false, 0, &cfg);
    let fixed = extract_fixed(
        &spec.model,
        &spec.triggers,
        &spec.projection,
        &spec.signature,
        false,
        &cfg,
    );
    assert_eq!(fixed.decoded, float_bits, "same decoded watermark");
    assert_eq!(fixed.errors, 0, "same zero BER as DeepSigns");
}

#[test]
fn circuit_verdict_matches_fixed_reference_exactly() {
    let (net, keys, _) = watermarked_mlp(312);
    let cfg = FixedConfig::default();
    for fold in [false, true] {
        let spec = spec_from_keys(&net, &keys, fold, 0, &cfg);
        let built = spec.build().expect("witnessed synthesis");
        assert!(built.cs.is_satisfied().is_ok());
        let fixed = extract_fixed(
            &spec.model,
            &spec.triggers,
            &spec.projection,
            &spec.signature,
            fold,
            &cfg,
        );
        assert_eq!(
            built.verdict,
            fixed.errors as u64 <= spec.max_errors,
            "fold = {fold}"
        );
    }
}

#[test]
fn proving_pipeline_never_modifies_the_model() {
    // "our scheme does not modify the weights of the model at all"
    let (net, keys, _) = watermarked_mlp(313);
    let before = net.clone();
    let cfg = FixedConfig::default();
    let spec = spec_from_keys(&net, &keys, false, 0, &cfg);
    let _ = spec.build().expect("witnessed synthesis");
    // the float model is untouched by quantization and circuit building
    for (a, b) in net.layers.iter().zip(before.layers.iter()) {
        if let (Layer::Dense(x), Layer::Dense(y)) = (a, b) {
            assert_eq!(x.w, y.w);
            assert_eq!(x.b, y.b);
        }
    }
}

#[test]
fn unwatermarked_model_fails_detection_in_both_pipelines() {
    let (_, keys, _) = watermarked_mlp(314);
    let mut rng = rand::rngs::StdRng::seed_from_u64(315);
    let fresh = Network::new(vec![
        Layer::Dense(Dense::new(24, 16, &mut rng)),
        Layer::ReLU,
    ]);
    let (_, float_ber) = extract(&fresh, &keys);
    assert!(float_ber > 0.15, "float BER {float_ber}");
    let cfg = FixedConfig::default();
    let spec = spec_from_keys(&fresh, &keys, false, 0, &cfg);
    let fixed = extract_fixed(
        &spec.model,
        &spec.triggers,
        &spec.projection,
        &spec.signature,
        false,
        &cfg,
    );
    assert!(fixed.errors > 0, "fixed-point extraction must also fail");
}
