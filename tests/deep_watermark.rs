//! Watermarks embedded in *deeper* layers — §III-B.6: "ZKROWNN still works
//! when the watermark is embedded in deeper layers, at the cost of higher
//! prover complexity." Here the watermark sits *behind* a max-pooling
//! layer, so the extraction circuit must feed forward through
//! Conv → ReLU → MaxPool (exercising the MaxPool gadget extension).

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::reference::extract_fixed;
use zkrownn::Authority;
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Conv2d, Dense, GmmConfig, Layer, Network};

fn deep_watermarked(
    seed: u64,
) -> (
    Network,
    zkrownn_deepsigns::WatermarkKeys,
    zkrownn_nn::Dataset,
) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let gmm = GmmConfig {
        input_shape: vec![2, 8, 8],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 120, &mut rng);
    // Conv(4,3,1) → ReLU → MaxPool(2,2) → Flatten → Dense
    let mut net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(2, 4, 3, 1, &mut rng)), // 4×6×6
        Layer::ReLU,
        Layer::MaxPool2d { size: 2, stride: 2 }, // 4×3×3 = 36
        Layer::Flatten,
        Layer::Dense(Dense::new(36, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 4, 0.02);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 2, // the *pooled* activation maps — behind MaxPool
            activation_dim: 36,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0 / (36f32).sqrt(),
        },
        &data,
        &mut rng,
    );
    embed(
        &mut net,
        &keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 4.0,
            epochs: 25,
            lr: 0.01,
        },
    );
    (net, keys, data)
}

#[test]
fn deep_watermark_embeds_and_extracts() {
    let (net, keys, _) = deep_watermarked(501);
    let (_, ber) = extract(&net, &keys);
    assert!(ber <= 0.125, "post-pool embedding BER {ber}");
}

#[test]
fn circuit_through_maxpool_matches_reference() {
    let (net, keys, _) = deep_watermarked(502);
    let cfg = FixedConfig::default();
    let spec = spec_from_keys(&net, &keys, false, 1, &cfg);
    let built = spec.build().expect("witnessed synthesis");
    assert!(built.cs.is_satisfied().is_ok());
    let fixed = extract_fixed(
        &spec.model,
        &spec.triggers,
        &spec.projection,
        &spec.signature,
        false,
        &cfg,
    );
    assert_eq!(built.verdict, fixed.errors as u64 <= spec.max_errors);
}

#[test]
fn deep_watermark_ownership_proof_roundtrip() {
    let (net, keys, _) = deep_watermarked(503);
    let cfg = FixedConfig::default();
    let spec = spec_from_keys(&net, &keys, false, 1, &cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(504);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).expect("honest claim");
    assert!(
        claim.verdict(),
        "deep watermark must be recovered in-circuit"
    );
    verifier.verify(&claim).expect("verification succeeds");
}
