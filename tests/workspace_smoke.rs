//! Workspace wiring smoke test: proves and verifies one tiny MLP ownership
//! proof end-to-end **through the meta-crate's re-exports only**, so a
//! broken crate graph (missing re-export, path-dependency typo, feature
//! mismatch) fails here before anything subtler does.

use rand::SeedableRng;
use zkrownn_repro::zkrownn::benchmarks::spec_from_keys;
use zkrownn_repro::zkrownn::{Artifact, Authority, KeyRegistry, SignedClaim};
use zkrownn_repro::zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_repro::zkrownn_gadgets::FixedConfig;
use zkrownn_repro::zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

#[test]
fn tiny_mlp_ownership_proof_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Train a minimal classifier and embed a short watermark.
    let gmm = GmmConfig {
        input_shape: vec![8],
        num_classes: 3,
        mean_scale: 1.0,
        noise_std: 0.25,
    };
    let data = generate_gmm(&gmm, 90, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(8, 12, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(12, 3, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 4, 0.05);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 12,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    let (_, ber) = extract(&net, &keys);
    assert!(ber < 0.5, "embedding should beat a coin flip (ber = {ber})");

    // Setup → prove → wire round-trip → verify through the meta-crate paths.
    let spec = spec_from_keys(&net, &keys, false, 1, &FixedConfig::default());
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).expect("honest prover succeeds");
    let received = SignedClaim::from_bytes(&claim.to_bytes()).expect("claim decodes");
    verifier.verify(&received).expect("claim verifies");
    let mut registry = KeyRegistry::new();
    registry.register_kit(&verifier);
    registry
        .verify(&received)
        .expect("registry verification agrees");

    // Negative control: the claim must not transfer to a tampered model.
    let mut tampered = received.clone();
    if let zkrownn_repro::zkrownn::QuantLayer::Dense { w, .. } =
        &mut tampered.statement.model.layers[0]
    {
        w[0] += 1;
    }
    assert!(verifier.verify(&tampered).is_err());
}
