//! End-to-end ownership proof: train → watermark → setup → prove → verify,
//! including rejection paths. This is the full Figure-1 workflow of the
//! paper on a scaled-down MLP, driven through the role-typed
//! Authority/ProverKit/VerifierKit API.

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{Artifact, Authority, ExtractionSpec, SignedClaim, ZkrownnError};
use zkrownn_deepsigns::{embed, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

/// A small watermarked MLP + its extraction spec (fast enough for CI).
fn small_watermarked_spec(seed: u64) -> ExtractionSpec {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 120, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(20, 16, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(16, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 5, 0.05);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 16,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    assert_eq!(report.ber, 0.0, "embedding must reach zero BER");
    spec_from_keys(&net, &keys, false, 1, &FixedConfig::default())
}

#[test]
fn ownership_claim_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(301);
    let spec = small_watermarked_spec(300);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).expect("honest claim");
    assert!(claim.verdict(), "watermark must be recovered");
    assert_eq!(claim.circuit_id(), spec.circuit_id());
    verifier.verify(&claim).expect("verification must succeed");
}

#[test]
fn claim_survives_the_wire() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(302);
    let spec = small_watermarked_spec(300);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).unwrap();
    // the inner Groth16 proof stays 128 bytes, as in the paper
    let proof_bytes = claim.proof.proof.to_bytes();
    assert_eq!(
        proof_bytes.len(),
        128,
        "constant proof size, as in the paper"
    );
    // the whole claim round-trips with envelope + checksum intact
    let wire = claim.to_bytes();
    assert_eq!(wire.len(), Artifact::serialized_size(&claim));
    let received = SignedClaim::from_bytes(&wire).expect("claim decodes");
    assert_eq!(received, claim);
    verifier.verify(&received).expect("decoded claim verifies");
}

#[test]
fn verification_rejects_different_model() {
    // Claiming ownership of a model with different weights must fail.
    // A kit issued by Authority::setup is *bound* to the disputed model's
    // statement, so the re-targeted claim is caught by the statement pin;
    // even an unbound kit rejects it, because the weights are public
    // inputs and the pairing check breaks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let spec = small_watermarked_spec(300);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).unwrap();
    let mut other = claim.clone();
    // perturb one public weight in the claimed statement
    if let zkrownn::QuantLayer::Dense { w, .. } = &mut other.statement.model.layers[0] {
        w[0] += 1;
    }
    assert_eq!(
        verifier.verify(&other),
        Err(ZkrownnError::StatementMismatch)
    );

    let unbound =
        zkrownn::VerifierKit::from_parts(verifier.verifying_key().clone(), verifier.circuit_id());
    assert!(matches!(
        unbound.verify(&other),
        Err(ZkrownnError::InvalidProof(_))
    ));
    // the unbound kit still accepts the genuine claim
    unbound.verify(&claim).expect("genuine claim verifies");
}

#[test]
fn wrong_watermark_is_a_negative_verdict_not_a_forgery() {
    // A prover with the wrong signature gets a *valid proof of verdict 0*.
    // The API reports that as NegativeVerdict — distinguishable from a
    // forged/tampered proof, which reports InvalidProof.
    let mut rng = rand::rngs::StdRng::seed_from_u64(304);
    let mut spec = small_watermarked_spec(300);
    // flip half the signature bits — BER jumps above θ
    for b in spec.signature.iter_mut().take(4) {
        *b = !*b;
    }
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).expect("circuit still satisfiable");
    assert!(!claim.verdict());
    assert_eq!(verifier.verify(&claim), Err(ZkrownnError::NegativeVerdict));
}

#[test]
fn tampered_verdict_is_rejected() {
    // Flipping the claimed verdict bit after proving must not verify.
    let mut rng = rand::rngs::StdRng::seed_from_u64(305);
    let spec = small_watermarked_spec(300);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let mut claim = prover.prove(&mut rng).unwrap();
    claim.proof.verdict = false; // lie about the public output
    assert!(matches!(
        verifier.verify(&claim),
        Err(ZkrownnError::InvalidProof(_))
    ));
}

#[test]
fn claim_against_wrong_circuit_is_a_mismatch() {
    // A statement whose shape hashes to a different circuit id than the
    // proof names must be caught before any pairing work. The bound kit
    // rejects it even earlier, at the statement pin.
    let mut rng = rand::rngs::StdRng::seed_from_u64(306);
    let spec = small_watermarked_spec(300);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let mut claim = prover.prove(&mut rng).unwrap();
    claim.statement.max_errors += 1; // different threshold ⇒ different shape
    assert_eq!(
        verifier.verify(&claim),
        Err(ZkrownnError::StatementMismatch)
    );

    let unbound =
        zkrownn::VerifierKit::from_parts(verifier.verifying_key().clone(), verifier.circuit_id());
    assert!(matches!(
        unbound.verify(&claim),
        Err(ZkrownnError::CircuitMismatch { .. })
    ));
}

#[test]
fn public_input_vector_layout() {
    let spec = small_watermarked_spec(300);
    let inputs = spec.public_inputs(true);
    // weights + bias of layer 0 (ReLU adds none) + verdict
    assert_eq!(inputs.len(), 20 * 16 + 16 + 1);
    assert_eq!(*inputs.last().unwrap(), Fr::one());
    // quantized weights are embedded as signed field elements
    let w0 = spec.model.params_in_order()[0];
    assert_eq!(inputs[0], Fr::from_i128(w0));
    // the statement derives the identical vector
    assert_eq!(spec.statement().public_inputs(true), inputs);
}

#[test]
fn statement_only_setup_is_witness_free_end_to_end() {
    // The authority side of the redesigned flow: setup from the *public
    // statement alone* — a value that never contained a witness — and the
    // owner assembles their kit from the published proving key.
    let mut rng = rand::rngs::StdRng::seed_from_u64(307);
    let spec = small_watermarked_spec(300);
    let statement = spec.statement();
    let (pk, verifier) = zkrownn::Authority::setup_statement(&statement, &mut rng);
    assert_eq!(verifier.circuit_id(), spec.circuit_id());
    let prover = zkrownn::ProverKit::from_parts(pk, spec);
    let claim = prover.prove(&mut rng).expect("honest claim");
    assert!(claim.verdict());
    verifier.verify(&claim).expect("verification must succeed");
}
