//! End-to-end ownership proof: train → watermark → setup → prove → verify,
//! including rejection paths. This is the full Figure-1 workflow of the
//! paper on a scaled-down MLP.

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{prove, setup, verify, ExtractionSpec, OwnershipError};
use zkrownn_deepsigns::{embed, generate_keys, EmbedConfig, KeyGenConfig};
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::Proof;
use zkrownn_nn::{generate_gmm, Dense, GmmConfig, Layer, Network};

/// A small watermarked MLP + its extraction spec (fast enough for CI).
fn small_watermarked_spec(seed: u64) -> ExtractionSpec {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 120, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(20, 16, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(16, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 5, 0.05);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 16,
            signature_bits: 8,
            num_triggers: 3,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let report = embed(&mut net, &keys, &data.xs, &data.ys, &EmbedConfig::default());
    assert_eq!(report.ber, 0.0, "embedding must reach zero BER");
    spec_from_keys(&net, &keys, false, 1, &FixedConfig::default())
}

#[test]
fn ownership_proof_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(301);
    let spec = small_watermarked_spec(300);
    let pk = setup(&spec, &mut rng);
    let proof = prove(&pk, &spec, &mut rng).expect("honest proof");
    assert!(proof.verdict, "watermark must be recovered");
    verify(&pk.vk, &spec, &proof).expect("verification must succeed");
}

#[test]
fn proof_is_128_bytes_and_roundtrips() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(302);
    let spec = small_watermarked_spec(300);
    let pk = setup(&spec, &mut rng);
    let proof = prove(&pk, &spec, &mut rng).unwrap();
    let bytes = proof.proof.to_bytes();
    assert_eq!(bytes.len(), 128, "constant proof size, as in the paper");
    assert_eq!(Proof::from_bytes(&bytes).as_ref(), Some(&proof.proof));
}

#[test]
fn verification_rejects_different_model() {
    // Claiming ownership of a model with different weights must fail:
    // the weights are public inputs, so the verifier's input vector
    // diverges and the pairing check breaks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let spec = small_watermarked_spec(300);
    let pk = setup(&spec, &mut rng);
    let proof = prove(&pk, &spec, &mut rng).unwrap();
    let mut other = spec.clone();
    // perturb one public weight
    if let zkrownn::QuantLayer::Dense { w, .. } = &mut other.model.layers[0] {
        w[0] += 1;
    }
    assert!(matches!(
        verify(&pk.vk, &other, &proof),
        Err(OwnershipError::InvalidProof(_))
    ));
}

#[test]
fn wrong_watermark_produces_negative_verdict() {
    // A prover with the wrong signature gets a *valid proof of verdict 0*,
    // which `verify` refuses to accept as an ownership claim.
    let mut rng = rand::rngs::StdRng::seed_from_u64(304);
    let mut spec = small_watermarked_spec(300);
    // flip half the signature bits — BER jumps above θ
    for b in spec.signature.iter_mut().take(4) {
        *b = !*b;
    }
    let pk = setup(&spec, &mut rng);
    let proof = prove(&pk, &spec, &mut rng).expect("circuit still satisfiable");
    assert!(!proof.verdict);
    assert!(verify(&pk.vk, &spec, &proof).is_err());
}

#[test]
fn tampered_verdict_is_rejected() {
    // Flipping the claimed verdict bit after proving must not verify.
    let mut rng = rand::rngs::StdRng::seed_from_u64(305);
    let spec = small_watermarked_spec(300);
    let pk = setup(&spec, &mut rng);
    let mut proof = prove(&pk, &spec, &mut rng).unwrap();
    proof.verdict = false; // lie about the public output
    assert!(verify(&pk.vk, &spec, &proof).is_err());
}

#[test]
fn public_input_vector_layout() {
    let spec = small_watermarked_spec(300);
    let inputs = spec.public_inputs(true);
    // weights + bias of layer 0 (ReLU adds none) + verdict
    assert_eq!(inputs.len(), 20 * 16 + 16 + 1);
    assert_eq!(*inputs.last().unwrap(), Fr::one());
    // quantized weights are embedded as signed field elements
    let w0 = spec.model.params_in_order()[0];
    assert_eq!(inputs[0], Fr::from_i128(w0));
}
