//! Wire-format properties: every artifact round-trips bit-exactly, sizes
//! are self-consistent, and *any* single corrupted byte is rejected (or, at
//! minimum, lands in a different circuit).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use zkrownn::{
    Artifact, ArtifactKind, CircuitId, OwnershipProof, OwnershipStatement, QuantLayer,
    QuantizedModel, SignedClaim, WireError,
};
use zkrownn_curves::{G1Affine, G1Projective, G2Affine, G2Projective};
use zkrownn_ff::{Field, Fr};
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::{Proof, ProvingKey, VerifyingKey};

fn g1(s: u64) -> G1Affine {
    G1Projective::generator()
        .mul_scalar(Fr::from_u64(s))
        .into_affine()
}

fn g2(s: u64) -> G2Affine {
    G2Projective::generator()
        .mul_scalar(Fr::from_u64(s))
        .into_affine()
}

/// A dense-stack statement with randomized shape and parameters.
fn arb_statement() -> impl Strategy<Value = OwnershipStatement> {
    (1usize..4, 1usize..4, 1usize..5, 1usize..4, any::<u64>()).prop_map(
        |(in_dim, out_dim, signature_bits, num_triggers, seed)| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cfg = FixedConfig::default();
            let mut param = |n: usize| -> Vec<i128> {
                (0..n)
                    .map(|_| rng.gen_range(-1_000_000i64..1_000_000) as i128)
                    .collect()
            };
            OwnershipStatement {
                model: QuantizedModel {
                    layers: vec![
                        QuantLayer::Dense {
                            in_dim,
                            out_dim,
                            w: param(in_dim * out_dim),
                            b: param(out_dim),
                        },
                        QuantLayer::ReLU,
                    ],
                    input_len: in_dim,
                    cfg,
                },
                num_triggers,
                signature_bits,
                max_errors: rng.gen_range(0u64..8),
                fold_average: rng.gen(),
                cfg,
            }
        },
    )
}

fn arb_proof() -> impl Strategy<Value = Proof> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c)| Proof {
        a: g1(a),
        b: g2(b),
        c: g1(c),
    })
}

fn arb_vk() -> impl Strategy<Value = VerifyingKey> {
    (any::<u64>(), 1usize..5).prop_map(|(seed, n_abc)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        VerifyingKey {
            alpha_g1: g1(rng.gen()),
            beta_g2: g2(rng.gen()),
            gamma_g2: g2(rng.gen()),
            delta_g2: g2(rng.gen()),
            gamma_abc_g1: (0..n_abc).map(|_| g1(rng.gen())).collect(),
        }
    })
}

fn arb_pk() -> impl Strategy<Value = ProvingKey> {
    (arb_vk(), any::<u64>(), 0usize..3).prop_map(|(vk, seed, n)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g1s = |k: usize| (0..k).map(|_| g1(rng.gen())).collect::<Vec<_>>();
        ProvingKey {
            beta_g1: g1(3),
            delta_g1: g1(4),
            a_query: g1s(n + 1),
            b_g1_query: g1s(n),
            h_query: g1s(n + 2),
            l_query: g1s(n),
            b_g2_query: vec![g2(9); n],
            vk,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn statement_roundtrips(stmt in arb_statement()) {
        let wire = stmt.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&stmt));
        let back = OwnershipStatement::from_bytes(&wire).unwrap();
        prop_assert_eq!(&back, &stmt);
        prop_assert_eq!(back.circuit_id(), stmt.circuit_id());
        prop_assert_eq!(back.content_digest(), stmt.content_digest());
    }

    #[test]
    fn ownership_proof_roundtrips(proof in arb_proof(), stmt in arb_statement(), verdict in any::<bool>()) {
        let artifact = OwnershipProof {
            proof,
            verdict,
            circuit_id: stmt.circuit_id(),
        };
        let wire = artifact.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&artifact));
        prop_assert_eq!(OwnershipProof::from_bytes(&wire).unwrap(), artifact);
    }

    #[test]
    fn verifying_key_roundtrips(vk in arb_vk()) {
        let wire = Artifact::to_bytes(&vk);
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&vk));
        prop_assert_eq!(<VerifyingKey as Artifact>::from_bytes(&wire).unwrap(), vk);
    }

    #[test]
    fn proving_key_roundtrips(pk in arb_pk()) {
        let wire = Artifact::to_bytes(&pk);
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&pk));
        prop_assert_eq!(<ProvingKey as Artifact>::from_bytes(&wire).unwrap(), pk);
    }

    #[test]
    fn signed_claim_roundtrips(stmt in arb_statement(), proof in arb_proof()) {
        let claim = SignedClaim {
            proof: OwnershipProof {
                proof,
                verdict: true,
                circuit_id: stmt.circuit_id(),
            },
            statement: stmt,
        };
        let wire = claim.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&claim));
        prop_assert_eq!(SignedClaim::from_bytes(&wire).unwrap(), claim);
    }
}

fn fixture_statement() -> OwnershipStatement {
    let cfg = FixedConfig::default();
    OwnershipStatement {
        model: QuantizedModel {
            layers: vec![
                QuantLayer::Dense {
                    in_dim: 3,
                    out_dim: 2,
                    w: vec![7, -9, 11, -13, 17, -19],
                    b: vec![23, -29],
                },
                QuantLayer::ReLU,
            ],
            input_len: 3,
            cfg,
        },
        num_triggers: 2,
        signature_bits: 4,
        max_errors: 1,
        fold_average: false,
        cfg,
    }
}

fn fixture_proof() -> OwnershipProof {
    OwnershipProof {
        proof: Proof {
            a: g1(5),
            b: g2(7),
            c: g1(9),
        },
        verdict: true,
        circuit_id: fixture_statement().circuit_id(),
    }
}

/// Asserts that flipping any single byte of `wire` is either rejected
/// outright or decodes to an artifact on a *different* circuit.
fn assert_every_byte_flip_caught<A, F>(wire: &[u8], original_circuit: CircuitId, circuit_of: F)
where
    A: Artifact,
    F: Fn(&A) -> CircuitId,
{
    for i in 0..wire.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = wire.to_vec();
            corrupt[i] ^= flip;
            match A::from_bytes(&corrupt) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(
                    circuit_of(&decoded),
                    original_circuit,
                    "byte {i} flip {flip:#04x} slipped through undetected"
                ),
            }
        }
    }
}

#[test]
fn every_single_byte_flip_in_a_statement_is_caught() {
    let stmt = fixture_statement();
    let id = stmt.circuit_id();
    assert_every_byte_flip_caught::<OwnershipStatement, _>(&stmt.to_bytes(), id, |s| {
        s.circuit_id()
    });
}

#[test]
fn every_single_byte_flip_in_a_proof_is_caught() {
    let proof = fixture_proof();
    let id = proof.circuit_id;
    assert_every_byte_flip_caught::<OwnershipProof, _>(&proof.to_bytes(), id, |p| p.circuit_id);
}

#[test]
fn every_single_byte_flip_in_a_claim_is_caught() {
    let claim = SignedClaim {
        statement: fixture_statement(),
        proof: fixture_proof(),
    };
    let id = claim.circuit_id();
    assert_every_byte_flip_caught::<SignedClaim, _>(&claim.to_bytes(), id, |c| c.circuit_id());
}

#[test]
fn envelope_errors_are_specific() {
    let stmt = fixture_statement();
    let wire = stmt.to_bytes();

    // truncation below the envelope minimum
    assert!(matches!(
        OwnershipStatement::from_bytes(&wire[..10]),
        Err(WireError::Truncated { .. })
    ));

    // bad magic
    let mut bad = wire.clone();
    bad[0] = b'X';
    assert!(matches!(
        OwnershipStatement::from_bytes(&bad),
        Err(WireError::BadMagic(_))
    ));

    // decoding a statement as a proof names both kinds
    assert_eq!(
        OwnershipProof::from_bytes(&wire),
        Err(WireError::WrongKind {
            expected: ArtifactKind::Proof,
            got: ArtifactKind::Statement,
        })
    );

    // unknown kind tag
    let mut unknown = wire.clone();
    unknown[4] = 250;
    assert_eq!(
        OwnershipStatement::from_bytes(&unknown),
        Err(WireError::UnknownKind(250))
    );

    // future format version
    let mut future = wire.clone();
    future[5] = 99;
    assert!(matches!(
        OwnershipStatement::from_bytes(&future),
        Err(WireError::UnsupportedVersion { got: 99, .. })
    ));

    // truncated buffer disagrees with the envelope's payload length
    assert!(matches!(
        OwnershipStatement::from_bytes(&wire[..wire.len() - 1]),
        Err(WireError::LengthMismatch { .. })
    ));

    // corrupted payload trips the checksum before layer decoding runs
    let mut corrupt = wire.clone();
    let mid = wire.len() / 2;
    corrupt[mid] ^= 0xff;
    assert_eq!(
        OwnershipStatement::from_bytes(&corrupt),
        Err(WireError::ChecksumMismatch)
    );
}

#[test]
fn circuit_id_depends_on_shape_not_parameters() {
    let a = fixture_statement();

    // same shape, different weights ⇒ same circuit (the weights are public
    // *inputs*, not circuit structure) but a different content digest
    let mut b = a.clone();
    if let QuantLayer::Dense { w, .. } = &mut b.model.layers[0] {
        w[0] += 1;
    }
    assert_eq!(a.circuit_id(), b.circuit_id());
    assert_ne!(a.content_digest(), b.content_digest());

    // any shape knob moves the circuit id
    for mutate in [
        (|s: &mut OwnershipStatement| s.max_errors += 1) as fn(&mut OwnershipStatement),
        |s| s.num_triggers += 1,
        |s| s.signature_bits += 1,
        |s| s.fold_average = !s.fold_average,
        |s| s.cfg.frac_bits += 1,
        |s| s.model.layers.push(QuantLayer::ReLU),
    ] {
        let mut c = a.clone();
        mutate(&mut c);
        assert_ne!(a.circuit_id(), c.circuit_id(), "shape change must rekey");
    }
}

#[test]
fn sha256_matches_known_vectors() {
    // FIPS 180-2 test vectors
    let empty = zkrownn::artifact::sha256(b"");
    assert_eq!(
        empty[..4],
        [0xe3, 0xb0, 0xc4, 0x42],
        "SHA-256 of the empty string"
    );
    let abc = zkrownn::artifact::sha256(b"abc");
    assert_eq!(
        abc,
        [
            0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40, 0xde, 0x5d, 0xae,
            0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61,
            0xf2, 0x00, 0x15, 0xad
        ]
    );
    // multi-block message (> 64 bytes)
    let long =
        zkrownn::artifact::sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    assert_eq!(long[..4], [0x24, 0x8d, 0x6a, 0x61]);
}
