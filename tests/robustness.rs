//! Ownership proofs against *modified* (stolen-and-altered) models — the
//! paper's core scenario: "a second model M' is built based on watermarked
//! model M". The watermark must survive the modification, and the proof
//! must be generated against M' (the suspect model), whose weights are the
//! public input.

use rand::SeedableRng;
use zkrownn::benchmarks::spec_from_keys;
use zkrownn::{Authority, ZkrownnError};
use zkrownn_deepsigns::attacks::{finetune, prune};
use zkrownn_deepsigns::{embed, extract, generate_keys, EmbedConfig, KeyGenConfig, WatermarkKeys};
use zkrownn_gadgets::FixedConfig;
use zkrownn_nn::{generate_gmm, Dataset, Dense, GmmConfig, Layer, Network};

fn watermarked(seed: u64) -> (Network, WatermarkKeys, Dataset) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let gmm = GmmConfig {
        input_shape: vec![20],
        num_classes: 4,
        mean_scale: 1.0,
        noise_std: 0.3,
    };
    let data = generate_gmm(&gmm, 120, &mut rng);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(20, 32, &mut rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(32, 4, &mut rng)),
    ]);
    net.train(&data.xs, &data.ys, 5, 0.05);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 10,
            num_triggers: 6,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    // a strong embedding (more epochs, larger λ) so the mark survives the
    // removal attacks below — robustness grows with embedding strength
    embed(
        &mut net,
        &keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 5.0,
            epochs: 30,
            lr: 0.01,
        },
    );
    (net, keys, data)
}

#[test]
fn proof_of_ownership_of_finetuned_model() {
    let (mut stolen, keys, data) = watermarked(321);
    // the thief fine-tunes to wash out the watermark
    finetune(&mut stolen, &data.xs, &data.ys, 4, 0.01);
    let (_, ber) = extract(&stolen, &keys);
    assert!(ber <= 0.1, "watermark must survive fine-tuning (BER {ber})");

    // the owner proves ownership of the *modified* model M'
    let theta_errors = 1; // tolerate one flipped bit
    let spec = spec_from_keys(&stolen, &keys, false, theta_errors, &FixedConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(322);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).unwrap();
    assert!(claim.verdict(), "ownership verdict on the fine-tuned model");
    verifier.verify(&claim).unwrap();
}

#[test]
fn proof_of_ownership_of_pruned_model() {
    let (mut stolen, keys, _) = watermarked(323);
    prune(&mut stolen, 0.2);
    let (_, ber) = extract(&stolen, &keys);
    assert!(ber <= 0.2, "watermark must survive 20% pruning (BER {ber})");

    let theta_errors = 2;
    let spec = spec_from_keys(&stolen, &keys, false, theta_errors, &FixedConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(324);
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).unwrap();
    assert!(claim.verdict(), "ownership verdict on the pruned model");
    verifier.verify(&claim).unwrap();
}

#[test]
fn impostor_without_keys_cannot_claim_ownership() {
    // An impostor who does not know the owner's keys invents their own;
    // extraction fails (BER ≈ 0.5), so the only proof they can generate
    // carries verdict 0 and is rejected.
    let (victim_model, _real_keys, data) = watermarked(325);
    let mut rng = rand::rngs::StdRng::seed_from_u64(326);
    let fake_keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 32,
            signature_bits: 10,
            num_triggers: 4,
            projection_std: 1.0,
        },
        &data,
        &mut rng,
    );
    let (_, fake_ber) = extract(&victim_model, &fake_keys);
    assert!(
        fake_ber > 0.15,
        "fake keys should not extract (BER {fake_ber})"
    );

    let spec = spec_from_keys(&victim_model, &fake_keys, false, 0, &FixedConfig::default());
    let (prover, verifier) = Authority::setup(&spec, &mut rng);
    let claim = prover.prove(&mut rng).unwrap();
    assert!(!claim.verdict());
    // the impostor's proof is sound — it just proves the watermark absent
    assert_eq!(verifier.verify(&claim), Err(ZkrownnError::NegativeVerdict));
}
