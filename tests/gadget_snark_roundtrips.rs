//! Groth16 prove/verify roundtrips for each standalone Table I circuit at
//! reduced sizes, plus property-based satisfiability checks of the gadget
//! semantics (the reduced-size analogue of the paper's per-circuit rows).

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::average::{average2d_circuit, average_reference};
use zkrownn_gadgets::ber::ber_circuit;
use zkrownn_gadgets::conv::{conv3d_circuit, conv3d_reference, ConvShape};
use zkrownn_gadgets::matmul::{matmul_circuit, matmul_reference};
use zkrownn_gadgets::relu::relu_circuit;
use zkrownn_gadgets::sigmoid::{sigmoid, sigmoid_fixed_reference};
use zkrownn_gadgets::threshold::threshold_circuit;
use zkrownn_gadgets::{FixedConfig, Num};
use zkrownn_groth16::{create_proof_from_cs, generate_parameters_from_matrices, verify_proof};
use zkrownn_r1cs::ProvingSynthesizer;

fn prove_and_verify(cs: &ProvingSynthesizer<Fr>, seed: u64) {
    assert!(cs.is_satisfied().is_ok());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
    let proof = create_proof_from_cs(&pk, cs, &mut rng);
    let inputs: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
    verify_proof(&pk.vk, &proof, &inputs).expect("valid gadget proof");
    assert_eq!(proof.to_bytes().len(), 128);
}

#[test]
fn matmult_snark_roundtrip() {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let a: Vec<i128> = (0..16).map(|i| i - 8).collect();
    let b: Vec<i128> = (0..16).map(|i| 2 * i - 16).collect();
    let got = matmul_circuit(&a, &b, 4, 4, 4, 8, &mut cs).unwrap();
    assert_eq!(got, matmul_reference(&a, &b, 4, 4, 4));
    prove_and_verify(&cs, 331);
}

#[test]
fn conv3d_snark_roundtrip() {
    let shape = ConvShape {
        in_channels: 2,
        height: 6,
        width: 6,
        out_channels: 2,
        kernel: 3,
        stride: 2,
    };
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let input: Vec<i128> = (0..shape.in_len() as i128).map(|i| i % 11 - 5).collect();
    let kernels: Vec<i128> = (0..shape.kernel_len() as i128).map(|i| i % 7 - 3).collect();
    let got = conv3d_circuit(&input, &kernels, &shape, 8, &mut cs).unwrap();
    assert_eq!(got, conv3d_reference(&input, &kernels, &shape));
    prove_and_verify(&cs, 332);
}

#[test]
fn relu_snark_roundtrip() {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let inputs: Vec<i128> = (-8..8).collect();
    relu_circuit(&inputs, 16, &mut cs).unwrap();
    prove_and_verify(&cs, 333);
}

#[test]
fn average_snark_roundtrip() {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let entries: Vec<i128> = (0..24).map(|i| i * 3 - 30).collect();
    let got = average2d_circuit(&entries, 6, 4, 10, &mut cs).unwrap();
    assert_eq!(got, average_reference(&entries, 6, 4));
    prove_and_verify(&cs, 334);
}

#[test]
fn sigmoid_snark_roundtrip() {
    let cfg = FixedConfig::default();
    let mut cs = ProvingSynthesizer::<Fr>::new();
    for x in [-2.0f64, 0.0, 1.5] {
        let xi = cfg.encode(x);
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(xi)), cfg.value_bits()).unwrap();
        let out = sigmoid(&num, &cfg, &mut cs).unwrap();
        assert_eq!(out.value_i128(), sigmoid_fixed_reference(xi, &cfg));
        out.expose_as_output(&mut cs).unwrap();
    }
    prove_and_verify(&cs, 335);
}

#[test]
fn threshold_snark_roundtrip() {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let inputs: Vec<i128> = (0..16).map(|i| i * 5 - 40).collect();
    threshold_circuit(&inputs, 0, 10, &mut cs).unwrap();
    prove_and_verify(&cs, 336);
}

#[test]
fn ber_snark_roundtrip() {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let wm: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
    let mut ex = wm.clone();
    ex[5] = !ex[5];
    assert!(ber_circuit(&wm, &ex, 1, &mut cs).unwrap());
    prove_and_verify(&cs, 337);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_relu_circuit_matches_max(vals in prop::collection::vec(-1000i128..1000, 1..20)) {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let outs = relu_circuit(&vals, 12, &mut cs).unwrap();
        prop_assert!(cs.is_satisfied().is_ok());
        for (o, v) in outs.iter().zip(&vals) {
            prop_assert_eq!(*o, (*v).max(0));
        }
    }

    #[test]
    fn prop_threshold_is_indicator(vals in prop::collection::vec(-500i128..500, 1..20), beta in -100i128..100) {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let outs = threshold_circuit(&vals, beta, 11, &mut cs).unwrap();
        prop_assert!(cs.is_satisfied().is_ok());
        for (o, v) in outs.iter().zip(&vals) {
            prop_assert_eq!(*o, *v >= beta);
        }
    }

    #[test]
    fn prop_matmul_circuit_matches_reference(
        a in prop::collection::vec(-50i128..50, 6),
        b in prop::collection::vec(-50i128..50, 6),
    ) {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = matmul_circuit(&a, &b, 2, 3, 2, 7, &mut cs).unwrap();
        prop_assert!(cs.is_satisfied().is_ok());
        prop_assert_eq!(got, matmul_reference(&a, &b, 2, 3, 2));
    }

    #[test]
    fn prop_ber_circuit_counts_flips(bits in prop::collection::vec(any::<bool>(), 8..40), theta in 0u64..8) {
        let mut flipped = bits.clone();
        let k = bits.len() / 3;
        for b in flipped.iter_mut().take(k) { *b = !*b; }
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let ok = ber_circuit(&bits, &flipped, theta, &mut cs).unwrap();
        prop_assert!(cs.is_satisfied().is_ok());
        prop_assert_eq!(ok, k as u64 <= theta);
    }

    #[test]
    fn prop_sigmoid_circuit_matches_fixed_reference(x in -6.0f64..6.0) {
        let cfg = FixedConfig::default();
        let xi = cfg.encode(x);
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(xi)), cfg.value_bits()).unwrap();
        let out = sigmoid(&num, &cfg, &mut cs).unwrap();
        prop_assert!(cs.is_satisfied().is_ok());
        prop_assert_eq!(out.value_i128(), sigmoid_fixed_reference(xi, &cfg));
    }
}
