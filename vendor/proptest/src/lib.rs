//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`],
//! range strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: there is
//! **no shrinking** (a failing case panics with the drawn values still in
//! scope, via the standard assert messages), and each test runs a fixed,
//! deterministic case count ([`ProptestConfig::default`] is 32 cases) seeded
//! from the test's module path, so failures reproduce exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, StandardSample};
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration (case count only; other knobs are accepted by the
/// real crate but unused here).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value. (Real proptest builds a shrinkable value tree; this
    /// stand-in samples directly.)
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: StandardSample> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Vectors of `len` elements drawn from `elem`.
    pub fn vec<S: Strategy, L: IntoLenRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG construction used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the RNG for one test: seeded by an FNV-1a hash of the test's
    /// full path so every test gets an independent, reproducible stream.
    pub fn rng_for(test_path: &str) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when an assumption does not hold. (This stand-in
/// simply moves on to the next case without drawing a replacement.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::sample_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests. Supports the real crate's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(v.len() < 4 && x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::collection::vec(..)` works as in the real
    /// crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            x in 3usize..9,
            v in prop::collection::vec(any::<bool>(), 2..5),
            f in -2f32..2.0,
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuple_patterns((lo, hi) in arb_pair(), fixed in prop::collection::vec(any::<u8>(), 4)) {
            prop_assert!(lo <= hi);
            prop_assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = any::<[u64; 4]>();
        assert_eq!(s.sample_value(&mut a), s.sample_value(&mut b));
    }
}
