//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion`], benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs a one-iteration
//! warmup, then `sample_size` timed samples, and reports min / median / mean
//! to stdout. There is no HTML report, outlier analysis, or baseline
//! comparison — swap the real crate back in for publication-grade numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording `per_sample` calls per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup
        black_box(f());
        // fresh sample set per iter() call so a closure calling it twice
        // doesn't mix two workloads' timings
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..self.per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed() / self.per_sample as u32;
            self.samples.push(elapsed);
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{label:<40} min {min:>12.2?}   median {median:>12.2?}   mean {mean:>12.2?}");
}

fn run_bench(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        per_sample: 1,
    };
    f(&mut b);
    report(label, &mut b.samples);
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut f = f;
        run_bench(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut f = f;
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name,
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_bench(name, self.default_sample_size, |b| f(b));
        self
    }
}

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this simple
            // stand-in has no CLI and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, n| {
            b.iter(|| (0..*n).sum::<usize>())
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(3u32).pow(2)));
    }

    criterion_group!(benches, sample_target);

    #[test]
    fn harness_runs() {
        benches();
    }
}
