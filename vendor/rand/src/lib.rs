//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no access to crates.io,
//! so the workspace vendors the small slice of the rand 0.8 API it actually
//! uses: [`rngs::StdRng`], the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and
//! statistically strong; it is **not** the CSPRNG the real crate ships and
//! must not be used to sample production toxic waste. Swapping the real
//! crate back in is a one-line change in the workspace manifest.

#![warn(missing_docs)]
#![cfg_attr(not(test), no_std)]

use core::ops::{Range, RangeInclusive};

/// Core random-number-generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be seeded deterministically from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly "at large" (the rand `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                const BITS: u32 = <$t>::BITS;
                if BITS <= 64 {
                    rng.next_u64() as $t
                } else {
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                }
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: StandardSample, const N: usize> StandardSample for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges that can produce a uniform sample of `T` (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = <$u>::sample_standard(rng) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                // span == 0 means the full domain: take the raw draw.
                let raw = <$u>::sample_standard(rng);
                let draw = if span == 0 { raw } else { raw % span };
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i128 = rng.gen_range(-50i128..50);
            assert!((-50..50).contains(&v));
            let f: f32 = rng.gen_range(1e-7f32..1.0);
            assert!((1e-7..1.0).contains(&f));
            let u: usize = rng.gen_range(0..10usize);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_bool_and_floats_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let _ = sample(&mut rng);
    }
}
