//! Lock-free service metrics: request/outcome counters, a log-scaled
//! latency histogram, and batch-occupancy accounting for the RLC
//! coalescer.
//!
//! Everything is plain relaxed atomics — workers record on the hot path
//! without contention, and [`Metrics::snapshot`] reads a consistent-enough
//! view for the `STATS` endpoint (individual counters are exact; cross-
//! counter skew is bounded by in-flight requests).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::protocol::Status;

/// Histogram bucket count: bucket `b` holds samples in `[2^(b-1), 2^b)`
/// microseconds (bucket 0 holds sub-microsecond samples), so 40 buckets
/// reach ~9 minutes — far beyond any sane claim latency.
const BUCKETS: usize = 40;

/// Outcome-counter slots, indexed by the wire status codes `0x00..=0x07`
/// ([`Status::Protocol`] is tracked separately as a framing error).
const OUTCOMES: usize = 8;

/// Shared, append-only service counters.
pub struct Metrics {
    started: Instant,
    /// `VERIFY` requests received (== sum of `outcomes`, once answered).
    requests: AtomicU64,
    /// Per-[`Status`] response counts for `VERIFY` requests.
    outcomes: [AtomicU64; OUTCOMES],
    /// Frames rejected at the protocol layer (bad opcode/length/payload).
    protocol_errors: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    /// Claims currently inside the verification pipeline.
    in_flight: AtomicU64,
    /// Log₂-microsecond latency histogram over `VERIFY` handling.
    latency_buckets: [AtomicU64; BUCKETS],
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    /// Coalescer accounting: number of verification batches dispatched,
    /// claims covered by them, and the largest batch seen.
    batches: AtomicU64,
    batched_claims: AtomicU64,
    batch_max: AtomicU64,
    /// Ledger endpoint accounting: `ROOT` requests served, and per-proof
    /// hit/miss splits for `PROVE_MEMBER` and `CONSISTENCY`.
    ledger_roots: AtomicU64,
    ledger_membership_proofs: AtomicU64,
    ledger_membership_misses: AtomicU64,
    ledger_consistency_proofs: AtomicU64,
    ledger_consistency_misses: AtomicU64,
    /// Robustness accounting: connections shed with `Busy` at accept,
    /// responses abandoned on the write deadline, RLC-degradation windows
    /// entered by the coalescer, and key files quarantined at startup.
    sheds: AtomicU64,
    write_timeouts: AtomicU64,
    degradations: AtomicU64,
    quarantined_keys: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics anchored at "now".
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            outcomes: std::array::from_fn(|_| AtomicU64::new(0)),
            protocol_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_claims: AtomicU64::new(0),
            batch_max: AtomicU64::new(0),
            ledger_roots: AtomicU64::new(0),
            ledger_membership_proofs: AtomicU64::new(0),
            ledger_membership_misses: AtomicU64::new(0),
            ledger_consistency_proofs: AtomicU64::new(0),
            ledger_consistency_misses: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            quarantined_keys: AtomicU64::new(0),
        }
    }

    /// Records a connection shed with `Busy` because the accept queue was
    /// full.
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response abandoned because a slow-reading peer held the
    /// socket past the write deadline.
    pub fn record_write_timeout(&self) {
        self.write_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the coalescer entering a per-claim degradation window for
    /// one circuit (repeatedly poisoned RLC batches).
    pub fn record_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` key files quarantined (skipped and renamed to
    /// `*.corrupt`) during startup key loading.
    pub fn record_quarantined(&self, n: u64) {
        self.quarantined_keys.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame rejected at the protocol layer.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a `VERIFY` request as entering the pipeline.
    pub fn begin_verify(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished `VERIFY` request: its outcome and its
    /// service-side latency (frame decoded → response ready).
    pub fn end_verify(&self, status: Status, latency: Duration) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let slot = (status as u8) as usize;
        if slot < OUTCOMES {
            self.outcomes[slot].fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one dispatched verification batch of `n` claims.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_claims.fetch_add(n as u64, Ordering::Relaxed);
        self.batch_max.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Records one `ROOT` request served.
    pub fn record_ledger_root(&self) {
        self.ledger_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `PROVE_MEMBER` request: `hit` iff the leaf was in the
    /// ledger and a proof was returned.
    pub fn record_membership(&self, hit: bool) {
        if hit {
            self.ledger_membership_proofs
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.ledger_membership_misses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one `CONSISTENCY` request: `hit` iff the old size was a
    /// valid prefix and a proof was returned.
    pub fn record_consistency(&self, hit: bool) {
        if hit {
            self.ledger_consistency_proofs
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.ledger_consistency_misses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: self.started.elapsed(),
            requests: self.requests.load(Ordering::Relaxed),
            outcomes: std::array::from_fn(|i| self.outcomes[i].load(Ordering::Relaxed)),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            latency_buckets: std::array::from_fn(|i| {
                self.latency_buckets[i].load(Ordering::Relaxed)
            }),
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_max_us: self.latency_max_us.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_claims: self.batched_claims.load(Ordering::Relaxed),
            batch_max: self.batch_max.load(Ordering::Relaxed),
            ledger_roots: self.ledger_roots.load(Ordering::Relaxed),
            ledger_membership_proofs: self.ledger_membership_proofs.load(Ordering::Relaxed),
            ledger_membership_misses: self.ledger_membership_misses.load(Ordering::Relaxed),
            ledger_consistency_proofs: self.ledger_consistency_proofs.load(Ordering::Relaxed),
            ledger_consistency_misses: self.ledger_consistency_misses.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
            quarantined_keys: self.quarantined_keys.load(Ordering::Relaxed),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A point-in-time copy of [`Metrics`], with derived quantiles and the
/// JSON emitter the `STATS` endpoint serves.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Time since the metrics were created (≈ server start).
    pub uptime: Duration,
    /// `VERIFY` requests received.
    pub requests: u64,
    /// Responses by status code `0x00..=0x07`.
    pub outcomes: [u64; OUTCOMES],
    /// Frames rejected at the protocol layer.
    pub protocol_errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Claims in the pipeline at snapshot time.
    pub in_flight: u64,
    /// Log₂-microsecond latency histogram.
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of all recorded latencies (µs).
    pub latency_sum_us: u64,
    /// Largest recorded latency (µs).
    pub latency_max_us: u64,
    /// Verification batches dispatched.
    pub batches: u64,
    /// Claims covered by those batches.
    pub batched_claims: u64,
    /// Largest single batch.
    pub batch_max: u64,
    /// `ROOT` requests served.
    pub ledger_roots: u64,
    /// `PROVE_MEMBER` requests answered with a proof.
    pub ledger_membership_proofs: u64,
    /// `PROVE_MEMBER` requests for leaves not in the ledger.
    pub ledger_membership_misses: u64,
    /// `CONSISTENCY` requests answered with a proof.
    pub ledger_consistency_proofs: u64,
    /// `CONSISTENCY` requests for sizes beyond the current tree.
    pub ledger_consistency_misses: u64,
    /// Connections shed with `Busy` (accept queue full).
    pub sheds: u64,
    /// Responses abandoned on the write deadline (slow-reading peers).
    pub write_timeouts: u64,
    /// Per-claim degradation windows entered by the coalescer.
    pub degradations: u64,
    /// Key files quarantined during startup loading.
    pub quarantined_keys: u64,
}

impl MetricsSnapshot {
    /// Count of a specific outcome.
    pub fn outcome(&self, status: Status) -> u64 {
        self.outcomes[(status as u8) as usize]
    }

    /// Total latency samples recorded.
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Mean recorded latency in microseconds.
    pub fn latency_mean_us(&self) -> f64 {
        let n = self.latency_count();
        if n == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / n as f64
        }
    }

    /// Approximate latency quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let n = self.latency_count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << b; // bucket upper bound
            }
        }
        self.latency_max_us
    }

    /// Mean claims per dispatched batch (1.0 when every claim went solo).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_claims as f64 / self.batches as f64
        }
    }

    /// Renders the snapshot as the flat JSON document served by `STATS`.
    ///
    /// `batching`, `registered_circuits` and `ledger_size` are server-side
    /// state reported alongside the counters.
    ///
    /// Schema history: `zkrownn-service-stats/v2` renamed `circuits` to
    /// `registered_circuits` and added `ledger_size` plus the five
    /// `ledger_*` operation counters; `v3` added the four robustness
    /// counters `sheds`, `write_timeouts`, `degradations` and
    /// `quarantined_keys`. Everything earlier is otherwise unchanged.
    pub fn to_json(&self, batching: bool, registered_circuits: usize, ledger_size: u64) -> String {
        format!(
            "{{\"schema\": \"zkrownn-service-stats/v3\", \"uptime_s\": {:.3}, \
             \"requests\": {}, \"ok\": {}, \"negative_verdict\": {}, \"invalid_proof\": {}, \
             \"unknown_circuit\": {}, \"circuit_mismatch\": {}, \"statement_mismatch\": {}, \
             \"malformed_claim\": {}, \"internal\": {}, \"protocol_errors\": {}, \
             \"connections\": {}, \"in_flight\": {}, \
             \"latency_count\": {}, \"latency_mean_us\": {:.1}, \"latency_p50_us\": {}, \
             \"latency_p99_us\": {}, \"latency_max_us\": {}, \
             \"batches\": {}, \"batched_claims\": {}, \"batch_mean\": {:.3}, \"batch_max\": {}, \
             \"ledger_roots\": {}, \"ledger_membership_proofs\": {}, \
             \"ledger_membership_misses\": {}, \"ledger_consistency_proofs\": {}, \
             \"ledger_consistency_misses\": {}, \
             \"sheds\": {}, \"write_timeouts\": {}, \"degradations\": {}, \
             \"quarantined_keys\": {}, \
             \"batching\": {}, \"registered_circuits\": {}, \"ledger_size\": {}}}",
            self.uptime.as_secs_f64(),
            self.requests,
            self.outcome(Status::Ok),
            self.outcome(Status::NegativeVerdict),
            self.outcome(Status::InvalidProof),
            self.outcome(Status::UnknownCircuit),
            self.outcome(Status::CircuitMismatch),
            self.outcome(Status::StatementMismatch),
            self.outcome(Status::MalformedClaim),
            self.outcome(Status::Internal),
            self.protocol_errors,
            self.connections,
            self.in_flight,
            self.latency_count(),
            self.latency_mean_us(),
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.99),
            self.latency_max_us,
            self.batches,
            self.batched_claims,
            self.mean_batch(),
            self.batch_max,
            self.ledger_roots,
            self.ledger_membership_proofs,
            self.ledger_membership_misses,
            self.ledger_consistency_proofs,
            self.ledger_consistency_misses,
            self.sheds,
            self.write_timeouts,
            self.degradations,
            self.quarantined_keys,
            batching,
            registered_circuits,
            ledger_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_and_means_track_recordings() {
        let m = Metrics::new();
        for us in [100u64, 200, 400, 800] {
            m.begin_verify();
            m.end_verify(Status::Ok, Duration::from_micros(us));
        }
        m.begin_verify();
        m.end_verify(Status::InvalidProof, Duration::from_micros(100_000));
        let s = m.snapshot();
        assert_eq!(s.requests, 5);
        assert_eq!(s.outcome(Status::Ok), 4);
        assert_eq!(s.outcome(Status::InvalidProof), 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.latency_count(), 5);
        assert_eq!(s.latency_max_us, 100_000);
        // the median sample is 400µs, whose bucket is (256, 512]
        assert_eq!(s.latency_quantile_us(0.5), 512);
        // p99 lands on the straggler's bucket
        assert!(s.latency_quantile_us(0.99) >= 65_536);
        let mean = s.latency_mean_us();
        assert!((mean - 20_300.0).abs() < 1.0, "{mean}");
    }

    #[test]
    fn batch_accounting() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(7);
        m.record_batch(4);
        let s = m.snapshot();
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_claims, 12);
        assert_eq!(s.batch_max, 7);
        assert!((s.mean_batch() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stats_json_is_balanced_and_tagged() {
        let m = Metrics::new();
        m.begin_verify();
        m.end_verify(Status::Ok, Duration::from_micros(1500));
        m.record_ledger_root();
        m.record_membership(true);
        m.record_membership(false);
        m.record_consistency(true);
        let json = m.snapshot().to_json(true, 2, 5);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"zkrownn-service-stats/v3\""));
        assert!(json.contains("\"sheds\": 0"));
        assert!(json.contains("\"write_timeouts\": 0"));
        assert!(json.contains("\"degradations\": 0"));
        assert!(json.contains("\"quarantined_keys\": 0"));
        assert!(json.contains("\"batching\": true"));
        assert!(json.contains("\"registered_circuits\": 2"));
        assert!(json.contains("\"ledger_size\": 5"));
        assert!(json.contains("\"ledger_roots\": 1"));
        assert!(json.contains("\"ledger_membership_proofs\": 1"));
        assert!(json.contains("\"ledger_membership_misses\": 1"));
        assert!(json.contains("\"ledger_consistency_proofs\": 1"));
        assert!(json.contains("\"ledger_consistency_misses\": 0"));
        assert!(json.contains("\"requests\": 1"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
