//! `zkrownn-authority` — the claim-verification daemon.
//!
//! Loads `.vk` key-registration files (written by `loadgen --write-corpus`
//! or [`zkrownn_service::registration_bytes`]) into a sharded registry and
//! serves the framed verification protocol until shut down.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use zkrownn_ledger::LedgeredRegistry;
use zkrownn_service::{load_keys_dir_with, serve, CoalescerConfig, KeyLoadOptions, ServerConfig};

const USAGE: &str = "\
zkrownn-authority — ZKROWNN claim-verification daemon

USAGE:
    zkrownn-authority [OPTIONS]

OPTIONS:
    --listen ADDR           bind address (default 127.0.0.1:7791; port 0 = ephemeral)
    --keys DIR              load every *.vk registration file and *.zkst
                            segmented key store in DIR (one sorted order);
                            unreadable files are quarantined to *.corrupt
                            and skipped
    --strict-keys           abort startup on the first unreadable key file
                            instead of quarantining it
    --workers N             worker threads (default: max(16, 2 x cores))
    --accept-queue N        connections queued for a worker before new ones
                            are shed with BUSY (default 128)
    --no-batching           disable claim coalescing (ablation mode)
    --max-batch N           RLC batch ceiling (default 64)
    --idle-shutdown-ms N    exit after N ms with no traffic
    --help                  print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("zkrownn-authority: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7791".into(),
        ..ServerConfig::default()
    };
    let mut coalescer = CoalescerConfig::default();
    let mut keys_dir: Option<String> = None;
    let mut key_options = KeyLoadOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => config.addr = v,
                Err(e) => return fail(&e),
            },
            "--keys" => match value("--keys") {
                Ok(v) => keys_dir = Some(v),
                Err(e) => return fail(&e),
            },
            "--workers" => match value("--workers").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--workers expects a number".into())
            }) {
                Ok(n) if n >= 1 => config.workers = n,
                Ok(_) => return fail("--workers must be at least 1"),
                Err(e) => return fail(&e),
            },
            "--max-batch" => match value("--max-batch").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--max-batch expects a number".into())
            }) {
                Ok(n) if n >= 1 => coalescer.max_batch = n,
                Ok(_) => return fail("--max-batch must be at least 1"),
                Err(e) => return fail(&e),
            },
            "--idle-shutdown-ms" => match value("--idle-shutdown-ms").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|_| "--idle-shutdown-ms expects a number".into())
            }) {
                Ok(ms) => config.idle_shutdown = Some(Duration::from_millis(ms)),
                Err(e) => return fail(&e),
            },
            "--accept-queue" => match value("--accept-queue").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|_| "--accept-queue expects a number".into())
            }) {
                Ok(n) if n >= 1 => config.accept_queue = n,
                Ok(_) => return fail("--accept-queue must be at least 1"),
                Err(e) => return fail(&e),
            },
            "--strict-keys" => key_options.strict = true,
            "--no-batching" => coalescer.batching = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option {other}")),
        }
    }
    config.coalescer = coalescer;

    let registry = Arc::new(LedgeredRegistry::new());
    let mut quarantined_keys = 0u64;
    if let Some(dir) = keys_dir {
        // keys register in sorted path order, so the ledger root printed
        // below is reproducible for a given key directory
        match load_keys_dir_with(&registry, Path::new(&dir), key_options) {
            Ok(report) => {
                eprintln!(
                    "zkrownn-authority: registered {} circuit(s) from {dir}",
                    report.loaded
                );
                for (path, error) in &report.quarantined {
                    eprintln!(
                        "zkrownn-authority: quarantined {} -> {}.corrupt ({error})",
                        path.display(),
                        path.display()
                    );
                }
                if report.stale_tmp > 0 {
                    eprintln!(
                        "zkrownn-authority: ignoring {} stale *.tmp staging file(s) \
                         from an interrupted writer",
                        report.stale_tmp
                    );
                }
                quarantined_keys = report.quarantined.len() as u64;
            }
            Err(e) => return fail(&format!("loading keys from {dir}: {e}")),
        }
    } else {
        eprintln!("zkrownn-authority: starting with an empty registry (no --keys)");
    }
    let root = registry.current_root();
    eprintln!(
        "zkrownn-authority: ledger root {} at size {}",
        root.root_hex(),
        root.size
    );

    let handle = match serve(config, registry) {
        Ok(h) => h,
        Err(e) => return fail(&format!("binding listener: {e}")),
    };
    handle.metrics().record_quarantined(quarantined_keys);
    // CI and tests poll for this exact line to learn the bound port
    println!("zkrownn-authority listening on {}", handle.addr());

    handle.join();
    eprintln!("zkrownn-authority: shut down");
    ExitCode::SUCCESS
}
