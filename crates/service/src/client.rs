//! A small blocking client for the authority protocol — what the load
//! generator, the integration tests, and embedding tools use.
//!
//! [`Client`] is the bare one-connection primitive. [`RetryingClient`]
//! wraps it with reconnection and seeded exponential backoff for the
//! *idempotent* operations (`VERIFY`, `STATS`, `ROOT`): a dropped
//! connection or a [`Status::Busy`] shed from a saturated server is
//! absorbed by retrying on a fresh connection instead of surfacing to the
//! caller. Non-idempotent operations (`SET_BATCHING`, `SHUTDOWN`) are
//! deliberately not retried.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkrownn::{Artifact, SignedClaim};
use zkrownn_ledger::LedgerLeaf;

use crate::protocol::{read_response, write_request, ProtocolError, Request, Response, Status};

/// One framed connection to a running authority.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to an authority.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects, retrying for up to `timeout` — for racing a server that
    /// is still binding its socket (CI startup, tests).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_request(&mut self.stream, request)?;
        read_response(&mut self.stream)
    }

    /// Submits raw claim artifact bytes for verification.
    pub fn verify_bytes(&mut self, claim_bytes: Vec<u8>) -> Result<Response, ProtocolError> {
        self.request(&Request::Verify(claim_bytes))
    }

    /// Serializes and submits a claim for verification.
    pub fn verify(&mut self, claim: &SignedClaim) -> Result<Response, ProtocolError> {
        self.verify_bytes(claim.to_bytes())
    }

    /// Fetches the metrics snapshot JSON.
    pub fn stats_json(&mut self) -> Result<String, ProtocolError> {
        let response = self.request(&Request::Stats)?;
        Ok(response.text())
    }

    /// Toggles claim coalescing server-side.
    pub fn set_batching(&mut self, on: bool) -> Result<Response, ProtocolError> {
        self.request(&Request::SetBatching(on))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<Response, ProtocolError> {
        self.request(&Request::Shutdown)
    }

    /// Fetches the current registration-ledger head. On `Ok` the response
    /// payload is a `LedgerRoot` artifact.
    pub fn ledger_root(&mut self) -> Result<Response, ProtocolError> {
        self.request(&Request::Root)
    }

    /// Asks for a membership proof for a registered `(circuit, statement)`
    /// leaf. On `Ok` the response payload is a `MembershipProof` artifact;
    /// an unknown leaf gets [`Status::NotInLedger`].
    pub fn prove_member(&mut self, leaf: &LedgerLeaf) -> Result<Response, ProtocolError> {
        self.request(&Request::ProveMember(leaf.to_bytes()))
    }

    /// Asks for a consistency proof from an earlier ledger size to the
    /// current one. On `Ok` the response payload is a `ConsistencyProof`
    /// artifact; a size beyond the tree gets [`Status::NotInLedger`].
    pub fn consistency(&mut self, old_size: u64) -> Result<Response, ProtocolError> {
        self.request(&Request::Consistency(old_size))
    }
}

/// Backoff/retry tuning for [`RetryingClient`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per operation (the first try counts as one).
    pub max_attempts: u32,
    /// First backoff sleep; doubles on every further retry.
    pub base_delay: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_delay: Duration,
    /// Overall wall-clock budget for one operation across all attempts;
    /// once spent, the last error is returned instead of sleeping again.
    pub deadline: Duration,
    /// Jitter rng seed. The default is fixed so test runs reproduce;
    /// give each client in a fleet its own seed to decorrelate retries.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            deadline: Duration::from_secs(30),
            seed: 0x7e72_7974_5f31,
        }
    }
}

/// A self-healing client for the idempotent authority operations.
///
/// Holds at most one live [`Client`] connection, lazily (re)established.
/// An operation that fails with a transport error, or is shed with
/// [`Status::Busy`], drops the connection, sleeps an exponentially
/// growing jittered backoff, reconnects, and tries again — up to
/// [`RetryPolicy::max_attempts`] and [`RetryPolicy::deadline`]. Jitter
/// comes from a seeded [`StdRng`] so runs are reproducible.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<Client>,
    retries: u64,
    busy: u64,
}

impl RetryingClient {
    /// Builds a client for `addr` (connection is established lazily on
    /// the first operation).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let seed = policy.seed;
        Self {
            addr: addr.into(),
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0x6a69_7474_6572),
            conn: None,
            retries: 0,
            busy: 0,
        }
    }

    /// Retries performed so far (sleep-then-reconnect cycles, summed over
    /// every operation on this client).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// `Busy` sheds absorbed so far.
    pub fn busy_sheds(&self) -> u64 {
        self.busy
    }

    /// Submits raw claim artifact bytes for verification, retrying
    /// transport failures and `Busy` sheds.
    pub fn verify_bytes(&mut self, claim_bytes: Vec<u8>) -> Result<Response, ProtocolError> {
        self.run(&Request::Verify(claim_bytes))
    }

    /// Serializes and submits a claim for verification, with retries.
    pub fn verify(&mut self, claim: &SignedClaim) -> Result<Response, ProtocolError> {
        self.verify_bytes(claim.to_bytes())
    }

    /// Fetches the metrics snapshot JSON, with retries.
    pub fn stats_json(&mut self) -> Result<String, ProtocolError> {
        self.run(&Request::Stats).map(|r| r.text())
    }

    /// Fetches the current registration-ledger head, with retries.
    pub fn ledger_root(&mut self) -> Result<Response, ProtocolError> {
        self.run(&Request::Root)
    }

    /// One attempt: connect if needed, send, read the response.
    fn try_once(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        if self.conn.is_none() {
            let conn =
                Client::connect(self.addr.as_str()).map_err(|e| ProtocolError::Io(e.kind()))?;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connection established above");
        conn.request(request)
    }

    /// The retry loop shared by every idempotent operation.
    fn run(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        let deadline = Instant::now() + self.policy.deadline;
        let mut delay = self.policy.base_delay.max(Duration::from_millis(1));
        for attempt in 1.. {
            let outcome = self.try_once(request);
            match &outcome {
                Ok(resp) if resp.status == Status::Busy => self.busy += 1,
                Err(ProtocolError::Io(_)) => {}
                _ => return outcome,
            }
            // a Busy server closes after the frame, and after an I/O error
            // the stream's framing can't be trusted: reconnect either way
            self.conn = None;
            if attempt >= self.policy.max_attempts || Instant::now() + delay >= deadline {
                return outcome;
            }
            self.retries += 1;
            // full jitter over [delay/2, delay]
            let nanos = delay.as_nanos().min(u128::from(u64::MAX)) as u64;
            let jittered = self.rng.gen_range(nanos / 2..=nanos.max(1));
            std::thread::sleep(Duration::from_nanos(jittered));
            delay = (delay * 2).min(self.policy.max_delay);
        }
        unreachable!("the retry loop always returns")
    }
}

/// Pulls an unsigned integer field out of the flat stats JSON (the
/// document is machine-written, so a scan is reliable; this avoids a JSON
/// dependency in the offline build).
pub fn stats_field_u64(json: &str, key: &str) -> Option<u64> {
    stats_field_f64(json, key).map(|v| v as u64)
}

/// Pulls a numeric field out of the flat stats JSON.
pub fn stats_field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a boolean field out of the flat stats JSON.
pub fn stats_field_bool(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// `true` when a response marks a claim as verified (positive verdict).
pub fn is_verified(response: &Response) -> bool {
    response.status == Status::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_scanning() {
        let json = "{\"schema\": \"zkrownn-service-stats/v1\", \"requests\": 42, \
                    \"batch_mean\": 3.25, \"batching\": true, \"latency_mean_us\": 12.5}";
        assert_eq!(stats_field_u64(json, "requests"), Some(42));
        assert_eq!(stats_field_f64(json, "batch_mean"), Some(3.25));
        assert_eq!(stats_field_bool(json, "batching"), Some(true));
        assert_eq!(stats_field_u64(json, "nope"), None);
        assert_eq!(stats_field_f64(json, "latency_mean_us"), Some(12.5));
    }
}
