//! A small blocking client for the authority protocol — what the load
//! generator, the integration tests, and embedding tools use.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use zkrownn::{Artifact, SignedClaim};
use zkrownn_ledger::LedgerLeaf;

use crate::protocol::{read_response, write_request, ProtocolError, Request, Response, Status};

/// One framed connection to a running authority.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to an authority.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects, retrying for up to `timeout` — for racing a server that
    /// is still binding its socket (CI startup, tests).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_request(&mut self.stream, request)?;
        read_response(&mut self.stream)
    }

    /// Submits raw claim artifact bytes for verification.
    pub fn verify_bytes(&mut self, claim_bytes: Vec<u8>) -> Result<Response, ProtocolError> {
        self.request(&Request::Verify(claim_bytes))
    }

    /// Serializes and submits a claim for verification.
    pub fn verify(&mut self, claim: &SignedClaim) -> Result<Response, ProtocolError> {
        self.verify_bytes(claim.to_bytes())
    }

    /// Fetches the metrics snapshot JSON.
    pub fn stats_json(&mut self) -> Result<String, ProtocolError> {
        let response = self.request(&Request::Stats)?;
        Ok(response.text())
    }

    /// Toggles claim coalescing server-side.
    pub fn set_batching(&mut self, on: bool) -> Result<Response, ProtocolError> {
        self.request(&Request::SetBatching(on))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<Response, ProtocolError> {
        self.request(&Request::Shutdown)
    }

    /// Fetches the current registration-ledger head. On `Ok` the response
    /// payload is a `LedgerRoot` artifact.
    pub fn ledger_root(&mut self) -> Result<Response, ProtocolError> {
        self.request(&Request::Root)
    }

    /// Asks for a membership proof for a registered `(circuit, statement)`
    /// leaf. On `Ok` the response payload is a `MembershipProof` artifact;
    /// an unknown leaf gets [`Status::NotInLedger`].
    pub fn prove_member(&mut self, leaf: &LedgerLeaf) -> Result<Response, ProtocolError> {
        self.request(&Request::ProveMember(leaf.to_bytes()))
    }

    /// Asks for a consistency proof from an earlier ledger size to the
    /// current one. On `Ok` the response payload is a `ConsistencyProof`
    /// artifact; a size beyond the tree gets [`Status::NotInLedger`].
    pub fn consistency(&mut self, old_size: u64) -> Result<Response, ProtocolError> {
        self.request(&Request::Consistency(old_size))
    }
}

/// Pulls an unsigned integer field out of the flat stats JSON (the
/// document is machine-written, so a scan is reliable; this avoids a JSON
/// dependency in the offline build).
pub fn stats_field_u64(json: &str, key: &str) -> Option<u64> {
    stats_field_f64(json, key).map(|v| v as u64)
}

/// Pulls a numeric field out of the flat stats JSON.
pub fn stats_field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a boolean field out of the flat stats JSON.
pub fn stats_field_bool(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// `true` when a response marks a claim as verified (positive verdict).
pub fn is_verified(response: &Response) -> bool {
    response.status == Status::Ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_scanning() {
        let json = "{\"schema\": \"zkrownn-service-stats/v1\", \"requests\": 42, \
                    \"batch_mean\": 3.25, \"batching\": true, \"latency_mean_us\": 12.5}";
        assert_eq!(stats_field_u64(json, "requests"), Some(42));
        assert_eq!(stats_field_f64(json, "batch_mean"), Some(3.25));
        assert_eq!(stats_field_bool(json, "batching"), Some(true));
        assert_eq!(stats_field_u64(json, "nope"), None);
        assert_eq!(stats_field_f64(json, "latency_mean_us"), Some(12.5));
    }
}
