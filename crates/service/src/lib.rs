//! # zkrownn-service — the dispute authority as a daemon
//!
//! ZKROWNN's end state is not a library a researcher links against but a
//! *service*: a dispute authority that holds the verifying keys for the
//! circuits under its jurisdiction and answers ownership claims from many
//! independent clients, fast. This crate is that serving layer:
//!
//! * **wire protocol** ([`protocol`]) — length-prefixed frames carrying
//!   [`SignedClaim`] artifact bytes in and typed status codes out, with a
//!   `STATS` endpoint serving a JSON metrics snapshot and admin opcodes
//!   for runtime batching control and graceful shutdown;
//! * **coalescing verifier** ([`batcher`]) — concurrent in-flight claims
//!   for the same circuit are folded into one random-linear-combination
//!   pairing check, so the registry's `verify_batch` amortization (one
//!   input MSM per distinct statement, `2n + 2` Miller loops instead of
//!   `3n`) is realized across *independent clients*, not just within one
//!   caller's batch;
//! * **server** ([`server`]) — a hand-rolled TCP listener and worker
//!   thread pool over a [`ShardedKeyRegistry`] (no async runtime), with
//!   per-frame deadlines, idle shutdown, and structured request/latency/
//!   batch-occupancy metrics ([`metrics`]);
//! * **client** ([`client`]) — a small blocking client used by the load
//!   generator (`loadgen` in `zkrownn-bench`) and the integration tests.
//!
//! ## Embedding the authority
//!
//! ```
//! use rand::SeedableRng;
//! use std::sync::Arc;
//! use zkrownn::{Authority, ExtractionSpec, QuantLayer, QuantizedModel, ShardedKeyRegistry};
//! use zkrownn_gadgets::FixedConfig;
//! use zkrownn_service::{serve, Client, ServerConfig, Status};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // a (tiny) disputed model and the owner's private watermark witness
//! let cfg = FixedConfig::default();
//! let model = QuantizedModel {
//!     layers: vec![
//!         QuantLayer::Dense { in_dim: 2, out_dim: 2, w: vec![cfg.encode(0.5); 4], b: vec![0; 2] },
//!         QuantLayer::ReLU,
//!     ],
//!     input_len: 2,
//!     cfg,
//! };
//! let spec = ExtractionSpec {
//!     model,
//!     triggers: vec![vec![cfg.encode(1.0); 2]],
//!     projection: vec![cfg.encode(0.25); 4],
//!     signature: vec![true, false],
//!     max_errors: 2,
//!     fold_average: false,
//!     cfg,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (prover, verifier) = Authority::setup(&spec, &mut rng);
//!
//! // the authority registers the circuit's key and starts serving
//! let registry = Arc::new(ShardedKeyRegistry::new());
//! registry.register_kit(&verifier);
//! let handle = serve(ServerConfig::default(), Arc::clone(&registry))?;
//!
//! // a claimant ships their claim over the socket and gets a verdict
//! let claim = prover.prove(&mut rng)?;
//! let mut client = Client::connect(handle.addr())?;
//! assert_eq!(client.verify(&claim)?.status, Status::Ok);
//!
//! handle.shutdown_and_join();
//! # Ok(())
//! # }
//! ```
//!
//! [`SignedClaim`]: zkrownn::SignedClaim
//! [`ShardedKeyRegistry`]: zkrownn::ShardedKeyRegistry

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{Coalescer, CoalescerConfig};
pub use client::{is_verified, stats_field_bool, stats_field_f64, stats_field_u64, Client};
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{
    encode_request, encode_response, read_request, read_request_body, read_response, write_request,
    write_response, Opcode, ProtocolError, Request, Response, Status, HEADER_LEN, MAX_FRAME_LEN,
};
pub use server::{serve, ServerConfig, ServerHandle};

use zkrownn::{Artifact, CircuitId, WireError};
use zkrownn_groth16::VerifyingKey;

/// Serializes a key registration — the `.vk` files `zkrownn-authority
/// --keys DIR` loads at startup: the 32-byte [`CircuitId`] digest followed
/// by the [`VerifyingKey`] artifact envelope.
pub fn registration_bytes(id: CircuitId, vk: &VerifyingKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + vk.serialized_size());
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&Artifact::to_bytes(vk));
    out
}

/// Parses a key-registration file written by [`registration_bytes`].
pub fn parse_registration(bytes: &[u8]) -> Result<(CircuitId, VerifyingKey), WireError> {
    if bytes.len() < 32 {
        return Err(WireError::Truncated {
            needed: 32,
            got: bytes.len(),
        });
    }
    let mut id = [0u8; 32];
    id.copy_from_slice(&bytes[..32]);
    let vk = <VerifyingKey as Artifact>::from_bytes(&bytes[32..])?;
    Ok((CircuitId::from_bytes(id), vk))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_rejects_short_buffers() {
        assert!(matches!(
            parse_registration(&[0u8; 31]),
            Err(WireError::Truncated {
                needed: 32,
                got: 31
            })
        ));
    }
}
