//! # zkrownn-service — the dispute authority as a daemon
//!
//! ZKROWNN's end state is not a library a researcher links against but a
//! *service*: a dispute authority that holds the verifying keys for the
//! circuits under its jurisdiction and answers ownership claims from many
//! independent clients, fast. This crate is that serving layer:
//!
//! * **wire protocol** ([`protocol`]) — length-prefixed frames carrying
//!   [`SignedClaim`] artifact bytes in and typed status codes out, with a
//!   `STATS` endpoint serving a JSON metrics snapshot and admin opcodes
//!   for runtime batching control and graceful shutdown;
//! * **coalescing verifier** ([`batcher`]) — concurrent in-flight claims
//!   for the same circuit are folded into one random-linear-combination
//!   pairing check, so the registry's `verify_batch` amortization (one
//!   input MSM per distinct statement, `2n + 2` Miller loops instead of
//!   `3n`) is realized across *independent clients*, not just within one
//!   caller's batch;
//! * **server** ([`server`]) — a hand-rolled TCP listener and worker
//!   thread pool over a [`LedgeredRegistry`] (no async runtime), with
//!   per-frame deadlines, idle shutdown, and structured request/latency/
//!   batch-occupancy metrics ([`metrics`]);
//! * **client** ([`client`]) — a small blocking client used by the load
//!   generator (`loadgen` in `zkrownn-bench`) and the integration tests.
//!
//! Every registration is also committed to an append-only Merkle ledger
//! (see `zkrownn-ledger`): the `ROOT`, `PROVE_MEMBER` and `CONSISTENCY`
//! opcodes let any client fetch the 40-byte registry commitment plus
//! logarithmic proofs that verify offline, with the authority gone.
//!
//! ## Embedding the authority
//!
//! ```
//! use rand::SeedableRng;
//! use std::sync::Arc;
//! use zkrownn::{Authority, ExtractionSpec, QuantLayer, QuantizedModel};
//! use zkrownn_gadgets::FixedConfig;
//! use zkrownn_ledger::{verify_membership, LedgerLeaf, LedgeredRegistry};
//! use zkrownn_service::{serve, Client, ServerConfig, Status};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // a (tiny) disputed model and the owner's private watermark witness
//! let cfg = FixedConfig::default();
//! let model = QuantizedModel {
//!     layers: vec![
//!         QuantLayer::Dense { in_dim: 2, out_dim: 2, w: vec![cfg.encode(0.5); 4], b: vec![0; 2] },
//!         QuantLayer::ReLU,
//!     ],
//!     input_len: 2,
//!     cfg,
//! };
//! let spec = ExtractionSpec {
//!     model,
//!     triggers: vec![vec![cfg.encode(1.0); 2]],
//!     projection: vec![cfg.encode(0.25); 4],
//!     signature: vec![true, false],
//!     max_errors: 2,
//!     fold_average: false,
//!     cfg,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (prover, verifier) = Authority::setup(&spec, &mut rng);
//!
//! // the authority registers the circuit's key (which also appends a leaf
//! // to the registration ledger) and starts serving
//! let statement_digest = prover.statement().content_digest();
//! let registry = Arc::new(LedgeredRegistry::new());
//! registry.register(verifier.circuit_id(), statement_digest, verifier.verifying_key());
//! let handle = serve(ServerConfig::default(), Arc::clone(&registry))?;
//!
//! // a claimant ships their claim over the socket and gets a verdict
//! let claim = prover.prove(&mut rng)?;
//! let mut client = Client::connect(handle.addr())?;
//! assert_eq!(client.verify(&claim)?.status, Status::Ok);
//!
//! // anyone can pull the ledger head plus a membership proof and check
//! // the registration offline, long after the authority is gone
//! let leaf = LedgerLeaf { circuit_id: verifier.circuit_id(), statement_digest };
//! let root_bytes = client.ledger_root()?.payload;
//! let proof_bytes = client.prove_member(&leaf)?.payload;
//! handle.shutdown_and_join();
//! verify_membership(&root_bytes, &leaf.to_bytes(), &proof_bytes)?;
//! # Ok(())
//! # }
//! ```
//!
//! [`SignedClaim`]: zkrownn::SignedClaim
//! [`ShardedKeyRegistry`]: zkrownn::ShardedKeyRegistry

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{Coalescer, CoalescerConfig};
pub use client::{
    is_verified, stats_field_bool, stats_field_f64, stats_field_u64, Client, RetryPolicy,
    RetryingClient,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{
    encode_request, encode_response, read_request, read_request_body, read_response, write_request,
    write_response, Opcode, ProtocolError, Request, Response, Status, HEADER_LEN, MAX_FRAME_LEN,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use zkrownn_ledger::{LedgerLeaf, LedgeredRegistry};

use std::path::Path;

use zkrownn::{Artifact, CircuitId, WireError};
use zkrownn_groth16::VerifyingKey;
use zkrownn_store::{KeyStore, StoreBackend};

/// Serializes a key registration — the `.vk` files `zkrownn-authority
/// --keys DIR` loads at startup: the 32-byte [`CircuitId`] digest, the
/// 32-byte statement content digest the circuit was set up for (the second
/// half of its ledger leaf), then the [`VerifyingKey`] artifact envelope.
pub fn registration_bytes(id: CircuitId, statement_digest: [u8; 32], vk: &VerifyingKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + vk.serialized_size());
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&statement_digest);
    out.extend_from_slice(&Artifact::to_bytes(vk));
    out
}

/// Parses a key-registration file written by [`registration_bytes`].
pub fn parse_registration(bytes: &[u8]) -> Result<(CircuitId, [u8; 32], VerifyingKey), WireError> {
    if bytes.len() < 64 {
        return Err(WireError::Truncated {
            needed: 64,
            got: bytes.len(),
        });
    }
    let mut id = [0u8; 32];
    id.copy_from_slice(&bytes[..32]);
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&bytes[32..64]);
    let vk = <VerifyingKey as Artifact>::from_bytes(&bytes[64..])?;
    Ok((CircuitId::from_bytes(id), digest, vk))
}

/// Startup-recovery policy for [`load_keys_dir_with`].
#[derive(Clone, Copy, Debug)]
pub struct KeyLoadOptions {
    /// Abort on the first unreadable/corrupt key file instead of skipping
    /// it. Off by default: one torn file should not take down a daemon
    /// serving every other circuit. (`--strict-keys` on the binary.)
    pub strict: bool,
    /// Rename unreadable key files to `<name>.corrupt` so the next
    /// startup doesn't re-parse known-bad bytes and an operator can
    /// inspect or restore them. Best-effort; a failed rename still skips.
    pub quarantine: bool,
}

impl Default for KeyLoadOptions {
    fn default() -> Self {
        Self {
            strict: false,
            quarantine: true,
        }
    }
}

/// What [`load_keys_dir_with`] found and did.
#[derive(Debug, Default)]
pub struct KeyLoadReport {
    /// Registrations successfully loaded (both `.vk` and `.zkst`).
    pub loaded: usize,
    /// Key files that could not be read or parsed, with the error. When
    /// quarantining is on they have been renamed to `<name>.corrupt`.
    pub quarantined: Vec<(std::path::PathBuf, String)>,
    /// Leftover `*.tmp` staging files from an interrupted writer. They
    /// are never loaded (the atomic-commit protocol renames a finished
    /// store onto its final path) and are reported so operators can
    /// clean them up.
    pub stale_tmp: usize,
}

/// Registers every `*.vk` key-registration file **and** every `*.zkst`
/// segmented key store under `dir`; returns how many were loaded.
///
/// Equivalent to [`load_keys_dir_with`] under the default
/// [`KeyLoadOptions`]: unreadable files are quarantined and skipped, and
/// only the loaded count is reported.
pub fn load_keys_dir(registry: &LedgeredRegistry, dir: &Path) -> Result<usize, String> {
    load_keys_dir_with(registry, dir, KeyLoadOptions::default()).map(|report| report.loaded)
}

/// Registers every `*.vk` key-registration file **and** every `*.zkst`
/// segmented key store under `dir`.
///
/// Files of both kinds are processed in one sorted path order, so the
/// registration ledger — whose roots depend on append order — is identical
/// across runs and machines for the same key directory, regardless of
/// directory-iteration order. A `.zkst` store contributes its embedded
/// circuit-id / statement-digest metadata and its verifying-key segments;
/// the proving-key segments are never read, so registering a multi-GB
/// store costs only the verifying key.
///
/// # Recovery semantics
///
/// A file that cannot be read or parsed (truncated by a crash, bit-rotted,
/// wrong format) is **skipped**: the survivors still load, in the same
/// sorted order they would have loaded in without the bad file, so the
/// ledger root over the survivors is stable. Skipped files are recorded in
/// [`KeyLoadReport::quarantined`] and (unless
/// [`KeyLoadOptions::quarantine`] is off) renamed to `<name>.corrupt`.
/// With [`KeyLoadOptions::strict`] the first bad file aborts the load
/// instead. `*.tmp` staging files left by an interrupted writer are never
/// loaded and are counted in [`KeyLoadReport::stale_tmp`].
pub fn load_keys_dir_with(
    registry: &LedgeredRegistry,
    dir: &Path,
    options: KeyLoadOptions,
) -> Result<KeyLoadReport, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| e.to_string())?;
    let mut paths = Vec::new();
    let mut report = KeyLoadReport::default();
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("vk") | Some("zkst") => paths.push(path),
            Some("tmp") => {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name.ends_with(".vk.tmp") || name.ends_with(".zkst.tmp") {
                    report.stale_tmp += 1;
                }
            }
            _ => {}
        }
    }
    paths.sort();
    for path in paths {
        let parsed = if path.extension().and_then(|e| e.to_str()) == Some("zkst") {
            read_store_registration(&path)
        } else {
            std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| parse_registration(&bytes).map_err(|e| e.to_string()))
        };
        match parsed {
            Ok((id, digest, vk)) => {
                registry.register(id, digest, &vk);
                report.loaded += 1;
            }
            Err(e) if options.strict => return Err(format!("{}: {e}", path.display())),
            Err(e) => {
                if options.quarantine {
                    let mut quarantined = path.clone().into_os_string();
                    quarantined.push(".corrupt");
                    let _ = std::fs::rename(&path, &quarantined);
                }
                report.quarantined.push((path, e));
            }
        }
    }
    Ok(report)
}

/// Extracts a registration from a segmented key store: its embedded
/// metadata (circuit id, statement digest) plus the verifying-key segments.
/// A store without a metadata segment cannot be registered — the registry
/// is keyed by circuit id, which the store would not vouch for.
fn read_store_registration(path: &Path) -> Result<(CircuitId, [u8; 32], VerifyingKey), String> {
    // buffered reads: registration touches only the constants, IC and meta
    // segments, so mapping the (potentially huge) key would be waste
    let store = KeyStore::open_with(path, StoreBackend::Buffered).map_err(|e| e.to_string())?;
    let meta = store
        .meta()
        .map_err(|e| e.to_string())?
        .ok_or("key store has no circuit-binding metadata segment")?;
    let vk = store.verifying_key().map_err(|e| e.to_string())?;
    Ok((
        CircuitId::from_bytes(meta.circuit_id),
        meta.statement_digest,
        vk,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_rejects_short_buffers() {
        assert!(matches!(
            parse_registration(&[0u8; 63]),
            Err(WireError::Truncated {
                needed: 64,
                got: 63
            })
        ));
    }
}
