//! The daemon: a TCP listener feeding a fixed worker thread pool.
//!
//! Each accepted connection is owned by one worker at a time; a client may
//! pipeline any number of framed requests over it. Workers poll their
//! socket with a short timeout so they keep observing the shared shutdown
//! flag, and a frame that *starts* arriving must finish within
//! [`ServerConfig::frame_deadline`] — a stalled or truncated frame gets a
//! typed `Protocol` response (or a dead socket) instead of a hung worker.
//!
//! Responses are written under the same deadline discipline: a peer that
//! accepts a request but refuses to drain the reply can stall a worker
//! for at most one `frame_deadline` before the connection is dropped and
//! the stall is counted (`write_timeouts` in `STATS`).
//!
//! The acceptor hands connections to workers over a *bounded* queue
//! ([`ServerConfig::accept_queue`]). When every worker is busy and the
//! queue is full, new connections are shed: they receive a one-frame
//! [`Status::Busy`] response and are closed, which keeps the daemon's
//! memory and latency bounded under overload instead of queueing without
//! limit. Sheds are counted (`sheds` in `STATS`) and well-behaved
//! clients back off and reconnect.
//!
//! Shutdown is graceful and has three triggers: the `SHUTDOWN` opcode, an
//! idle timeout ([`ServerConfig::idle_shutdown`]), and
//! [`ServerHandle::shutdown`] from the embedding process. In every case
//! the listener stops accepting, workers drain the frame they are on —
//! finishing the read *and* flushing the response — and
//! [`ServerHandle::join`] returns.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zkrownn::{Artifact, SignedClaim};
use zkrownn_ledger::{LedgerLeaf, LedgeredRegistry};

use crate::batcher::{Coalescer, CoalescerConfig};
use crate::metrics::Metrics;
use crate::protocol::{read_request_body, write_response, Request, Response, Status};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — each owns one client connection at a time, so this
    /// bounds concurrent clients.
    pub workers: usize,
    /// Coalescer tuning (batching on/off, batch ceiling, drainer cap).
    pub coalescer: CoalescerConfig,
    /// Exit when no request or connection has been seen for this long.
    /// `None` = run until told to stop.
    pub idle_shutdown: Option<Duration>,
    /// A frame that started must complete within this window. The same
    /// window bounds how long a response write may stall on a slow peer.
    pub frame_deadline: Duration,
    /// Accepted connections waiting for a worker beyond this count are
    /// shed with a [`Status::Busy`] frame instead of queueing unboundedly.
    pub accept_queue: usize,
    /// Socket poll interval: how quickly workers and the acceptor observe
    /// the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|v| v.get() * 2)
                .unwrap_or(2)
                .max(16),
            coalescer: CoalescerConfig::default(),
            idle_shutdown: None,
            frame_deadline: Duration::from_secs(5),
            accept_queue: 128,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// State shared between the acceptor, the workers, and the handle.
struct Shared {
    shutdown: AtomicBool,
    started: Instant,
    /// Milliseconds since `started` of the last accept or completed frame.
    last_activity_ms: AtomicU64,
    metrics: Arc<Metrics>,
    coalescer: Coalescer,
    registry: Arc<LedgeredRegistry>,
    frame_deadline: Duration,
    poll_interval: Duration,
}

impl Shared {
    fn touch(&self) {
        let ms = self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        self.last_activity_ms.fetch_max(ms, Ordering::Relaxed);
    }

    fn idle_for(&self) -> Duration {
        let now = self.started.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_activity_ms.load(Ordering::Relaxed)))
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running server: its bound address, metrics, and lifecycle control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics (shared with the workers; live).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Whether claim coalescing is currently enabled.
    pub fn batching(&self) -> bool {
        self.shared.coalescer.batching()
    }

    /// Asks the server to stop: the listener closes and workers exit after
    /// their current frame. Returns immediately; use [`Self::join`] to
    /// wait.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until every server thread has exited.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// [`Self::shutdown`] then [`Self::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// The registry is shared — the embedding process may keep registering
/// circuits while the server runs (registration write-locks only the
/// target shard and appends a leaf to the registration ledger).
pub fn serve(config: ServerConfig, registry: Arc<LedgeredRegistry>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let metrics = Arc::new(Metrics::new());
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        last_activity_ms: AtomicU64::new(0),
        metrics: Arc::clone(&metrics),
        coalescer: Coalescer::new(
            Arc::clone(registry.keys()),
            Arc::clone(&metrics),
            config.coalescer,
        ),
        registry,
        frame_deadline: config.frame_deadline,
        poll_interval: config.poll_interval,
    });

    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.accept_queue.max(1));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let conn_rx = Arc::clone(&conn_rx);
            std::thread::Builder::new()
                .name(format!("zkrownn-worker-{i}"))
                .spawn(move || worker_loop(&shared, &conn_rx))
                .expect("spawning a worker thread failed")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        let idle_shutdown = config.idle_shutdown;
        let poll = config.poll_interval;
        std::thread::Builder::new()
            .name("zkrownn-acceptor".into())
            .spawn(move || {
                accept_loop(&listener, &shared, conn_tx, idle_shutdown, poll);
            })
            .expect("spawning the acceptor thread failed")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    conn_tx: mpsc::SyncSender<TcpStream>,
    idle_shutdown: Option<Duration>,
    poll: Duration,
) {
    loop {
        if shared.stopping() {
            break;
        }
        if let Some(idle) = idle_shutdown {
            if shared.metrics.snapshot().in_flight == 0 && shared.idle_for() > idle {
                shared.shutdown.store(true, Ordering::Relaxed);
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.touch();
                shared.metrics.record_connection();
                // workers poll with a timeout; hand them a blocking socket
                let _ = stream.set_nonblocking(false);
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => shed(shared, stream, poll),
                    Err(mpsc::TrySendError::Disconnected(_)) => break, // no workers left
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
    // dropping conn_tx ends the workers' recv loops
}

/// Load shedding: every worker is busy and the accept queue is full, so
/// the connection is refused with a one-frame [`Status::Busy`] response
/// and closed. Best-effort — a peer that will not even read the `Busy`
/// frame is simply dropped.
fn shed(shared: &Shared, stream: TcpStream, poll: Duration) {
    shared.metrics.record_shed();
    let _ = stream.set_write_timeout(Some(poll));
    let mut writer = &stream;
    let _ = write_response(
        &mut writer,
        &Response::error(Status::Busy, "server saturated; back off and retry"),
    );
}

fn worker_loop(shared: &Shared, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        // holding the lock while waiting is fine: exactly one idle worker
        // waits in recv, the rest queue on the mutex
        let conn = {
            let rx = conn_rx.lock().expect("connection channel poisoned");
            rx.recv()
        };
        match conn {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads from a polled socket, retrying timeouts until a deadline.
/// `read_exact` over this either completes the frame or returns a typed
/// error — a worker can't be wedged by a stalled peer.
///
/// Shutdown does *not* cut a frame short: graceful drain means a request
/// that started arriving before the flag flipped still gets read,
/// dispatched, and answered (bounded by the deadline) before the worker
/// exits. The idle-phase loop in [`handle_connection`] is where the
/// shutdown flag is observed.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_poll_timeout(&e) => {
                    if Instant::now() >= self.deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame did not complete before the deadline",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Writes a response to a polled socket, retrying timeouts until a
/// deadline that starts at the first byte written. A slow-reading peer
/// can therefore stall a worker for at most one `frame_deadline` per
/// response instead of wedging it on a blocking write; giving up counts
/// a `write_timeouts` metric and drops the connection.
struct DeadlineWriter<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    deadline: Option<Instant>,
}

impl<'a> DeadlineWriter<'a> {
    fn new(stream: &'a TcpStream, shared: &'a Shared) -> Self {
        Self {
            stream,
            shared,
            deadline: None,
        }
    }
}

impl Write for DeadlineWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let deadline = *self
            .deadline
            .get_or_insert_with(|| Instant::now() + self.shared.frame_deadline);
        loop {
            match (&mut &*self.stream).write(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_poll_timeout(&e) => {
                    if Instant::now() >= deadline {
                        self.shared.metrics.record_write_timeout();
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer did not drain the response before the deadline",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        (&mut &*self.stream).flush()
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.poll_interval));
    let _ = stream.set_nodelay(true);
    loop {
        // idle phase: wait for a frame's first byte, watching the flag
        let mut opcode = [0u8; 1];
        match (&stream).read(&mut opcode) {
            Ok(0) => return, // peer closed cleanly
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_poll_timeout(&e) => {
                if shared.stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }

        // a frame has started: it must finish within the deadline
        let mut reader = DeadlineReader {
            stream: &stream,
            deadline: Instant::now() + shared.frame_deadline,
        };
        let request = match read_request_body(opcode[0], &mut reader) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics.record_protocol_error();
                let _ = write_response(
                    &mut DeadlineWriter::new(&stream, shared),
                    &Response::error(Status::Protocol, e.to_string()),
                );
                return; // framing lost; a fresh connection is required
            }
        };
        shared.touch();

        let mut writer = DeadlineWriter::new(&stream, shared);
        let keep_going = dispatch(shared, &mut writer, request);
        shared.touch();
        if !keep_going {
            return;
        }
    }
}

/// Handles one decoded request; returns whether the connection survives.
fn dispatch(shared: &Shared, writer: &mut impl Write, request: Request) -> bool {
    match request {
        Request::Verify(bytes) => {
            shared.metrics.begin_verify();
            let start = Instant::now();
            let (status, message) = match SignedClaim::from_bytes(&bytes) {
                Ok(claim) => match shared.coalescer.verify(claim) {
                    Ok(()) => (Status::Ok, String::new()),
                    Err(e) => (Status::from_error(&e), e.to_string()),
                },
                Err(e) => (Status::MalformedClaim, e.to_string()),
            };
            shared.metrics.end_verify(status, start.elapsed());
            let response = if status == Status::Ok {
                Response::ok()
            } else {
                Response::error(status, message)
            };
            write_response(writer, &response).is_ok()
        }
        Request::Stats => {
            let json = shared.metrics.snapshot().to_json(
                shared.coalescer.batching(),
                shared.registry.len(),
                shared.registry.ledger_size(),
            );
            let response = Response {
                status: Status::Ok,
                payload: json.into_bytes(),
            };
            write_response(writer, &response).is_ok()
        }
        Request::Root => {
            shared.metrics.record_ledger_root();
            let response = Response {
                status: Status::Ok,
                payload: shared.registry.current_root().to_bytes(),
            };
            write_response(writer, &response).is_ok()
        }
        Request::ProveMember(leaf_bytes) => {
            let leaf = LedgerLeaf::from_bytes(&leaf_bytes)
                .expect("a 64-byte buffer always decodes as a leaf");
            let response = match shared.registry.prove_member(&leaf) {
                Some(proof) => {
                    shared.metrics.record_membership(true);
                    Response {
                        status: Status::Ok,
                        payload: proof.to_bytes(),
                    }
                }
                None => {
                    shared.metrics.record_membership(false);
                    Response::error(
                        Status::NotInLedger,
                        "no such (circuit, statement) registration in the ledger",
                    )
                }
            };
            write_response(writer, &response).is_ok()
        }
        Request::Consistency(old_size) => {
            let response = match shared.registry.prove_consistency(old_size) {
                Some(proof) => {
                    shared.metrics.record_consistency(true);
                    Response {
                        status: Status::Ok,
                        payload: proof.to_bytes(),
                    }
                }
                None => {
                    shared.metrics.record_consistency(false);
                    Response::error(
                        Status::NotInLedger,
                        format!(
                            "old size {old_size} exceeds the current ledger size {}",
                            shared.registry.ledger_size()
                        ),
                    )
                }
            };
            write_response(writer, &response).is_ok()
        }
        Request::SetBatching(on) => {
            shared.coalescer.set_batching(on);
            write_response(writer, &Response::ok()).is_ok()
        }
        Request::Shutdown => {
            let _ = write_response(writer, &Response::ok());
            shared.shutdown.store(true, Ordering::Relaxed);
            false
        }
    }
}
