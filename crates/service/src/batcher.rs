//! Claim coalescing: fold concurrent in-flight claims for the same
//! circuit into one RLC-batched pairing check.
//!
//! The registry's `verify_batch` amortizes pairing preparation, the
//! public-input MSM, and final exponentiations — but only across claims
//! that arrive *in one call*. A server whose workers each call `verify`
//! independently would never realize that win. The [`Coalescer`] recovers
//! it with group-commit dynamics:
//!
//! * each worker appends its claim to a per-circuit queue and parks on a
//!   private result channel;
//! * the first worker to find a free drainer slot becomes the **drainer**:
//!   it repeatedly swaps out everything queued (up to
//!   [`CoalescerConfig::max_batch`]), runs one
//!   [`ShardedKeyRegistry::verify_batch`] over the whole set, and posts
//!   each result back — looping until the queue is empty;
//! * while a batch is in the pairing kernel (milliseconds), newly arriving
//!   claims pile up behind it, so under load batches grow to match the
//!   arrival rate with *no* added idle waiting — an unloaded server still
//!   verifies a lone claim immediately in a batch of one.
//!
//! Claims for different circuits use different queues (and different
//! registry shards), so disputes over unrelated models never serialize
//! behind each other.
//!
//! # Degradation under poisoned batches
//!
//! A batch that fails its combined RLC check pays for itself twice: the
//! batched pairing check *plus* a per-claim fallback for every member.
//! One adversarial (or just broken) claimant hammering a circuit with
//! invalid proofs can therefore force every honest claim sharing its
//! batch to pay the fallback tax. After
//! [`CoalescerConfig::poison_threshold`] *consecutive* poisoned batches
//! for a circuit, the coalescer degrades that circuit to direct per-claim
//! verification for [`CoalescerConfig::degrade_cooldown`] — honest
//! claims then pay exactly one pairing check instead of riding in doomed
//! batches. Degradations are counted in the metrics, and the circuit
//! re-enters batching automatically when the cooldown lapses.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkrownn::{CircuitId, ShardedKeyRegistry, SignedClaim, ZkrownnError};

use crate::metrics::Metrics;

/// Tuning knobs for the [`Coalescer`].
#[derive(Clone, Debug)]
pub struct CoalescerConfig {
    /// Start with coalescing enabled? (Runtime-togglable via
    /// [`Coalescer::set_batching`] / the `SET_BATCHING` opcode.)
    pub batching: bool,
    /// Ceiling on one RLC batch — bounds worst-case latency for the claim
    /// at the head of a deep queue.
    pub max_batch: usize,
    /// Concurrent drainers allowed per circuit. On a multi-core box a few
    /// parallel batches keep every core busy; excess workers park and let
    /// their claims coalesce.
    pub max_drainers: usize,
    /// Consecutive poisoned batches (multi-claim batches whose combined
    /// RLC check failed) a circuit tolerates before it is degraded to
    /// per-claim verification.
    pub poison_threshold: u32,
    /// How long a degraded circuit stays on the per-claim path before
    /// batching resumes.
    pub degrade_cooldown: Duration,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        Self {
            batching: true,
            max_batch: 64,
            max_drainers: std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1),
            poison_threshold: 3,
            degrade_cooldown: Duration::from_secs(2),
        }
    }
}

struct Pending {
    claim: SignedClaim,
    tx: mpsc::Sender<Result<(), ZkrownnError>>,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    drainers: usize,
    /// Consecutive multi-claim batches whose combined RLC check failed.
    poison_streak: u32,
    /// While set and in the future, this circuit verifies per-claim.
    degraded_until: Option<Instant>,
}

#[derive(Default)]
struct CircuitQueue {
    state: Mutex<QueueState>,
}

/// The coalescing verification front end shared by all server workers.
pub struct Coalescer {
    registry: Arc<ShardedKeyRegistry>,
    metrics: Arc<Metrics>,
    queues: Mutex<HashMap<CircuitId, Arc<CircuitQueue>>>,
    batching: AtomicBool,
    max_batch: usize,
    max_drainers: usize,
    poison_threshold: u32,
    degrade_cooldown: Duration,
    rng_salt: AtomicU64,
}

impl Coalescer {
    /// Builds a coalescer over a shared registry and metrics sink.
    pub fn new(
        registry: Arc<ShardedKeyRegistry>,
        metrics: Arc<Metrics>,
        config: CoalescerConfig,
    ) -> Self {
        Self {
            registry,
            metrics,
            queues: Mutex::new(HashMap::new()),
            batching: AtomicBool::new(config.batching),
            max_batch: config.max_batch.max(1),
            max_drainers: config.max_drainers.max(1),
            poison_threshold: config.poison_threshold.max(1),
            degrade_cooldown: config.degrade_cooldown,
            rng_salt: AtomicU64::new(0x5a6b_726f_776e_6e01),
        }
    }

    /// The registry claims are verified against.
    pub fn registry(&self) -> &Arc<ShardedKeyRegistry> {
        &self.registry
    }

    /// Whether coalescing is currently enabled.
    pub fn batching(&self) -> bool {
        self.batching.load(Ordering::Relaxed)
    }

    /// Enables/disables coalescing at runtime (the ablation switch — with
    /// it off every claim pays its own input MSM and pairing check).
    pub fn set_batching(&self, on: bool) {
        self.batching.store(on, Ordering::Relaxed);
    }

    /// RLC challenge randomness: a fresh rng per batch, seeded from wall
    /// clock and a counter. (The vendored xoshiro rng stands in for a CSPRNG
    /// here the same way it does for `StdRng` everywhere else in this
    /// offline reproduction.)
    fn batch_rng(&self) -> StdRng {
        let salt = self
            .rng_salt
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let clock = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        StdRng::seed_from_u64(salt ^ clock)
    }

    /// Verifies one claim, transparently coalescing it with whatever other
    /// claims for the same circuit are in flight. Blocks until this claim's
    /// own verdict is known.
    pub fn verify(&self, claim: SignedClaim) -> Result<(), ZkrownnError> {
        if !self.batching() {
            // ablation path: full per-claim verification, batch size 1
            self.metrics.record_batch(1);
            return self.registry.verify(&claim);
        }

        let queue = {
            let mut queues = self.queues.lock().expect("queue map poisoned");
            Arc::clone(queues.entry(claim.circuit_id()).or_default())
        };

        let (tx, rx) = mpsc::channel();
        let drain = {
            let mut state = queue.state.lock().expect("circuit queue poisoned");
            if let Some(until) = state.degraded_until {
                if Instant::now() < until {
                    // degraded circuit: skip the queue, verify directly
                    drop(state);
                    self.metrics.record_batch(1);
                    return self.registry.verify(&claim);
                }
                // cooldown lapsed: resume batching with a clean slate
                state.degraded_until = None;
                state.poison_streak = 0;
            }
            state.pending.push_back(Pending { claim, tx });
            // become a drainer unless enough workers are already draining
            // this circuit; their drain loops are guaranteed to observe the
            // entry just pushed (they re-check under this same lock)
            if state.drainers < self.max_drainers {
                state.drainers += 1;
                true
            } else {
                false
            }
        };
        if drain {
            self.drain(&queue);
        }
        rx.recv().expect("drainer exited without posting a result")
    }

    /// Drains a circuit queue until it is empty: repeatedly swap out up to
    /// `max_batch` pending claims, batch-verify them, and post results.
    fn drain(&self, queue: &CircuitQueue) {
        loop {
            let taken: Vec<Pending> = {
                let mut state = queue.state.lock().expect("circuit queue poisoned");
                if state.pending.is_empty() {
                    state.drainers -= 1;
                    return;
                }
                let n = state.pending.len().min(self.max_batch);
                state.pending.drain(..n).collect()
            };
            let (claims, txs): (Vec<SignedClaim>, Vec<_>) =
                taken.into_iter().map(|p| (p.claim, p.tx)).unzip();
            let mut rng = self.batch_rng();
            let results = self.registry.verify_batch(&claims, &mut rng);
            self.metrics.record_batch(claims.len());
            self.track_poisoning(queue, claims.len(), &results);
            for (tx, result) in txs.into_iter().zip(results) {
                // a receiver can only be gone if its worker died; dropping
                // the result is then the right thing
                let _ = tx.send(result);
            }
        }
    }

    /// Updates a circuit's poison streak after a batch and degrades it to
    /// per-claim verification once the streak reaches the threshold. Only
    /// multi-claim batches count either way: a forged proof in a batch of
    /// one costs nobody else anything, and a singleton success says
    /// nothing about whether the poisoner left.
    fn track_poisoning(
        &self,
        queue: &CircuitQueue,
        batch_len: usize,
        results: &[Result<(), ZkrownnError>],
    ) {
        if batch_len < 2 {
            return;
        }
        let poisoned = results
            .iter()
            .any(|r| matches!(r, Err(ZkrownnError::InvalidProof(_))));
        let mut state = queue.state.lock().expect("circuit queue poisoned");
        if !poisoned {
            state.poison_streak = 0;
            return;
        }
        state.poison_streak += 1;
        if state.poison_streak >= self.poison_threshold && state.degraded_until.is_none() {
            state.degraded_until = Some(Instant::now() + self.degrade_cooldown);
            self.metrics.record_degradation();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = CoalescerConfig::default();
        assert!(c.batching);
        assert!(c.max_batch >= 1);
        assert!(c.max_drainers >= 1);
        assert!(c.poison_threshold >= 1);
        assert!(c.degrade_cooldown > Duration::ZERO);
    }

    #[test]
    fn coalescer_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Coalescer>();
    }
}
