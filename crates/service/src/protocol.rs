//! The authority's wire protocol: length-prefixed frames over a byte
//! stream.
//!
//! Both directions use the same five-byte header:
//!
//! ```text
//! request:  [opcode: u8] [len: u32 LE] [payload: len bytes]
//! response: [status: u8] [len: u32 LE] [payload: len bytes]
//! ```
//!
//! Requests:
//!
//! | opcode | name          | payload                                   |
//! |-------:|---------------|-------------------------------------------|
//! | `0x01` | `VERIFY`      | a [`SignedClaim`] artifact (`Artifact::to_bytes`) |
//! | `0x02` | `STATS`       | empty — response payload is the metrics JSON |
//! | `0x03` | `SET_BATCHING`| one byte, `0` or `1`                      |
//! | `0x04` | `SHUTDOWN`    | empty — asks the server to drain and exit |
//! | `0x05` | `ROOT`        | empty — response payload is a `LedgerRoot` artifact |
//! | `0x06` | `PROVE_MEMBER`| a 64-byte registry leaf encoding — response payload is a `MembershipProof` artifact |
//! | `0x07` | `CONSISTENCY` | eight bytes, `u64` LE old tree size — response payload is a `ConsistencyProof` artifact |
//!
//! Responses carry a [`Status`] byte; error statuses put a human-readable
//! UTF-8 message in the payload. Frames above [`MAX_FRAME_LEN`] are
//! rejected without allocating. Decoding is total: any byte sequence
//! produces either a request/response or a typed [`ProtocolError`] — never
//! a panic — so a malformed client can't take a worker down with it.
//!
//! One response can arrive *unsolicited*: a saturated server sheds a
//! fresh connection by sending a [`Status::Busy`] frame and closing, so a
//! client may read `Busy` in answer to whatever request it pipelined
//! first. `Busy` never reports on the request itself — retrying on a new
//! connection after a backoff is always correct.
//!
//! [`SignedClaim`]: zkrownn::SignedClaim

use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload (16 MiB) — comfortably above any
/// quick/paper-scale claim, far below an allocation-bomb length.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Bytes in a frame header: one opcode/status byte plus a `u32` length.
pub const HEADER_LEN: usize = 5;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Verify a [`zkrownn::SignedClaim`] (payload = artifact bytes).
    Verify = 0x01,
    /// Fetch the metrics snapshot as JSON.
    Stats = 0x02,
    /// Toggle claim coalescing at runtime (payload = one `0`/`1` byte).
    SetBatching = 0x03,
    /// Graceful shutdown: stop accepting, drain in-flight work, exit.
    Shutdown = 0x04,
    /// Fetch the current registry-ledger head (a `LedgerRoot` artifact).
    Root = 0x05,
    /// Prove a `(circuit, statement)` leaf is in the ledger (payload = the
    /// 64-byte leaf encoding; response = a `MembershipProof` artifact).
    ProveMember = 0x06,
    /// Prove the ledger at an earlier size is a prefix of the current one
    /// (payload = `u64` LE old size; response = a `ConsistencyProof`
    /// artifact).
    Consistency = 0x07,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0x01 => Some(Self::Verify),
            0x02 => Some(Self::Stats),
            0x03 => Some(Self::SetBatching),
            0x04 => Some(Self::Shutdown),
            0x05 => Some(Self::Root),
            0x06 => Some(Self::ProveMember),
            0x07 => Some(Self::Consistency),
            _ => None,
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Verify the enclosed claim artifact bytes.
    Verify(Vec<u8>),
    /// Fetch metrics.
    Stats,
    /// Enable/disable coalescing.
    SetBatching(bool),
    /// Graceful shutdown.
    Shutdown,
    /// Fetch the current ledger head.
    Root,
    /// Prove membership of the enclosed 64-byte registry leaf encoding.
    ProveMember([u8; 64]),
    /// Prove consistency from the enclosed old tree size.
    Consistency(u64),
}

impl Request {
    /// The request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Self::Verify(_) => Opcode::Verify,
            Self::Stats => Opcode::Stats,
            Self::SetBatching(_) => Opcode::SetBatching,
            Self::Shutdown => Opcode::Shutdown,
            Self::Root => Opcode::Root,
            Self::ProveMember(_) => Opcode::ProveMember,
            Self::Consistency(_) => Opcode::Consistency,
        }
    }
}

/// Response status byte. `Ok` means the request succeeded — for `VERIFY`,
/// that the claim is cryptographically valid, names a registered circuit,
/// and attests a *positive* verdict. Every other verification outcome maps
/// to its own status so clients can switch without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded (for `VERIFY`: ownership established).
    Ok = 0x00,
    /// Valid proof, but it attests the watermark was *not* recovered.
    NegativeVerdict = 0x01,
    /// The pairing check failed — forged or mismatched proof.
    InvalidProof = 0x02,
    /// No verifying key registered for the claim's circuit.
    UnknownCircuit = 0x03,
    /// Claim artifacts disagree about their circuit.
    CircuitMismatch = 0x04,
    /// The claim is about a different statement than the one under dispute.
    StatementMismatch = 0x05,
    /// The claim payload failed to decode as a `SignedClaim` artifact.
    MalformedClaim = 0x06,
    /// Any other server-side failure.
    Internal = 0x07,
    /// A ledger query named something the ledger does not hold: a
    /// `(circuit, statement)` pair never registered, or a claimed old
    /// size beyond the current tree.
    NotInLedger = 0x08,
    /// The server is saturated: its accept queue was full, so this
    /// connection was shed before any request was read. The server closes
    /// the connection after sending this frame; clients should back off
    /// and reconnect (the retrying client does so automatically).
    Busy = 0x09,
    /// The *frame* was malformed (bad opcode, oversized length, bad
    /// payload shape); the server closes the connection after sending
    /// this, since framing can't be resynchronized.
    Protocol = 0xFF,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0x00 => Some(Self::Ok),
            0x01 => Some(Self::NegativeVerdict),
            0x02 => Some(Self::InvalidProof),
            0x03 => Some(Self::UnknownCircuit),
            0x04 => Some(Self::CircuitMismatch),
            0x05 => Some(Self::StatementMismatch),
            0x06 => Some(Self::MalformedClaim),
            0x07 => Some(Self::Internal),
            0x08 => Some(Self::NotInLedger),
            0x09 => Some(Self::Busy),
            0xFF => Some(Self::Protocol),
            _ => None,
        }
    }

    /// Maps a verification error to its wire status.
    pub fn from_error(e: &zkrownn::ZkrownnError) -> Self {
        use zkrownn::ZkrownnError as E;
        match e {
            E::Wire(_) => Self::MalformedClaim,
            E::InvalidProof(_) => Self::InvalidProof,
            E::NegativeVerdict => Self::NegativeVerdict,
            E::StatementMismatch => Self::StatementMismatch,
            E::CircuitMismatch { .. } => Self::CircuitMismatch,
            E::UnknownCircuit(_) => Self::UnknownCircuit,
            E::UnsatisfiedCircuit(_) | E::Synthesis(_) | E::Store(_) => Self::Internal,
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome status.
    pub status: Status,
    /// Status-specific payload: empty on `Ok` verifications, the metrics
    /// JSON for `STATS`, a UTF-8 message on errors.
    pub payload: Vec<u8>,
}

impl Response {
    /// An empty-payload success response.
    pub fn ok() -> Self {
        Self {
            status: Status::Ok,
            payload: Vec::new(),
        }
    }

    /// An error response carrying a message.
    pub fn error(status: Status, msg: impl Into<String>) -> Self {
        Self {
            status,
            payload: msg.into().into_bytes(),
        }
    }

    /// The payload as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Everything that can go wrong decoding a frame. Decoders return these —
/// they never panic, whatever the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended (or errored) mid-frame.
    Io(io::ErrorKind),
    /// The header announced a payload larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced payload length.
        len: usize,
    },
    /// The opcode byte is not a known [`Opcode`].
    UnknownOpcode(u8),
    /// The status byte is not a known [`Status`].
    UnknownStatus(u8),
    /// The payload length is invalid for the opcode (e.g. `SET_BATCHING`
    /// with a payload that isn't exactly one `0`/`1` byte).
    BadPayload {
        /// The offending opcode.
        opcode: Opcode,
        /// The payload length received.
        len: usize,
    },
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(kind) => write!(f, "stream ended mid-frame: {kind:?}"),
            Self::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            Self::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            Self::UnknownStatus(b) => write!(f, "unknown status {b:#04x}"),
            Self::BadPayload { opcode, len } => {
                write!(f, "invalid {len}-byte payload for {opcode:?}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        Self::Io(e.kind())
    }
}

fn read_len(r: &mut impl Read) -> Result<usize, ProtocolError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len });
    }
    Ok(len)
}

fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, ProtocolError> {
    // read in bounded chunks so a hostile length can't force one huge
    // up-front allocation before any byte arrives
    let mut payload = Vec::with_capacity(len.min(64 * 1024));
    let mut remaining = len;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(payload)
}

/// Reads a request frame's body given its already-consumed opcode byte —
/// what the server calls after its idle loop has pulled one byte off the
/// socket.
pub fn read_request_body(opcode: u8, r: &mut impl Read) -> Result<Request, ProtocolError> {
    let opcode = Opcode::from_u8(opcode).ok_or(ProtocolError::UnknownOpcode(opcode))?;
    let len = read_len(r)?;
    match opcode {
        Opcode::Verify => Ok(Request::Verify(read_payload(r, len)?)),
        Opcode::Stats | Opcode::Shutdown | Opcode::Root => {
            if len != 0 {
                return Err(ProtocolError::BadPayload { opcode, len });
            }
            Ok(match opcode {
                Opcode::Stats => Request::Stats,
                Opcode::Root => Request::Root,
                _ => Request::Shutdown,
            })
        }
        Opcode::SetBatching => {
            if len != 1 {
                return Err(ProtocolError::BadPayload { opcode, len });
            }
            let payload = read_payload(r, 1)?;
            match payload[0] {
                0 => Ok(Request::SetBatching(false)),
                1 => Ok(Request::SetBatching(true)),
                _ => Err(ProtocolError::BadPayload { opcode, len }),
            }
        }
        Opcode::ProveMember => {
            if len != 64 {
                return Err(ProtocolError::BadPayload { opcode, len });
            }
            let payload = read_payload(r, 64)?;
            let mut leaf = [0u8; 64];
            leaf.copy_from_slice(&payload);
            Ok(Request::ProveMember(leaf))
        }
        Opcode::Consistency => {
            if len != 8 {
                return Err(ProtocolError::BadPayload { opcode, len });
            }
            let payload = read_payload(r, 8)?;
            let mut size = [0u8; 8];
            size.copy_from_slice(&payload);
            Ok(Request::Consistency(u64::from_le_bytes(size)))
        }
    }
}

/// Reads one request frame. Returns `Ok(None)` on a clean end-of-stream
/// (no bytes before EOF); a stream that dies mid-frame is an error.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtocolError> {
    let mut opcode = [0u8; 1];
    match r.read(&mut opcode) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    read_request_body(opcode[0], r).map(Some)
}

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let tag = req.opcode() as u8;
    match req {
        Request::Verify(bytes) => write_frame(w, tag, bytes),
        Request::Stats | Request::Shutdown | Request::Root => write_frame(w, tag, &[]),
        Request::SetBatching(on) => write_frame(w, tag, &[u8::from(*on)]),
        Request::ProveMember(leaf) => write_frame(w, tag, leaf),
        Request::Consistency(old_size) => write_frame(w, tag, &old_size.to_le_bytes()),
    }
}

/// Reads one response frame.
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtocolError> {
    let mut status = [0u8; 1];
    r.read_exact(&mut status)?;
    let status = Status::from_u8(status[0]).ok_or(ProtocolError::UnknownStatus(status[0]))?;
    let len = read_len(r)?;
    let payload = read_payload(r, len)?;
    Ok(Response { status, payload })
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, resp.status as u8, &resp.payload)
}

/// Encodes a request to a standalone byte vector (testing and buffering).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_request(&mut out, req).expect("writing to a Vec cannot fail");
    out
}

/// Encodes a response to a standalone byte vector (testing and buffering).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    write_response(&mut out, resp).expect("writing to a Vec cannot fail");
    out
}
