//! Socket-level integration tests for the authority daemon: real TCP
//! connections against an in-process server, covering verdict mapping,
//! malformed input, concurrency + coalescing, runtime batching control,
//! and all three shutdown triggers.
//!
//! One proving fixture is built lazily and shared by every test: four
//! variants of the same tiny extraction circuit (honest, wrong-watermark,
//! forged-under-different-toxic-waste, different-shape) exercise each
//! response status without any network training.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::SeedableRng;
use zkrownn::{
    Artifact, Authority, CircuitId, ExtractionSpec, KeyStore, MemoryBudget, QuantLayer,
    QuantizedModel,
};
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::VerifyingKey;
use zkrownn_ledger::{verify_consistency, verify_membership, LedgerLeaf, LedgerRoot};
use zkrownn_service::{
    load_keys_dir, parse_registration, read_response, registration_bytes, serve, stats_field_bool,
    stats_field_u64, Client, LedgeredRegistry, Request, ServerConfig, ServerHandle, Status,
};

/// A tiny, deterministic extraction spec (no training). Projections come
/// out positive, so every extracted bit is 1: with `max_errors = 0` the
/// verdict is exactly "is the signature all-ones".
fn tiny_spec(signature: Vec<bool>) -> ExtractionSpec {
    let cfg = FixedConfig::default();
    let model = QuantizedModel {
        layers: vec![
            QuantLayer::Dense {
                in_dim: 2,
                out_dim: 2,
                w: vec![cfg.encode(0.5); 4],
                b: vec![0; 2],
            },
            QuantLayer::ReLU,
        ],
        input_len: 2,
        cfg,
    };
    ExtractionSpec {
        model,
        triggers: vec![vec![cfg.encode(1.0); 2]; 2],
        projection: vec![cfg.encode(0.25); 2 * signature.len()],
        signature,
        max_errors: 0,
        fold_average: false,
        cfg,
    }
}

struct Fixture {
    /// Registered circuit + key for the honest claims.
    id: [u8; 32],
    /// Content digest of the statement the circuit was set up for — the
    /// second half of its ledger leaf.
    statement_digest: [u8; 32],
    vk_bytes: Vec<u8>,
    /// Distinct honest claims (verdict 1, verify under `vk`).
    claims: Vec<Vec<u8>>,
    /// Sound proof of verdict 0 under the *same* keys.
    negative: Vec<u8>,
    /// Same circuit id, different toxic waste — cryptographically wrong.
    forged: Vec<u8>,
    /// A different circuit shape, never registered.
    unknown: Vec<u8>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let spec = tiny_spec(vec![true; 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(601);
        let (prover, verifier) = Authority::setup(&spec, &mut rng);
        let claims = (0..8)
            .map(|_| prover.prove(&mut rng).expect("honest claim").to_bytes())
            .collect();

        // same seed + same circuit shape ⇒ identical keys; the flipped
        // signature bit only changes the private witness, so this prover
        // produces a *sound* proof of verdict 0 under the registered key
        let mut neg_spec = tiny_spec(vec![true; 4]);
        neg_spec.signature[0] = false;
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(601);
        let (neg_prover, neg_verifier) = Authority::setup(&neg_spec, &mut rng2);
        assert_eq!(neg_verifier.circuit_id(), verifier.circuit_id());
        let negative = neg_prover.prove(&mut rng2).expect("sound negative claim");
        assert!(!negative.verdict());

        // different seed ⇒ different toxic waste, same circuit id — the
        // claim decodes fine but fails the pairing check
        let mut rng3 = rand::rngs::StdRng::seed_from_u64(77_777);
        let (forged_prover, forged_verifier) = Authority::setup(&spec, &mut rng3);
        assert_eq!(forged_verifier.circuit_id(), verifier.circuit_id());
        let forged = forged_prover.prove(&mut rng3).expect("forged claim proves");

        // a different signature width is a different synthesis trace ⇒ a
        // circuit id the server has never seen
        let mut rng4 = rand::rngs::StdRng::seed_from_u64(42);
        let (unknown_prover, unknown_verifier) =
            Authority::setup(&tiny_spec(vec![true; 2]), &mut rng4);
        assert_ne!(unknown_verifier.circuit_id(), verifier.circuit_id());
        let unknown = unknown_prover
            .prove(&mut rng4)
            .expect("unknown-circuit claim");

        Fixture {
            id: *verifier.circuit_id().as_bytes(),
            statement_digest: prover.statement().content_digest(),
            vk_bytes: Artifact::to_bytes(verifier.verifying_key()),
            claims,
            negative: negative.to_bytes(),
            forged: forged.to_bytes(),
            unknown: unknown.to_bytes(),
        }
    })
}

fn fixture_vk() -> VerifyingKey {
    Artifact::from_bytes(&fixture().vk_bytes).expect("fixture vk decodes")
}

fn test_registry() -> Arc<LedgeredRegistry> {
    let f = fixture();
    let registry = Arc::new(LedgeredRegistry::new());
    registry.register(
        CircuitId::from_bytes(f.id),
        f.statement_digest,
        &fixture_vk(),
    );
    registry
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 8,
        frame_deadline: Duration::from_millis(500),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start_server(config: ServerConfig) -> ServerHandle {
    serve(config, test_registry()).expect("server binds")
}

/// Joins a handle on a helper thread so a hung shutdown fails the test
/// instead of wedging the suite.
fn join_within(handle: ServerHandle, timeout: Duration) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .expect("server threads did not exit in time");
}

#[test]
fn happy_path_claim_verifies_over_the_socket() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);

    let stats = client.stats_json().unwrap();
    assert_eq!(stats_field_u64(&stats, "requests"), Some(1));
    assert_eq!(stats_field_u64(&stats, "ok"), Some(1));
    assert_eq!(stats_field_u64(&stats, "registered_circuits"), Some(1));
    assert_eq!(stats_field_u64(&stats, "ledger_size"), Some(1));
    assert_eq!(stats_field_bool(&stats, "batching"), Some(true));
    assert_eq!(stats.matches('{').count(), stats.matches('}').count());

    handle.shutdown_and_join();
}

#[test]
fn verdicts_map_to_typed_statuses_and_the_connection_survives() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let f = fixture();

    let cases = [
        (&f.negative, Status::NegativeVerdict),
        (&f.forged, Status::InvalidProof),
        (&f.unknown, Status::UnknownCircuit),
    ];
    for (claim, expected) in cases {
        let response = client.verify_bytes(claim.clone()).unwrap();
        assert_eq!(response.status, expected, "{expected:?}");
        assert!(!response.payload.is_empty(), "errors carry a message");
    }
    // the same connection still serves honest claims after every rejection
    let response = client.verify_bytes(f.claims[1].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);

    handle.shutdown_and_join();
}

#[test]
fn malformed_claim_bytes_are_a_typed_error_not_a_dead_connection() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    for garbage in [vec![], vec![0u8; 3], vec![0xa5u8; 600]] {
        let response = client.verify_bytes(garbage).unwrap();
        assert_eq!(response.status, Status::MalformedClaim);
    }
    // a truncated *valid* claim prefix is also caught by the envelope
    let truncated = fixture().claims[0][..40].to_vec();
    let response = client.verify_bytes(truncated).unwrap();
    assert_eq!(response.status, Status::MalformedClaim);

    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert!(handle.metrics().snapshot().outcome(Status::MalformedClaim) == 4);

    handle.shutdown_and_join();
}

#[test]
fn framing_violations_get_a_protocol_response_and_close_the_connection() {
    let handle = start_server(test_config());

    // unknown opcode
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[0x7f, 0, 0, 0, 0]).unwrap();
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // oversized frame length
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    let mut frame = vec![0x01];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&frame).unwrap();
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // a frame that starts but never finishes trips the deadline instead of
    // wedging the worker
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[0x01, 64, 0, 0, 0, 1, 2, 3]).unwrap(); // 3 of 64 bytes
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // the server took no damage: a fresh connection verifies fine
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert!(handle.metrics().snapshot().protocol_errors >= 3);

    handle.shutdown_and_join();
}

#[test]
fn concurrent_clients_all_get_their_own_verdict() {
    let handle = start_server(test_config());
    let addr = handle.addr();
    let f = fixture();

    std::thread::scope(|scope| {
        for t in 0..8 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..4 {
                    let claim = &f.claims[(t + i) % f.claims.len()];
                    let response = client.verify_bytes(claim.clone()).unwrap();
                    assert_eq!(response.status, Status::Ok, "client {t} claim {i}");
                }
            });
        }
    });

    let snapshot = handle.metrics().snapshot();
    assert_eq!(snapshot.outcome(Status::Ok), 32);
    assert_eq!(snapshot.batched_claims, 32);
    assert!(snapshot.batches >= 1 && snapshot.batches <= 32);
    assert!(snapshot.connections >= 8);

    handle.shutdown_and_join();
}

#[test]
fn batching_toggles_at_runtime_and_shows_in_stats() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.set_batching(false).unwrap().status, Status::Ok);
    assert!(!handle.batching());
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    let stats = client.stats_json().unwrap();
    assert_eq!(stats_field_bool(&stats, "batching"), Some(false));
    // the ablation path still counts occupancy — as batches of one
    assert_eq!(stats_field_u64(&stats, "batches"), Some(1));
    assert_eq!(stats_field_u64(&stats, "batched_claims"), Some(1));

    assert_eq!(client.set_batching(true).unwrap().status, Status::Ok);
    assert!(handle.batching());

    handle.shutdown_and_join();
}

#[test]
fn shutdown_opcode_acknowledges_then_stops_the_server() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.request(&Request::Shutdown).unwrap();
    assert_eq!(response.status, Status::Ok);
    join_within(handle, Duration::from_secs(5));
}

#[test]
fn idle_server_shuts_itself_down() {
    let config = ServerConfig {
        idle_shutdown: Some(Duration::from_millis(200)),
        ..test_config()
    };
    let handle = start_server(config);
    // one real request, then silence
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    drop(client);
    join_within(handle, Duration::from_secs(10));
}

#[test]
fn handle_shutdown_stops_a_server_with_open_connections() {
    let handle = start_server(test_config());
    let _parked = TcpStream::connect(handle.addr()).unwrap(); // idle client
    handle.shutdown();
    join_within(handle, Duration::from_secs(5));
}

/// The tentpole acceptance path: register N keys, fetch the root and a
/// membership proof for each over the socket, *shut the authority down*,
/// and verify every registration offline from bytes alone.
#[test]
fn membership_proofs_verify_offline_after_the_authority_is_gone() {
    let vk = fixture_vk();
    let registry = Arc::new(LedgeredRegistry::new());
    let leaves: Vec<LedgerLeaf> = (0..9u8)
        .map(|i| {
            let leaf = LedgerLeaf {
                circuit_id: CircuitId::from_bytes([i + 1; 32]),
                statement_digest: [0x40 + i; 32],
            };
            let reg = registry.register(leaf.circuit_id, leaf.statement_digest, &vk);
            assert_eq!(reg.appended_at, Some(u64::from(i)));
            leaf
        })
        .collect();

    let handle = serve(test_config(), Arc::clone(&registry)).expect("server binds");
    let mut client = Client::connect(handle.addr()).unwrap();

    let root_response = client.ledger_root().unwrap();
    assert_eq!(root_response.status, Status::Ok);
    let root_bytes = root_response.payload;

    let proofs: Vec<Vec<u8>> = leaves
        .iter()
        .map(|leaf| {
            let response = client.prove_member(leaf).unwrap();
            assert_eq!(response.status, Status::Ok);
            response.payload
        })
        .collect();

    // a pair that was never registered is a typed miss, not a protocol kill
    let stranger = LedgerLeaf {
        circuit_id: CircuitId::from_bytes([0xEE; 32]),
        statement_digest: [0; 32],
    };
    let response = client.prove_member(&stranger).unwrap();
    assert_eq!(response.status, Status::NotInLedger);

    let stats = client.stats_json().unwrap();
    assert_eq!(stats_field_u64(&stats, "registered_circuits"), Some(9));
    assert_eq!(stats_field_u64(&stats, "ledger_size"), Some(9));
    assert_eq!(stats_field_u64(&stats, "ledger_roots"), Some(1));
    assert_eq!(stats_field_u64(&stats, "ledger_membership_proofs"), Some(9));
    assert_eq!(stats_field_u64(&stats, "ledger_membership_misses"), Some(1));

    // the authority is gone for good...
    handle.shutdown_and_join();
    drop(registry);

    // ...yet every registration checks out from the captured bytes alone
    for (leaf, proof_bytes) in leaves.iter().zip(&proofs) {
        verify_membership(&root_bytes, &leaf.to_bytes(), proof_bytes)
            .expect("offline verification needs no authority");
    }
    // and each proof is pinned to its own leaf
    assert!(verify_membership(&root_bytes, &leaves[0].to_bytes(), &proofs[1]).is_err());
}

/// Root at size K must be provably a prefix of the root at size N after
/// the embedding process registers more circuits at runtime.
#[test]
fn consistency_proofs_link_roots_across_runtime_registrations() {
    let vk = fixture_vk();
    let registry = Arc::new(LedgeredRegistry::new());
    for i in 0..3u8 {
        registry.register(CircuitId::from_bytes([i + 1; 32]), [i; 32], &vk);
    }

    let handle = serve(test_config(), Arc::clone(&registry)).expect("server binds");
    let mut client = Client::connect(handle.addr()).unwrap();

    let old_root_bytes = client.ledger_root().unwrap().payload;
    let old_root: LedgerRoot = Artifact::from_bytes(&old_root_bytes).unwrap();
    assert_eq!(old_root.size, 3);

    // the registry keeps growing while the server runs
    for i in 3..8u8 {
        registry.register(CircuitId::from_bytes([i + 1; 32]), [i; 32], &vk);
    }

    let new_root_bytes = client.ledger_root().unwrap().payload;
    let response = client.consistency(old_root.size).unwrap();
    assert_eq!(response.status, Status::Ok);
    let proof_bytes = response.payload;

    // an old size beyond the tree is a typed miss
    let miss = client.consistency(999).unwrap();
    assert_eq!(miss.status, Status::NotInLedger);

    let stats = client.stats_json().unwrap();
    assert_eq!(
        stats_field_u64(&stats, "ledger_consistency_proofs"),
        Some(1)
    );
    assert_eq!(
        stats_field_u64(&stats, "ledger_consistency_misses"),
        Some(1)
    );

    handle.shutdown_and_join();

    verify_consistency(&old_root_bytes, &new_root_bytes, &proof_bytes)
        .expect("the old registry is a prefix of the new one");
    // swapped roots must not verify
    assert!(verify_consistency(&new_root_bytes, &old_root_bytes, &proof_bytes).is_err());
}

/// `zkrownn-authority --keys DIR` loads registrations in sorted path
/// order, so the published ledger root is reproducible no matter what
/// order the filesystem hands back directory entries. Segmented key
/// stores (`*.zkst`) participate in the *same* sorted sequence as `*.vk`
/// registration files.
#[test]
fn key_directory_loading_is_deterministic_and_sorted() {
    let vk = fixture_vk();
    let files: Vec<(String, Vec<u8>)> = (0..6u8)
        .map(|i| {
            let id = CircuitId::from_bytes([0x30 + i; 32]);
            (format!("key-{i}.vk"), registration_bytes(id, [i; 32], &vk))
        })
        .collect();

    let base = std::env::temp_dir().join(format!("zkrownn-e2e-keys-{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    std::fs::create_dir_all(&dir_a).unwrap();
    std::fs::create_dir_all(&dir_b).unwrap();
    for (name, bytes) in &files {
        std::fs::write(dir_a.join(name), bytes).unwrap();
    }
    for (name, bytes) in files.iter().rev() {
        std::fs::write(dir_b.join(name), bytes).unwrap();
    }

    // a store-backed key, named to land mid-sequence ("key-2.vk" <
    // "key-2a.zkst" < "key-3.vk"); the authority registers it from the
    // store's embedded metadata + verifying-key segments
    let statement = tiny_spec(vec![true; 4]).statement();
    let store_path = base.join("key-2a.zkst");
    let mut rng = rand::rngs::StdRng::seed_from_u64(733);
    Authority::setup_statement_stored(&statement, &store_path, &mut rng, MemoryBudget::from_mb(8))
        .expect("streaming setup writes the store");
    std::fs::copy(&store_path, dir_a.join("key-2a.zkst")).unwrap();
    std::fs::copy(&store_path, dir_b.join("key-2a.zkst")).unwrap();

    let reg_a = LedgeredRegistry::new();
    let reg_b = LedgeredRegistry::new();
    assert_eq!(load_keys_dir(&reg_a, &dir_a).unwrap(), 7);
    assert_eq!(load_keys_dir(&reg_b, &dir_b).unwrap(), 7);
    assert_eq!(reg_a.current_root().root, reg_b.current_root().root);

    // ...and that order is exactly sorted-by-name, store included
    let store = KeyStore::open(&store_path).unwrap();
    let by_hand = LedgeredRegistry::new();
    for (name, bytes) in &files {
        let (id, digest, parsed_vk) = parse_registration(bytes).unwrap();
        by_hand.register(id, digest, &parsed_vk);
        if name == "key-2.vk" {
            by_hand.register(
                statement.circuit_id(),
                statement.content_digest(),
                &store.verifying_key().unwrap(),
            );
        }
    }
    assert_eq!(reg_a.current_root().root, by_hand.current_root().root);

    std::fs::remove_dir_all(&base).ok();
}
