//! Socket-level integration tests for the authority daemon: real TCP
//! connections against an in-process server, covering verdict mapping,
//! malformed input, concurrency + coalescing, runtime batching control,
//! and all three shutdown triggers.
//!
//! One proving fixture is built lazily and shared by every test: four
//! variants of the same tiny extraction circuit (honest, wrong-watermark,
//! forged-under-different-toxic-waste, different-shape) exercise each
//! response status without any network training.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::SeedableRng;
use zkrownn::{
    Artifact, Authority, ExtractionSpec, QuantLayer, QuantizedModel, ShardedKeyRegistry,
};
use zkrownn_gadgets::FixedConfig;
use zkrownn_service::{
    read_response, serve, stats_field_bool, stats_field_u64, Client, Request, ServerConfig,
    ServerHandle, Status,
};

/// A tiny, deterministic extraction spec (no training). Projections come
/// out positive, so every extracted bit is 1: with `max_errors = 0` the
/// verdict is exactly "is the signature all-ones".
fn tiny_spec(signature: Vec<bool>) -> ExtractionSpec {
    let cfg = FixedConfig::default();
    let model = QuantizedModel {
        layers: vec![
            QuantLayer::Dense {
                in_dim: 2,
                out_dim: 2,
                w: vec![cfg.encode(0.5); 4],
                b: vec![0; 2],
            },
            QuantLayer::ReLU,
        ],
        input_len: 2,
        cfg,
    };
    ExtractionSpec {
        model,
        triggers: vec![vec![cfg.encode(1.0); 2]; 2],
        projection: vec![cfg.encode(0.25); 2 * signature.len()],
        signature,
        max_errors: 0,
        fold_average: false,
        cfg,
    }
}

struct Fixture {
    /// Registered circuit + key for the honest claims.
    id: [u8; 32],
    vk_bytes: Vec<u8>,
    /// Distinct honest claims (verdict 1, verify under `vk`).
    claims: Vec<Vec<u8>>,
    /// Sound proof of verdict 0 under the *same* keys.
    negative: Vec<u8>,
    /// Same circuit id, different toxic waste — cryptographically wrong.
    forged: Vec<u8>,
    /// A different circuit shape, never registered.
    unknown: Vec<u8>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let spec = tiny_spec(vec![true; 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(601);
        let (prover, verifier) = Authority::setup(&spec, &mut rng);
        let claims = (0..8)
            .map(|_| prover.prove(&mut rng).expect("honest claim").to_bytes())
            .collect();

        // same seed + same circuit shape ⇒ identical keys; the flipped
        // signature bit only changes the private witness, so this prover
        // produces a *sound* proof of verdict 0 under the registered key
        let mut neg_spec = tiny_spec(vec![true; 4]);
        neg_spec.signature[0] = false;
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(601);
        let (neg_prover, neg_verifier) = Authority::setup(&neg_spec, &mut rng2);
        assert_eq!(neg_verifier.circuit_id(), verifier.circuit_id());
        let negative = neg_prover.prove(&mut rng2).expect("sound negative claim");
        assert!(!negative.verdict());

        // different seed ⇒ different toxic waste, same circuit id — the
        // claim decodes fine but fails the pairing check
        let mut rng3 = rand::rngs::StdRng::seed_from_u64(77_777);
        let (forged_prover, forged_verifier) = Authority::setup(&spec, &mut rng3);
        assert_eq!(forged_verifier.circuit_id(), verifier.circuit_id());
        let forged = forged_prover.prove(&mut rng3).expect("forged claim proves");

        // a different signature width is a different synthesis trace ⇒ a
        // circuit id the server has never seen
        let mut rng4 = rand::rngs::StdRng::seed_from_u64(42);
        let (unknown_prover, unknown_verifier) =
            Authority::setup(&tiny_spec(vec![true; 2]), &mut rng4);
        assert_ne!(unknown_verifier.circuit_id(), verifier.circuit_id());
        let unknown = unknown_prover
            .prove(&mut rng4)
            .expect("unknown-circuit claim");

        Fixture {
            id: *verifier.circuit_id().as_bytes(),
            vk_bytes: Artifact::to_bytes(verifier.verifying_key()),
            claims,
            negative: negative.to_bytes(),
            forged: forged.to_bytes(),
            unknown: unknown.to_bytes(),
        }
    })
}

fn test_registry() -> Arc<ShardedKeyRegistry> {
    let f = fixture();
    let vk = Artifact::from_bytes(&f.vk_bytes).expect("fixture vk decodes");
    let registry = Arc::new(ShardedKeyRegistry::new());
    registry.register(zkrownn::CircuitId::from_bytes(f.id), &vk);
    registry
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 8,
        frame_deadline: Duration::from_millis(500),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start_server(config: ServerConfig) -> ServerHandle {
    serve(config, test_registry()).expect("server binds")
}

/// Joins a handle on a helper thread so a hung shutdown fails the test
/// instead of wedging the suite.
fn join_within(handle: ServerHandle, timeout: Duration) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .expect("server threads did not exit in time");
}

#[test]
fn happy_path_claim_verifies_over_the_socket() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);

    let stats = client.stats_json().unwrap();
    assert_eq!(stats_field_u64(&stats, "requests"), Some(1));
    assert_eq!(stats_field_u64(&stats, "ok"), Some(1));
    assert_eq!(stats_field_u64(&stats, "circuits"), Some(1));
    assert_eq!(stats_field_bool(&stats, "batching"), Some(true));
    assert_eq!(stats.matches('{').count(), stats.matches('}').count());

    handle.shutdown_and_join();
}

#[test]
fn verdicts_map_to_typed_statuses_and_the_connection_survives() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let f = fixture();

    let cases = [
        (&f.negative, Status::NegativeVerdict),
        (&f.forged, Status::InvalidProof),
        (&f.unknown, Status::UnknownCircuit),
    ];
    for (claim, expected) in cases {
        let response = client.verify_bytes(claim.clone()).unwrap();
        assert_eq!(response.status, expected, "{expected:?}");
        assert!(!response.payload.is_empty(), "errors carry a message");
    }
    // the same connection still serves honest claims after every rejection
    let response = client.verify_bytes(f.claims[1].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);

    handle.shutdown_and_join();
}

#[test]
fn malformed_claim_bytes_are_a_typed_error_not_a_dead_connection() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    for garbage in [vec![], vec![0u8; 3], vec![0xa5u8; 600]] {
        let response = client.verify_bytes(garbage).unwrap();
        assert_eq!(response.status, Status::MalformedClaim);
    }
    // a truncated *valid* claim prefix is also caught by the envelope
    let truncated = fixture().claims[0][..40].to_vec();
    let response = client.verify_bytes(truncated).unwrap();
    assert_eq!(response.status, Status::MalformedClaim);

    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert!(handle.metrics().snapshot().outcome(Status::MalformedClaim) == 4);

    handle.shutdown_and_join();
}

#[test]
fn framing_violations_get_a_protocol_response_and_close_the_connection() {
    let handle = start_server(test_config());

    // unknown opcode
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[0x7f, 0, 0, 0, 0]).unwrap();
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // oversized frame length
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    let mut frame = vec![0x01];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&frame).unwrap();
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // a frame that starts but never finishes trips the deadline instead of
    // wedging the worker
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[0x01, 64, 0, 0, 0, 1, 2, 3]).unwrap(); // 3 of 64 bytes
    let response = read_response(&mut raw).unwrap();
    assert_eq!(response.status, Status::Protocol);

    // the server took no damage: a fresh connection verifies fine
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    assert!(handle.metrics().snapshot().protocol_errors >= 3);

    handle.shutdown_and_join();
}

#[test]
fn concurrent_clients_all_get_their_own_verdict() {
    let handle = start_server(test_config());
    let addr = handle.addr();
    let f = fixture();

    std::thread::scope(|scope| {
        for t in 0..8 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..4 {
                    let claim = &f.claims[(t + i) % f.claims.len()];
                    let response = client.verify_bytes(claim.clone()).unwrap();
                    assert_eq!(response.status, Status::Ok, "client {t} claim {i}");
                }
            });
        }
    });

    let snapshot = handle.metrics().snapshot();
    assert_eq!(snapshot.outcome(Status::Ok), 32);
    assert_eq!(snapshot.batched_claims, 32);
    assert!(snapshot.batches >= 1 && snapshot.batches <= 32);
    assert!(snapshot.connections >= 8);

    handle.shutdown_and_join();
}

#[test]
fn batching_toggles_at_runtime_and_shows_in_stats() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.set_batching(false).unwrap().status, Status::Ok);
    assert!(!handle.batching());
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    let stats = client.stats_json().unwrap();
    assert_eq!(stats_field_bool(&stats, "batching"), Some(false));
    // the ablation path still counts occupancy — as batches of one
    assert_eq!(stats_field_u64(&stats, "batches"), Some(1));
    assert_eq!(stats_field_u64(&stats, "batched_claims"), Some(1));

    assert_eq!(client.set_batching(true).unwrap().status, Status::Ok);
    assert!(handle.batching());

    handle.shutdown_and_join();
}

#[test]
fn shutdown_opcode_acknowledges_then_stops_the_server() {
    let handle = start_server(test_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.request(&Request::Shutdown).unwrap();
    assert_eq!(response.status, Status::Ok);
    join_within(handle, Duration::from_secs(5));
}

#[test]
fn idle_server_shuts_itself_down() {
    let config = ServerConfig {
        idle_shutdown: Some(Duration::from_millis(200)),
        ..test_config()
    };
    let handle = start_server(config);
    // one real request, then silence
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify_bytes(fixture().claims[0].clone()).unwrap();
    assert_eq!(response.status, Status::Ok);
    drop(client);
    join_within(handle, Duration::from_secs(10));
}

#[test]
fn handle_shutdown_stops_a_server_with_open_connections() {
    let handle = start_server(test_config());
    let _parked = TcpStream::connect(handle.addr()).unwrap(); // idle client
    handle.shutdown();
    join_within(handle, Duration::from_secs(5));
}
