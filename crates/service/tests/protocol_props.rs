//! Property tests for the wire protocol: encoding round-trips exactly, and
//! decoding is *total* — truncated, bit-flipped, oversized and plain-garbage
//! frames all come back as a decoded frame or a typed [`ProtocolError`],
//! never a panic (and, reading from finite buffers, never a hang).

use std::io::Cursor;

use proptest::prelude::*;
use zkrownn_faults::FaultPlan;
use zkrownn_service::{
    encode_request, encode_response, read_request, read_response, write_request, write_response,
    Opcode, ProtocolError, Request, Response, Status, HEADER_LEN, MAX_FRAME_LEN,
};

const ALL_STATUSES: [Status; 11] = [
    Status::Ok,
    Status::NegativeVerdict,
    Status::InvalidProof,
    Status::UnknownCircuit,
    Status::CircuitMismatch,
    Status::StatementMismatch,
    Status::MalformedClaim,
    Status::Internal,
    Status::NotInLedger,
    Status::Busy,
    Status::Protocol,
];

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..7,
        prop::collection::vec(any::<u8>(), 0..300),
        any::<bool>(),
        any::<[u8; 64]>(),
        any::<u64>(),
    )
        .prop_map(|(kind, bytes, on, leaf, old_size)| match kind {
            0 => Request::Verify(bytes),
            1 => Request::Stats,
            2 => Request::SetBatching(on),
            3 => Request::Root,
            4 => Request::ProveMember(leaf),
            5 => Request::Consistency(old_size),
            _ => Request::Shutdown,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0usize..ALL_STATUSES.len(),
        prop::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(s, payload)| Response {
            status: ALL_STATUSES[s],
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrip(req in arb_request()) {
        let wire = encode_request(&req);
        prop_assert!(wire.len() >= HEADER_LEN);
        let decoded = read_request(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(decoded, Some(req));
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let wire = encode_response(&resp);
        let decoded = read_response(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn truncated_request_is_a_typed_error(
        req in arb_request(),
        cut_seed in any::<u16>(),
    ) {
        let wire = encode_request(&req);
        let cut = cut_seed as usize % wire.len(); // strictly shorter
        match read_request(&mut Cursor::new(&wire[..cut])) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only with no bytes"),
            Ok(Some(_)) => prop_assert!(
                false,
                "a truncated frame must not decode"
            ),
            Err(ProtocolError::Io(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    #[test]
    fn flipped_byte_never_panics_or_misframes(
        req in arb_request(),
        pos_seed in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut wire = encode_request(&req);
        let pos = pos_seed as usize % wire.len();
        wire[pos] ^= 1 << bit;
        // any outcome is legal except a panic; when a frame does decode it
        // must have consumed a coherent prefix (re-encoding cannot grow
        // beyond what was read)
        if let Ok(Some(decoded)) = read_request(&mut Cursor::new(&wire)) {
            prop_assert!(encode_request(&decoded).len() <= wire.len());
        }
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_request(&mut Cursor::new(&bytes));
        let _ = read_response(&mut Cursor::new(&bytes));
    }

    // The decoders stay total when the *transport* misbehaves, not just
    // the bytes: seeded fault plans interrupt, tear, stall and reset the
    // stream mid-frame, and every outcome must be a decoded frame or a
    // typed error — never a panic, never a hang on these finite buffers.
    #[test]
    fn fault_injected_reads_are_total(
        req in arb_request(),
        resp in arb_response(),
        seed in any::<u64>(),
    ) {
        let wire = encode_request(&req);
        let armed = FaultPlan::from_seed(seed, wire.len() as u64 + 8).arm();
        match read_request(&mut armed.read(Cursor::new(&wire))) {
            Ok(Some(decoded)) => prop_assert_eq!(decoded, req, "seed={}", seed),
            Ok(None) | Err(ProtocolError::Io(_)) => {}
            Err(e) => prop_assert!(false, "seed={}: unexpected error class: {e:?}", seed),
        }

        let wire = encode_response(&resp);
        let armed = FaultPlan::from_seed(seed, wire.len() as u64 + 8).arm();
        match read_response(&mut armed.read(Cursor::new(&wire))) {
            Ok(decoded) => prop_assert_eq!(decoded, resp, "seed={}", seed),
            Err(ProtocolError::Io(_)) => {}
            Err(e) => prop_assert!(false, "seed={}: unexpected error class: {e:?}", seed),
        }
    }

    // The encoders are fault-total too: a write that errors mid-frame has
    // committed at most a strict prefix of the encoding — an interrupted
    // sender can never have placed bytes beyond the tear on the wire.
    #[test]
    fn fault_injected_writes_commit_at_most_a_prefix(
        req in arb_request(),
        resp in arb_response(),
        seed in any::<u64>(),
    ) {
        let full = encode_request(&req);
        let armed = FaultPlan::from_seed(seed, full.len() as u64 + 8).arm();
        let mut sink = armed.write(Vec::new());
        match write_request(&mut sink, &req) {
            Ok(()) => prop_assert_eq!(sink.get_ref(), &full, "seed={}", seed),
            Err(_) => {
                let committed = sink.get_ref();
                prop_assert!(committed.len() < full.len(), "seed={}", seed);
                prop_assert_eq!(
                    committed.as_slice(),
                    &full[..committed.len()],
                    "seed={}: committed bytes are not a prefix", seed
                );
            }
        }

        let full = encode_response(&resp);
        let armed = FaultPlan::from_seed(seed, full.len() as u64 + 8).arm();
        let mut sink = armed.write(Vec::new());
        match write_response(&mut sink, &resp) {
            Ok(()) => prop_assert_eq!(sink.get_ref(), &full, "seed={}", seed),
            Err(_) => {
                let committed = sink.get_ref();
                prop_assert!(committed.len() < full.len(), "seed={}", seed);
                prop_assert_eq!(
                    committed.as_slice(),
                    &full[..committed.len()],
                    "seed={}: committed bytes are not a prefix", seed
                );
            }
        }
    }
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    for opcode in [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07] {
        let mut wire = vec![opcode];
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert_eq!(
            read_request(&mut Cursor::new(&wire)),
            Err(ProtocolError::Oversized {
                len: MAX_FRAME_LEN + 1
            }),
            "opcode {opcode:#04x}"
        );
    }
    let mut wire = vec![Status::Ok as u8];
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        read_response(&mut Cursor::new(&wire)),
        Err(ProtocolError::Oversized {
            len: u32::MAX as usize
        })
    );
}

#[test]
fn unknown_opcodes_and_statuses_are_typed() {
    for b in [0x00u8, 0x08, 0x7f, 0xff] {
        let mut wire = vec![b];
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            read_request(&mut Cursor::new(&wire)),
            Err(ProtocolError::UnknownOpcode(b))
        );
    }
    let mut wire = vec![0x42u8];
    wire.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(
        read_response(&mut Cursor::new(&wire)),
        Err(ProtocolError::UnknownStatus(0x42))
    );
}

#[test]
fn wrong_payload_shapes_are_bad_payload() {
    // STATS, SHUTDOWN and ROOT must be empty
    for (opcode, name) in [
        (Opcode::Stats, 0x02u8),
        (Opcode::Shutdown, 0x04),
        (Opcode::Root, 0x05),
    ] {
        let mut wire = vec![name];
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        assert_eq!(
            read_request(&mut Cursor::new(&wire)),
            Err(ProtocolError::BadPayload { opcode, len: 3 })
        );
    }
    // PROVE_MEMBER takes exactly 64 bytes, CONSISTENCY exactly 8
    for (opcode, name, len) in [
        (Opcode::ProveMember, 0x06u8, 63u32),
        (Opcode::ProveMember, 0x06, 65),
        (Opcode::Consistency, 0x07, 7),
        (Opcode::Consistency, 0x07, 9),
    ] {
        let mut wire = vec![name];
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&vec![0u8; len as usize]);
        assert_eq!(
            read_request(&mut Cursor::new(&wire)),
            Err(ProtocolError::BadPayload {
                opcode,
                len: len as usize
            })
        );
    }
    // SET_BATCHING takes exactly one 0/1 byte
    let mut wire = vec![0x03u8];
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[1, 1]);
    assert_eq!(
        read_request(&mut Cursor::new(&wire)),
        Err(ProtocolError::BadPayload {
            opcode: Opcode::SetBatching,
            len: 2
        })
    );
    let mut wire = vec![0x03u8];
    wire.extend_from_slice(&1u32.to_le_bytes());
    wire.push(7); // not 0/1
    assert_eq!(
        read_request(&mut Cursor::new(&wire)),
        Err(ProtocolError::BadPayload {
            opcode: Opcode::SetBatching,
            len: 1
        })
    );
}
