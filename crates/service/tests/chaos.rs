//! Chaos and recovery tests for the daemon: crash-recovery key loading,
//! load shedding with client-side retry, batch-poisoning degradation,
//! graceful drain of in-flight frames, and a seeded sweep of socket
//! fault plans. The robustness contract under test, per ISSUE: no panic,
//! no incorrect verdict under faults, and the daemon restarts cleanly
//! after every plan.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::SeedableRng;
use zkrownn::{
    Artifact, Authority, CircuitId, ExtractionSpec, MemoryBudget, QuantLayer, QuantizedModel,
    SignedClaim, ZkrownnError,
};
use zkrownn_faults::FaultPlan;
use zkrownn_gadgets::FixedConfig;
use zkrownn_groth16::VerifyingKey;
use zkrownn_service::{
    encode_request, load_keys_dir_with, read_response, registration_bytes, serve, Client,
    Coalescer, CoalescerConfig, KeyLoadOptions, LedgeredRegistry, Metrics, Request, RetryPolicy,
    RetryingClient, ServerConfig, ServerHandle, Status,
};

/// Same tiny deterministic extraction circuit the e2e suite uses.
fn tiny_spec(signature: Vec<bool>) -> ExtractionSpec {
    let cfg = FixedConfig::default();
    let model = QuantizedModel {
        layers: vec![
            QuantLayer::Dense {
                in_dim: 2,
                out_dim: 2,
                w: vec![cfg.encode(0.5); 4],
                b: vec![0; 2],
            },
            QuantLayer::ReLU,
        ],
        input_len: 2,
        cfg,
    };
    ExtractionSpec {
        model,
        triggers: vec![vec![cfg.encode(1.0); 2]; 2],
        projection: vec![cfg.encode(0.25); 2 * signature.len()],
        signature,
        max_errors: 0,
        fold_average: false,
        cfg,
    }
}

struct Fixture {
    id: [u8; 32],
    statement_digest: [u8; 32],
    vk_bytes: Vec<u8>,
    /// Honest claims (verdict 1, verify under `vk`).
    claims: Vec<SignedClaim>,
    /// Same circuit id, different toxic waste — fails the pairing check.
    forged: Vec<SignedClaim>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let spec = tiny_spec(vec![true; 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(901);
        let (prover, verifier) = Authority::setup(&spec, &mut rng);
        let claims = (0..6)
            .map(|_| prover.prove(&mut rng).expect("honest claim"))
            .collect();

        let mut rng2 = rand::rngs::StdRng::seed_from_u64(88_888);
        let (forged_prover, forged_verifier) = Authority::setup(&spec, &mut rng2);
        assert_eq!(forged_verifier.circuit_id(), verifier.circuit_id());
        let forged = (0..4)
            .map(|_| forged_prover.prove(&mut rng2).expect("forged claim proves"))
            .collect();

        Fixture {
            id: *verifier.circuit_id().as_bytes(),
            statement_digest: prover.statement().content_digest(),
            vk_bytes: Artifact::to_bytes(verifier.verifying_key()),
            claims,
            forged,
        }
    })
}

fn fixture_vk() -> VerifyingKey {
    Artifact::from_bytes(&fixture().vk_bytes).expect("fixture vk decodes")
}

fn test_registry() -> Arc<LedgeredRegistry> {
    let f = fixture();
    let registry = Arc::new(LedgeredRegistry::new());
    registry.register(
        CircuitId::from_bytes(f.id),
        f.statement_digest,
        &fixture_vk(),
    );
    registry
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        frame_deadline: Duration::from_millis(300),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn join_within(handle: ServerHandle, timeout: Duration) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .expect("server threads did not exit in time");
}

/// Crash-recovery e2e: a key directory holding good `.vk` files, a good
/// `.zkst` store, one *truncated* store (the crash), and a stale staging
/// file. Startup must serve the survivors, quarantine the corpse, and
/// produce the exact ledger root a clean directory of only-survivors
/// yields — on the first start and again on the "restarted" second start.
#[test]
fn startup_recovers_from_a_truncated_store_and_serves_survivors() {
    let base = std::env::temp_dir().join(format!("zkrownn-chaos-keys-{}", std::process::id()));
    let dir = base.join("crashed");
    let clean = base.join("clean");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::create_dir_all(&clean).unwrap();

    let vk = fixture_vk();
    for i in 0..3u8 {
        let bytes = registration_bytes(CircuitId::from_bytes([0x50 + i; 32]), [i; 32], &vk);
        std::fs::write(dir.join(format!("key-{i}.vk")), &bytes).unwrap();
        std::fs::write(clean.join(format!("key-{i}.vk")), &bytes).unwrap();
    }
    let statement = tiny_spec(vec![true; 4]).statement();
    let store_path = dir.join("key-4.zkst");
    let mut rng = rand::rngs::StdRng::seed_from_u64(733);
    Authority::setup_statement_stored(&statement, &store_path, &mut rng, MemoryBudget::from_mb(8))
        .expect("streaming setup writes the store");
    std::fs::copy(&store_path, clean.join("key-4.zkst")).unwrap();

    // the crash victims: a store truncated mid-file, and a staging file
    // an interrupted writer left behind
    let good_bytes = std::fs::read(&store_path).unwrap();
    std::fs::write(dir.join("key-3.zkst"), &good_bytes[..good_bytes.len() / 2]).unwrap();
    std::fs::write(dir.join("key-9.zkst.tmp"), &good_bytes[..64]).unwrap();

    let registry = test_registry();
    let report = load_keys_dir_with(&registry, &dir, KeyLoadOptions::default()).unwrap();
    assert_eq!(report.loaded, 4, "3 vk files + 1 good store");
    assert_eq!(report.quarantined.len(), 1);
    assert!(report.quarantined[0].0.ends_with("key-3.zkst"));
    assert_eq!(report.stale_tmp, 1);
    assert!(
        dir.join("key-3.zkst.corrupt").exists(),
        "the corpse was renamed out of the load path"
    );
    assert!(!dir.join("key-3.zkst").exists());

    // root over survivors must equal a clean load of only the survivors
    let clean_registry = test_registry();
    let clean_report =
        load_keys_dir_with(&clean_registry, &clean, KeyLoadOptions::default()).unwrap();
    assert_eq!(clean_report.loaded, 4);
    assert!(clean_report.quarantined.is_empty());
    assert_eq!(
        registry.current_root().root,
        clean_registry.current_root().root,
        "a quarantined file must not perturb the survivors' ledger root"
    );

    // the recovered registry actually serves claims over the socket
    let handle = serve(test_config(), Arc::clone(&registry)).expect("server binds");
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.verify(&fixture().claims[0]).unwrap();
    assert_eq!(response.status, Status::Ok);
    handle.shutdown_and_join();

    // "restart": a second boot of the same directory finds the corpse
    // already quarantined and reproduces the identical root
    let second = test_registry();
    let report2 = load_keys_dir_with(&second, &dir, KeyLoadOptions::default()).unwrap();
    assert_eq!(report2.loaded, 4);
    assert!(report2.quarantined.is_empty(), "quarantine is sticky");
    assert_eq!(second.current_root().root, registry.current_root().root);

    // strict mode refuses the same directory outright
    let strict_dir = base.join("strict");
    std::fs::create_dir_all(&strict_dir).unwrap();
    std::fs::write(strict_dir.join("bad.zkst"), &good_bytes[..40]).unwrap();
    let strict = KeyLoadOptions {
        strict: true,
        ..KeyLoadOptions::default()
    };
    assert!(
        load_keys_dir_with(&test_registry(), &strict_dir, strict).is_err(),
        "--strict-keys must abort on the first bad file"
    );
    assert!(
        strict_dir.join("bad.zkst").exists(),
        "strict mode must not quarantine"
    );

    std::fs::remove_dir_all(&base).ok();
}

/// Load shedding end to end: a saturated server (one worker, accept
/// queue of one) sheds the third connection with a `Busy` frame, and a
/// retrying client absorbs the shed invisibly once capacity frees up.
#[test]
fn saturated_server_sheds_with_busy_and_retries_absorb_it() {
    let config = ServerConfig {
        workers: 1,
        accept_queue: 1,
        ..test_config()
    };
    let handle = serve(config, test_registry()).expect("server binds");
    let addr = handle.addr();

    // occupy the only worker, then the only queue slot
    let mut parked = Client::connect(addr).unwrap();
    let stats = parked.stats_json(); // proves the worker owns this connection
    assert!(stats.is_ok());
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the acceptor enqueue it

    // the next connection must be shed with a one-frame Busy response
    let mut shed = TcpStream::connect(addr).unwrap();
    let response = read_response(&mut shed).expect("shed connections get a Busy frame");
    assert_eq!(response.status, Status::Busy);
    assert!(handle.metrics().snapshot().sheds >= 1);

    // a retrying client sees no error: capacity frees while it backs off
    let dropper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        drop(parked);
        drop(queued);
    });
    let mut retrying = RetryingClient::new(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 12,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(200),
            deadline: Duration::from_secs(20),
            seed: 7,
        },
    );
    let response = retrying
        .verify(&fixture().claims[0])
        .expect("retries must absorb Busy sheds");
    assert_eq!(response.status, Status::Ok, "no client-visible error");
    dropper.join().unwrap();

    handle.shutdown_and_join();
}

/// Batch poisoning: forged claims riding multi-claim batches force the
/// expensive batch-then-fallback path; after `poison_threshold`
/// consecutive poisoned batches the circuit degrades to per-claim
/// verification — where verdicts stay exactly correct.
#[test]
fn poisoned_batches_degrade_the_circuit_without_wrong_verdicts() {
    let f = fixture();
    let registry = test_registry();
    let metrics = Arc::new(Metrics::new());
    let coalescer = Coalescer::new(
        Arc::clone(registry.keys()),
        Arc::clone(&metrics),
        CoalescerConfig {
            max_drainers: 1, // serialize drains so claims actually coalesce
            poison_threshold: 1,
            degrade_cooldown: Duration::from_secs(30),
            ..CoalescerConfig::default()
        },
    );

    // A poisoned *multi-claim* batch needs the forged claim to coalesce
    // behind an in-flight drain: an honest claim goes first and becomes
    // the (only) drainer, and while its pairing check runs the forged and
    // a second honest claim pile up behind it — the drain loop then takes
    // both as one batch. The stagger is timing-dependent, so bound the
    // rounds and grow the stagger until the batch lands.
    let mut degraded = false;
    for round in 0..50u32 {
        std::thread::scope(|scope| {
            let co = &coalescer;
            scope.spawn(move || {
                co.verify(f.claims[0].clone())
                    .expect("leading honest claim verifies");
            });
            // let the leader enter its pairing check before the pile-up
            std::thread::sleep(Duration::from_micros(200 * u64::from(round + 1)));
            scope.spawn(move || {
                let r = co.verify(f.forged[0].clone());
                assert!(
                    matches!(r, Err(ZkrownnError::InvalidProof(_))),
                    "forged claim must be rejected, got {r:?}"
                );
            });
            scope.spawn(move || {
                co.verify(f.claims[1].clone())
                    .expect("honest claim stays verified alongside a poisoner");
            });
        });
        if metrics.snapshot().degradations >= 1 {
            degraded = true;
            break;
        }
    }
    assert!(degraded, "no multi-claim batch was ever poisoned");

    // inside the cooldown window the circuit verifies per-claim: honest
    // and forged claims still get exactly the right verdicts
    let before = metrics.snapshot();
    coalescer
        .verify(f.claims[3].clone())
        .expect("degraded path verifies honest claims");
    assert!(matches!(
        coalescer.verify(f.forged[1].clone()),
        Err(ZkrownnError::InvalidProof(_))
    ));
    let after = metrics.snapshot();
    assert_eq!(
        after.batches - before.batches,
        2,
        "degraded claims are batches of one"
    );
    assert_eq!(after.batched_claims - before.batched_claims, 2);
}

/// Graceful drain: a frame already in flight when shutdown is requested
/// is read to completion, dispatched, and answered before the worker
/// exits — the peer sees a verdict, not a cut connection.
#[test]
fn shutdown_drains_the_in_flight_frame() {
    let handle = serve(test_config(), test_registry()).expect("server binds");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    let wire = encode_request(&Request::Verify(fixture().claims[0].to_bytes()));
    let split = 9; // opcode + length + the first payload bytes
    stream.write_all(&wire[..split]).unwrap();
    std::thread::sleep(Duration::from_millis(60)); // worker is now mid-frame
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(30)); // flag observed while draining
    stream.write_all(&wire[split..]).unwrap();

    let response = read_response(&mut stream).expect("the drained frame gets its response");
    assert_eq!(response.status, Status::Ok);
    join_within(handle, Duration::from_secs(5));
}

/// The seeded sweep (ISSUE acceptance: ≥ 8 plans): for every seed, a
/// fresh daemon faces a client whose socket is wrapped in that seed's
/// fault plan. Required invariants, with the seed in every assertion:
/// no panic, no incorrect verdict (a fully delivered honest claim that
/// gets a decoded verify verdict gets `Ok`), a clean follow-up
/// connection works, and the daemon shuts down and a new one starts for
/// the next plan.
#[test]
fn seeded_socket_fault_plans_never_corrupt_verdicts_or_the_daemon() {
    let f = fixture();
    let wire = encode_request(&Request::Verify(f.claims[0].to_bytes()));

    for seed in 0..12u64 {
        let plan = FaultPlan::from_seed(seed, wire.len() as u64 + 64);
        let label = plan.label().to_string();
        let armed = plan.arm();

        let handle = serve(test_config(), test_registry()).expect("server binds");
        let addr = handle.addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut tx = armed.write(&stream);
        let sent_fully = tx.write_all(&wire).and_then(|()| tx.flush()).is_ok();
        let mut rx = armed.read(&stream);
        // an Err here is just an injected client-side fault; the one
        // forbidden outcome is an intact honest claim answered with a
        // wrong verdict
        if let Ok(response) = read_response(&mut rx) {
            if sent_fully && response.status != Status::Protocol {
                assert_eq!(
                    response.status,
                    Status::Ok,
                    "[{label}] intact honest claim got a wrong verdict"
                );
            }
        }
        drop(rx);

        // the daemon took no damage: a clean connection verifies
        let mut clean = Client::connect(addr).unwrap();
        let response = clean
            .verify(&f.claims[1])
            .unwrap_or_else(|e| panic!("[{label}] clean connection after faults: {e}"));
        assert_eq!(response.status, Status::Ok, "[{label}]");
        drop(clean);
        drop(stream);

        // ...and restarts cleanly for the next plan
        join_within(
            {
                handle.shutdown();
                handle
            },
            Duration::from_secs(5),
        );
    }
}
