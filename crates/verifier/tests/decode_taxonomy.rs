//! Byte-level decode-error taxonomy at the `zkrownn_verify` entry point.
//!
//! The verifier is the one component that must face *hostile* bytes: a
//! claimant controls every input it sees. These tests drive every
//! truncation and every single-byte flip of all three inputs through the
//! public entry point and require a typed [`VerifyError`] — never a panic,
//! and never a verdict. They mirror the envelope-level suite in
//! `tests/artifact_wire.rs`, one layer up.

use rand::SeedableRng;
use std::sync::OnceLock;
use zkrownn::artifact::WireError;
use zkrownn::{Artifact, ArtifactKind, Authority, ExtractionSpec, QuantLayer, QuantizedModel};
use zkrownn_gadgets::FixedConfig;
use zkrownn_verifier::{zkrownn_verify, VerifyError};

/// The three wire inputs of a valid, verifiable dispute, built once: setup
/// and proving dominate this suite's runtime and every test reuses them.
fn fixture() -> &'static (Vec<u8>, Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let spec = fixture_spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1729);
        let (prover, verifier) = Authority::setup(&spec, &mut rng);
        let claim = prover.prove(&mut rng).expect("honest spec proves");
        (
            Artifact::to_bytes(verifier.verifying_key()),
            Artifact::to_bytes(&spec.statement()),
            Artifact::to_bytes(&claim),
        )
    })
}

fn fixture_spec() -> ExtractionSpec {
    let cfg = FixedConfig::default();
    ExtractionSpec {
        model: QuantizedModel {
            layers: vec![
                QuantLayer::Dense {
                    in_dim: 2,
                    out_dim: 2,
                    w: vec![cfg.encode(0.5); 4],
                    b: vec![0; 2],
                },
                QuantLayer::ReLU,
            ],
            input_len: 2,
            cfg,
        },
        triggers: vec![vec![cfg.encode(1.0); 2]],
        projection: vec![cfg.encode(0.25); 4],
        signature: vec![true, false],
        max_errors: 2,
        fold_average: false,
        cfg,
    }
}

#[test]
fn the_fixture_verifies() {
    let (vk, stmt, claim) = fixture();
    let verdict = zkrownn_verify(vk, stmt, claim).expect("untampered inputs verify");
    assert!(verdict.ownership_established());
}

/// Every truncation of every input is a typed decode error naming that
/// input — no panic, no verdict, and no misattribution to another input.
#[test]
fn every_truncation_of_every_input_is_typed() {
    let (vk, stmt, claim) = fixture();
    for len in 0..vk.len() {
        match zkrownn_verify(&vk[..len], stmt, claim) {
            Err(VerifyError::VerifyingKey(_)) => {}
            other => panic!("vk truncated to {len}: expected decode error, got {other:?}"),
        }
    }
    for len in 0..stmt.len() {
        match zkrownn_verify(vk, &stmt[..len], claim) {
            Err(VerifyError::Statement(_)) => {}
            other => panic!("statement truncated to {len}: expected decode error, got {other:?}"),
        }
    }
    for len in 0..claim.len() {
        match zkrownn_verify(vk, stmt, &claim[..len]) {
            Err(VerifyError::Claim(_)) => {}
            other => panic!("claim truncated to {len}: expected decode error, got {other:?}"),
        }
    }
}

/// Flips one byte at every offset (low bit and high bit) of one input and
/// asserts the result is always an `Err` — a corrupted artifact must never
/// produce a verdict, whether the corruption is caught at decode or at the
/// pairing equation.
fn assert_every_flip_rejected(which: &str, verify: impl Fn(&[u8]) -> Result<(), VerifyError>) {
    let (vk, stmt, claim) = fixture();
    let wire = match which {
        "vk" => vk,
        "stmt" => stmt,
        _ => claim,
    };
    for i in 0..wire.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = wire.clone();
            corrupt[i] ^= flip;
            if verify(&corrupt).is_ok() {
                panic!("{which} byte {i} flip {flip:#04x} still verified");
            }
        }
    }
}

#[test]
fn every_byte_flip_in_the_verifying_key_is_rejected() {
    let (_, stmt, claim) = fixture();
    assert_every_flip_rejected("vk", |bytes| zkrownn_verify(bytes, stmt, claim).map(drop));
}

#[test]
fn every_byte_flip_in_the_statement_is_rejected() {
    let (vk, _, claim) = fixture();
    assert_every_flip_rejected("stmt", |bytes| zkrownn_verify(vk, bytes, claim).map(drop));
}

#[test]
fn every_byte_flip_in_the_claim_is_rejected() {
    let (vk, stmt, _) = fixture();
    assert_every_flip_rejected("claim", |bytes| zkrownn_verify(vk, stmt, bytes).map(drop));
}

/// The decode variants carry the envelope-level cause, so a caller can
/// distinguish "not even an artifact" from "tampered artifact" per input.
#[test]
fn decode_errors_carry_the_envelope_cause() {
    let (vk, stmt, claim) = fixture();

    // truncation below the envelope minimum
    assert!(matches!(
        zkrownn_verify(&vk[..10], stmt, claim),
        Err(VerifyError::VerifyingKey(WireError::Truncated { .. }))
    ));

    // bad magic
    let mut bad = stmt.clone();
    bad[0] = b'X';
    assert!(matches!(
        zkrownn_verify(vk, &bad, claim),
        Err(VerifyError::Statement(WireError::BadMagic(_)))
    ));

    // swapped inputs are a *kind* error on the position they were passed in
    assert_eq!(
        zkrownn_verify(claim, stmt, claim),
        Err(VerifyError::VerifyingKey(WireError::WrongKind {
            expected: ArtifactKind::VerifyingKey,
            got: ArtifactKind::Claim,
        }))
    );
    assert_eq!(
        zkrownn_verify(vk, stmt, vk),
        Err(VerifyError::Claim(WireError::WrongKind {
            expected: ArtifactKind::Claim,
            got: ArtifactKind::VerifyingKey,
        }))
    );

    // corrupted payload trips the checksum
    let mut corrupt = claim.clone();
    let mid = claim.len() / 2;
    corrupt[mid] ^= 0xff;
    assert_eq!(
        zkrownn_verify(vk, stmt, &corrupt),
        Err(VerifyError::Claim(WireError::ChecksumMismatch))
    );

    // decode errors self-identify against semantic rejections
    assert!(zkrownn_verify(&vk[..10], stmt, claim)
        .unwrap_err()
        .is_decode_error());
}

/// Semantic rejections of well-formed inputs: each check in the documented
/// order maps to its own variant.
#[test]
fn semantic_rejections_are_typed() {
    let (vk, stmt, claim) = fixture();

    // a different (same-shape) model under dispute → statement mismatch
    let mut other_spec = fixture_spec();
    if let QuantLayer::Dense { w, .. } = &mut other_spec.model.layers[0] {
        w[0] += 1;
    }
    let other_stmt = Artifact::to_bytes(&other_spec.statement());
    assert_eq!(
        zkrownn_verify(vk, &other_stmt, claim),
        Err(VerifyError::StatementMismatch)
    );

    // same statement, but the claim's proof names another circuit
    let mut renamed = zkrownn::SignedClaim::from_bytes(claim).unwrap();
    let other_id = other_spec.statement().circuit_id();
    let expected_id = fixture_spec().statement().circuit_id();
    assert_eq!(other_id, expected_id, "same shape, same circuit");
    let forged_id = zkrownn::CircuitId::from_bytes([0xAB; 32]);
    renamed.proof.circuit_id = forged_id;
    assert_eq!(
        zkrownn_verify(vk, stmt, &Artifact::to_bytes(&renamed)),
        Err(VerifyError::CircuitMismatch {
            expected: expected_id,
            got: forged_id,
        })
    );

    // flipping the attested verdict bit breaks the pairing equation (the
    // verdict is a public input), not the envelope
    let mut flipped = zkrownn::SignedClaim::from_bytes(claim).unwrap();
    flipped.proof.verdict = !flipped.proof.verdict;
    match zkrownn_verify(vk, stmt, &Artifact::to_bytes(&flipped)) {
        Err(VerifyError::InvalidProof) | Err(VerifyError::NegativeVerdict) => {}
        other => panic!("verdict flip: expected crypto rejection, got {other:?}"),
    }
}
