//! # zkrownn-verifier — the portable claim verifier
//!
//! One function from raw artifact bytes to a verdict: [`zkrownn_verify`]
//! decodes a verifying key, an ownership statement and a signed claim from
//! their `ZKRW` envelopes and runs the full ZKROWNN verification — circuit
//! identity, statement binding, the Groth16 pairing equation, and the
//! verdict gate.
//!
//! This crate is a thin façade over the verification spine
//! (`zkrownn-ff` → `zkrownn-curves` → `zkrownn-pairing` →
//! `zkrownn-groth16` → `zkrownn::verify`), compiled `no_std + alloc`: it
//! builds unchanged for `wasm32-unknown-unknown` and embedded targets (the
//! CI wasm lane checks exactly that), so a browser, an enclave or a smart
//! contract host can check ownership claims without trusting a server.
//!
//! Every failure is a typed [`VerifyError`]; no input — truncated,
//! bit-flipped, or hostile — panics (see `tests/decode_taxonomy.rs`).
//!
//! ```
//! use rand::SeedableRng;
//! use zkrownn::{Artifact, Authority, ExtractionSpec, QuantLayer, QuantizedModel};
//! use zkrownn_gadgets::FixedConfig;
//! use zkrownn_verifier::{zkrownn_verify, VerifyError};
//!
//! // a (tiny) disputed model, its watermark witness, and a signed claim
//! let cfg = FixedConfig::default();
//! let model = QuantizedModel {
//!     layers: vec![
//!         QuantLayer::Dense { in_dim: 2, out_dim: 2, w: vec![cfg.encode(0.5); 4], b: vec![0; 2] },
//!         QuantLayer::ReLU,
//!     ],
//!     input_len: 2,
//!     cfg,
//! };
//! let spec = ExtractionSpec {
//!     model,
//!     triggers: vec![vec![cfg.encode(1.0); 2]],
//!     projection: vec![cfg.encode(0.25); 4],
//!     signature: vec![true, false],
//!     max_errors: 2,
//!     fold_average: false,
//!     cfg,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let (prover, verifier) = Authority::setup(&spec, &mut rng);
//! let claim = prover.prove(&mut rng).unwrap();
//!
//! let vk_bytes = Artifact::to_bytes(verifier.verifying_key());
//! let statement_bytes = Artifact::to_bytes(&spec.statement());
//! let claim_bytes = Artifact::to_bytes(&claim);
//!
//! let verdict = zkrownn_verify(&vk_bytes, &statement_bytes, &claim_bytes).unwrap();
//! assert!(verdict.ownership_established());
//!
//! // flip one proof byte → typed rejection, never a panic
//! let mut bad = claim_bytes.clone();
//! let n = bad.len();
//! bad[n - 40] ^= 0x01;
//! assert!(matches!(
//!     zkrownn_verify(&vk_bytes, &statement_bytes, &bad),
//!     Err(VerifyError::Claim(_)) | Err(VerifyError::InvalidProof)
//! ));
//! ```

#![deny(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

use zkrownn::artifact::{Artifact, CircuitId, OwnershipStatement, WireError};
use zkrownn::error::ZkrownnError;
use zkrownn::verify::{SignedClaim, VerifierKit};
use zkrownn_groth16::VerifyingKey;

/// Why [`zkrownn_verify`] rejected its inputs.
///
/// The three decode variants name which *input* failed and carry the exact
/// byte-level cause ([`WireError`]: truncation, bad magic, wrong kind tag,
/// checksum mismatch, invalid curve point, …). The remaining variants are
/// semantic rejections of well-formed inputs, in the order the checks run.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The verifying-key bytes failed to decode.
    VerifyingKey(WireError),
    /// The ownership-statement bytes failed to decode.
    Statement(WireError),
    /// The signed-claim bytes failed to decode.
    Claim(WireError),
    /// The claim is about a different statement than the one supplied —
    /// the proof may be sound, but it concerns another model.
    StatementMismatch,
    /// The claim's proof names a different circuit than the statement's
    /// shape synthesizes to.
    CircuitMismatch {
        /// The circuit id derived from the supplied statement.
        expected: CircuitId,
        /// The circuit id the claim actually names.
        got: CircuitId,
    },
    /// The Groth16 pairing equation does not hold: the proof is forged,
    /// tampered with, or bound to different public inputs.
    InvalidProof,
    /// The proof is *cryptographically valid* but attests verdict 0: the
    /// watermark was **not** recovered within the BER threshold. Distinct
    /// from [`VerifyError::InvalidProof`] so a dispute can tell "forged
    /// claim" from "watermark genuinely absent".
    NegativeVerdict,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::VerifyingKey(e) => write!(f, "verifying key failed to decode: {e}"),
            Self::Statement(e) => write!(f, "ownership statement failed to decode: {e}"),
            Self::Claim(e) => write!(f, "signed claim failed to decode: {e}"),
            Self::StatementMismatch => {
                write!(f, "claim is about a different statement than supplied")
            }
            Self::CircuitMismatch { expected, got } => write!(
                f,
                "circuit mismatch: statement synthesizes to {}, claim names {}",
                expected.short(),
                got.short()
            ),
            Self::InvalidProof => write!(f, "pairing check failed: proof is not valid"),
            Self::NegativeVerdict => write!(
                f,
                "proof is valid but attests a negative verdict (watermark not recovered)"
            ),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for VerifyError {}

impl VerifyError {
    /// `true` when the input *bytes* were malformed (as opposed to a
    /// well-formed claim that failed a semantic or cryptographic check).
    pub fn is_decode_error(&self) -> bool {
        matches!(
            self,
            Self::VerifyingKey(_) | Self::Statement(_) | Self::Claim(_)
        )
    }
}

/// The outcome of a successful verification.
///
/// Constructed only by [`zkrownn_verify`], and only after every check has
/// passed — holding a `Verdict` *is* the attestation that the claim's
/// proof is valid, bound to the supplied statement, and attests ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    circuit_id: CircuitId,
    statement_digest: [u8; 32],
}

impl Verdict {
    /// Always `true`: [`zkrownn_verify`] returns `Err` for every failed
    /// check, including a valid proof of a *negative* extraction verdict
    /// ([`VerifyError::NegativeVerdict`]). Present so call sites read as a
    /// decision rather than a unit value.
    pub fn ownership_established(&self) -> bool {
        true
    }

    /// The circuit the verified claim was proven against (derived from the
    /// supplied statement's shape, and matched against the claim).
    pub fn circuit_id(&self) -> CircuitId {
        self.circuit_id
    }

    /// Content digest of the statement the claim was verified against.
    pub fn statement_digest(&self) -> [u8; 32] {
        self.statement_digest
    }
}

/// Verifies a ZKROWNN ownership claim from raw artifact bytes.
///
/// Takes the three public artifacts of a dispute, each in its `ZKRW`
/// envelope:
///
/// * `vk_bytes` — the Groth16 [`VerifyingKey`] published by the setup
///   authority (kind tag 3);
/// * `statement_bytes` — the [`OwnershipStatement`] describing the model
///   under dispute (kind tag 1);
/// * `claim_bytes` — the claimant's [`SignedClaim`] (kind tag 5).
///
/// Checks, in order: all three envelopes decode (magic, kind, version,
/// length, checksum, then payload — including curve-point subgroup
/// checks); the claim is about the supplied statement; the claim's proof
/// names the statement's circuit (re-derived here by a witness-free shape
/// synthesis, so the caller need not trust the claim's self-description);
/// the pairing equation holds; and the attested verdict is positive.
///
/// Never panics on any input. The error pins down exactly which input and
/// which check failed.
pub fn zkrownn_verify(
    vk_bytes: &[u8],
    statement_bytes: &[u8],
    claim_bytes: &[u8],
) -> Result<Verdict, VerifyError> {
    let vk: VerifyingKey = Artifact::from_bytes(vk_bytes).map_err(VerifyError::VerifyingKey)?;
    let statement: OwnershipStatement =
        Artifact::from_bytes(statement_bytes).map_err(VerifyError::Statement)?;
    let claim: SignedClaim = Artifact::from_bytes(claim_bytes).map_err(VerifyError::Claim)?;

    // The statement is the verifier's trust anchor: its shape synthesis
    // yields the circuit id the claim must match, and its content digest
    // pins the claim to this exact model.
    let circuit_id = statement.circuit_id();
    let statement_digest = statement.content_digest();
    let kit = VerifierKit::from_parts(vk, circuit_id).bind_statement(statement_digest);

    match kit.verify(&claim) {
        Ok(()) => Ok(Verdict {
            circuit_id,
            statement_digest,
        }),
        Err(ZkrownnError::StatementMismatch) => Err(VerifyError::StatementMismatch),
        Err(ZkrownnError::CircuitMismatch { expected, got }) => {
            Err(VerifyError::CircuitMismatch { expected, got })
        }
        Err(ZkrownnError::NegativeVerdict) => Err(VerifyError::NegativeVerdict),
        // InvalidProof, plus any other rejection of a decoded claim:
        // cryptographic failure is the safe summary.
        Err(_) => Err(VerifyError::InvalidProof),
    }
}
