//! Read backends for an open store: a read-only memory map where the
//! platform provides one, and a buffered positioned-read (`pread`)
//! fallback everywhere.
//!
//! The two backends expose one access primitive —
//! `Source::chunk` — that hands back a borrowed byte slice: a zero-copy
//! window into the mapping, or the caller's scratch buffer filled by a
//! positioned read. Streaming consumers (the budgeted prover, integrity
//! verification) are written once against that primitive and never learn
//! which backend is underneath.
//!
//! The mapping is raw `mmap(2)` through an `extern "C"` declaration — the
//! build environment vendors no `libc` crate, but `std` already links the
//! platform C library, so the symbol resolves without any new dependency.

use std::fs::File;
use std::io;

/// Which read backend [`crate::StoreFile::open_with`] should use.
///
/// `Auto` picks the memory map where the platform supports it and falls
/// back to buffered positioned reads. `Buffered` is the right choice when
/// *address space* (not just resident memory) is capped — a mapping of a
/// multi-GB key file counts against `ulimit -v` even though pages are
/// faulted in lazily — and is what `table1 --mem-budget` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Memory-map if available, otherwise buffered reads.
    #[default]
    Auto,
    /// Require the memory map (errors where unsupported).
    Mmap,
    /// Positioned buffered reads only; bounded address space.
    Buffered,
}

#[cfg(target_os = "linux")]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only private mapping of a whole file (Linux only).
#[cfg(target_os = "linux")]
pub(crate) struct Mapping {
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// The mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime, so shared references to its bytes are safe across threads.
#[cfg(target_os = "linux")]
unsafe impl Send for Mapping {}
#[cfg(target_os = "linux")]
unsafe impl Sync for Mapping {}

#[cfg(target_os = "linux")]
impl Mapping {
    fn new(file: &File, len: usize) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of `len` bytes of
        // an open fd; we check for MAP_FAILED before using the pointer.
        let ptr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping covers exactly `len` readable bytes and
        // lives as long as `self`.
        unsafe { core::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: unmapping exactly what `new` mapped.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

/// Positioned-read access to an open store — the trait seam behind the
/// buffered backend, which the fault-injection harness (`zkrownn-faults`)
/// wraps to inject read failures under a real store file.
///
/// Production reads go straight to [`File`] via `pread(2)`; the mmap
/// backend bypasses this trait entirely (page faults cannot be
/// interposed on).
pub trait ReadAt: Send + Sync {
    /// Fills `buf` from absolute file offset `offset`, completely or with
    /// an error — short reads are an `UnexpectedEof` failure, and no
    /// shared cursor moves.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
}

impl ReadAt for File {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        pread_exact(self, offset, buf)
    }
}

/// The open read source: mapped or positioned reads through a [`ReadAt`].
pub(crate) enum Source {
    #[cfg(target_os = "linux")]
    Mapped(Mapping),
    Seek {
        file: Box<dyn ReadAt>,
        len: u64,
    },
}

impl Source {
    /// Wraps an arbitrary positioned reader (fault harnesses, tests).
    pub(crate) fn from_read_at(file: Box<dyn ReadAt>, len: u64) -> Self {
        Self::Seek { file, len }
    }

    /// Opens `file` (of total length `len`) with the requested backend.
    pub(crate) fn open(file: File, len: u64, backend: StoreBackend) -> io::Result<Self> {
        match backend {
            StoreBackend::Buffered => Ok(Self::Seek {
                file: Box::new(file),
                len,
            }),
            #[cfg(target_os = "linux")]
            StoreBackend::Mmap => Ok(Self::Mapped(Mapping::new(&file, len as usize)?)),
            #[cfg(not(target_os = "linux"))]
            StoreBackend::Mmap => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory mapping is not supported on this platform",
            )),
            StoreBackend::Auto => {
                #[cfg(target_os = "linux")]
                {
                    match Mapping::new(&file, len as usize) {
                        Ok(map) => Ok(Self::Mapped(map)),
                        Err(_) => Ok(Self::Seek {
                            file: Box::new(file),
                            len,
                        }),
                    }
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Ok(Self::Seek {
                        file: Box::new(file),
                        len,
                    })
                }
            }
        }
    }

    /// Total length of the underlying file in bytes.
    pub(crate) fn len(&self) -> u64 {
        match self {
            #[cfg(target_os = "linux")]
            Self::Mapped(map) => map.len as u64,
            Self::Seek { len, .. } => *len,
        }
    }

    /// A borrowed view of `count` bytes at `offset`: zero-copy from the
    /// mapping, or `scratch` filled by a positioned read. The caller must
    /// have range-checked `offset + count` against [`Self::len`].
    pub(crate) fn chunk<'a>(
        &'a self,
        offset: u64,
        count: usize,
        scratch: &'a mut Vec<u8>,
    ) -> io::Result<&'a [u8]> {
        match self {
            #[cfg(target_os = "linux")]
            Self::Mapped(map) => {
                let start = offset as usize;
                map.as_slice()
                    .get(start..start + count)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "range past EOF"))
            }
            Self::Seek { file, .. } => {
                scratch.resize(count, 0);
                file.read_exact_at(scratch, offset)?;
                Ok(&scratch[..])
            }
        }
    }
}

/// Fills `buf` from `offset` without moving any shared cursor.
fn pread_exact(file: &File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}
