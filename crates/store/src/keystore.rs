//! The proving-key layout over the `.zkst` container: one segment per
//! [`KeyFamily`], a constants segment for the six fixed key elements, and
//! an optional metadata segment binding the key to a circuit and
//! statement.
//!
//! Points are stored **uncompressed** (64 B G1, 128 B G2) — the same
//! encoding the in-memory `ProvingKey` wire format uses — so the streaming
//! prover's decode is two canonical field reads per point, with integrity
//! delegated to the per-segment checksums rather than per-point subgroup
//! checks.

use crate::format::{SegmentEntry, StoreError, StoreFile, StoreWriter};
use crate::map::StoreBackend;
use crate::sha::Sha256;
use std::io;
use std::path::Path;
use zkrownn_curves::serialize::{
    read_uncompressed, read_uncompressed_unvalidated, uncompressed_size, write_uncompressed,
};
use zkrownn_curves::{Affine, G1Affine, G1Config, G2Affine, G2Config, MemoryBudget, SwCurveConfig};
use zkrownn_groth16::setup::{KeyConstants, KeyFamily, KeySink};
use zkrownn_groth16::{ProvingKey, VerifyingKey};

/// Segment kind tags of the key-store layout (a 32-bit namespace owned by
/// this crate, independent of the envelope's artifact-kind byte).
pub mod segment_kind {
    /// The six fixed key elements (`α,β,δ` in G1; `β,γ,δ` in G2), 576 B.
    pub const CONSTANTS: u32 = 1;
    /// `gamma_abc_g1` (IC) — the verifying key's commitment points.
    pub const IC: u32 = 2;
    /// `a_query`.
    pub const A_QUERY: u32 = 3;
    /// `b_g1_query`.
    pub const B_G1_QUERY: u32 = 4;
    /// `b_g2_query` (the only G2 segment, 128 B/point).
    pub const B_G2_QUERY: u32 = 5;
    /// `h_query`.
    pub const H_QUERY: u32 = 6;
    /// `l_query`.
    pub const L_QUERY: u32 = 7;
    /// Circuit binding: 32-byte circuit id ‖ 32-byte statement digest.
    pub const META: u32 = 8;
}

/// Maps a keygen family to its segment kind tag.
pub fn family_kind(family: KeyFamily) -> u32 {
    match family {
        KeyFamily::Ic => segment_kind::IC,
        KeyFamily::AQuery => segment_kind::A_QUERY,
        KeyFamily::BG1Query => segment_kind::B_G1_QUERY,
        KeyFamily::BG2Query => segment_kind::B_G2_QUERY,
        KeyFamily::HQuery => segment_kind::H_QUERY,
        KeyFamily::LQuery => segment_kind::L_QUERY,
    }
}

/// The circuit binding carried in the [`segment_kind::META`] segment, so a
/// registry can register a store-backed key without synthesizing anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// The circuit's synthesis-trace digest (`CircuitId` bytes).
    pub circuit_id: [u8; 32],
    /// The ownership statement's content digest.
    pub statement_digest: [u8; 32],
}

/// A [`KeySink`] that writes streaming keygen output straight into a
/// `.zkst` container — the memory-budgeted trusted-setup path.
///
/// Drop order of operations: construct, hand to
/// `SetupContext::generate_streaming_with`, then call [`Self::finish`].
pub struct KeyStoreWriter {
    inner: StoreWriter,
    meta: Option<StoreMeta>,
    buf: Vec<u8>,
}

impl KeyStoreWriter {
    /// Creates (truncating) a store at `path`; `meta` is written as the
    /// final segment if present.
    pub fn create(path: &Path, meta: Option<StoreMeta>) -> io::Result<Self> {
        Ok(Self {
            inner: StoreWriter::create(path)?,
            meta,
            buf: Vec::new(),
        })
    }

    fn write_points<C: SwCurveConfig>(&mut self, points: &[Affine<C>]) -> io::Result<()> {
        self.buf.clear();
        self.buf.reserve(points.len() * uncompressed_size::<C>());
        for p in points {
            write_uncompressed(p, &mut self.buf);
        }
        let buf = std::mem::take(&mut self.buf);
        let r = self.inner.write(&buf);
        self.buf = buf;
        r
    }

    /// Writes the metadata segment (if any), the table and the footer.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(meta) = self.meta {
            self.inner.begin_segment(segment_kind::META, 1);
            self.inner.write(&meta.circuit_id)?;
            self.inner.write(&meta.statement_digest)?;
            self.inner.end_segment();
        }
        self.inner.finish()
    }
}

impl KeySink for KeyStoreWriter {
    type Error = io::Error;

    fn constants(&mut self, constants: &KeyConstants) -> Result<(), io::Error> {
        self.inner.begin_segment(segment_kind::CONSTANTS, 6);
        self.write_points(&[constants.alpha_g1, constants.beta_g1, constants.delta_g1])?;
        self.write_points(&[constants.beta_g2, constants.gamma_g2, constants.delta_g2])?;
        self.inner.end_segment();
        Ok(())
    }

    fn begin_family(&mut self, family: KeyFamily, len: usize) -> Result<(), io::Error> {
        self.inner.begin_segment(family_kind(family), len as u64);
        Ok(())
    }

    fn g1_chunk(&mut self, points: &[G1Affine]) -> Result<(), io::Error> {
        self.write_points(points)
    }

    fn g2_chunk(&mut self, points: &[G2Affine]) -> Result<(), io::Error> {
        self.write_points(points)
    }

    fn end_family(&mut self, _family: KeyFamily) -> Result<(), io::Error> {
        self.inner.end_segment();
        Ok(())
    }
}

/// Writes an already-materialized [`ProvingKey`] into a store at `path` —
/// the migration path for keys produced by the in-memory setup (and the
/// byte-identity oracle for the streaming path in tests).
pub fn write_proving_key(path: &Path, pk: &ProvingKey, meta: Option<StoreMeta>) -> io::Result<()> {
    let mut w = KeyStoreWriter::create(path, meta)?;
    w.constants(&KeyConstants {
        alpha_g1: pk.vk.alpha_g1,
        beta_g1: pk.beta_g1,
        delta_g1: pk.delta_g1,
        beta_g2: pk.vk.beta_g2,
        gamma_g2: pk.vk.gamma_g2,
        delta_g2: pk.vk.delta_g2,
    })?;
    const CHUNK: usize = 4096;
    for family in KeyFamily::ALL {
        if family.is_g2() {
            w.begin_family(family, pk.b_g2_query.len())?;
            for chunk in pk.b_g2_query.chunks(CHUNK) {
                w.g2_chunk(chunk)?;
            }
        } else {
            let points: &[G1Affine] = match family {
                KeyFamily::Ic => &pk.vk.gamma_abc_g1,
                KeyFamily::AQuery => &pk.a_query,
                KeyFamily::BG1Query => &pk.b_g1_query,
                KeyFamily::HQuery => &pk.h_query,
                KeyFamily::LQuery => &pk.l_query,
                KeyFamily::BG2Query => unreachable!(),
            };
            w.begin_family(family, points.len())?;
            for chunk in points.chunks(CHUNK) {
                w.g1_chunk(chunk)?;
            }
        }
        w.end_family(family)?;
    }
    w.finish()
}

/// An open store-backed proving key: lazy, segment-at-a-time access to the
/// key families, plus eager access to the small pieces (constants,
/// verifying key, metadata).
pub struct KeyStore {
    file: StoreFile,
}

impl KeyStore {
    /// Opens `path` with the default backend (mmap where available).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_with(path, StoreBackend::Auto)
    }

    /// Opens `path` with an explicit read backend. Use
    /// [`StoreBackend::Buffered`] when address space is capped — a mapping
    /// of the whole key file counts against `ulimit -v`.
    pub fn open_with(path: &Path, backend: StoreBackend) -> Result<Self, StoreError> {
        Self::from_store_file(StoreFile::open_with(path, backend)?)
    }

    /// Wraps an already-open container as a key store, validating that the
    /// required segments are all present — the entry point for stores
    /// opened through [`StoreFile::open_reader`] (fault harnesses, tests).
    pub fn from_store_file(file: StoreFile) -> Result<Self, StoreError> {
        // a key store must at least carry its constants and all six
        // families; shape errors surface at open, not mid-proof
        file.require(segment_kind::CONSTANTS)?;
        for family in KeyFamily::ALL {
            file.require(family_kind(family))?;
        }
        Ok(Self { file })
    }

    /// The underlying container (segment table, integrity verification).
    pub fn file(&self) -> &StoreFile {
        &self.file
    }

    /// Number of segments in the store.
    pub fn segment_count(&self) -> usize {
        self.file.segments().len()
    }

    /// The circuit binding, if the store carries one.
    pub fn meta(&self) -> Result<Option<StoreMeta>, StoreError> {
        let Some(entry) = self.file.segment(segment_kind::META) else {
            return Ok(None);
        };
        let bytes = self.file.read_segment(entry)?;
        if bytes.len() != 64 {
            return Err(StoreError::Malformed("meta segment must be 64 bytes"));
        }
        Ok(Some(StoreMeta {
            circuit_id: bytes[..32].try_into().unwrap(),
            statement_digest: bytes[32..].try_into().unwrap(),
        }))
    }

    /// The six fixed key elements, fully validated (on-curve + subgroup).
    pub fn constants(&self) -> Result<KeyConstants, StoreError> {
        let entry = *self.file.require(segment_kind::CONSTANTS)?;
        let bytes = self.file.read_segment(&entry)?;
        let g1 = uncompressed_size::<G1Config>();
        let g2 = uncompressed_size::<G2Config>();
        if bytes.len() != 3 * g1 + 3 * g2 {
            return Err(StoreError::Malformed("constants segment has wrong length"));
        }
        let point_g1 = |i: usize| {
            read_uncompressed::<G1Config>(&bytes[i * g1..(i + 1) * g1]).map_err(|source| {
                StoreError::Point {
                    kind: segment_kind::CONSTANTS,
                    index: i as u64,
                    source,
                }
            })
        };
        let point_g2 = |i: usize| {
            let start = 3 * g1 + i * g2;
            read_uncompressed::<G2Config>(&bytes[start..start + g2]).map_err(|source| {
                StoreError::Point {
                    kind: segment_kind::CONSTANTS,
                    index: 3 + i as u64,
                    source,
                }
            })
        };
        Ok(KeyConstants {
            alpha_g1: point_g1(0)?,
            beta_g1: point_g1(1)?,
            delta_g1: point_g1(2)?,
            beta_g2: point_g2(0)?,
            gamma_g2: point_g2(1)?,
            delta_g2: point_g2(2)?,
        })
    }

    /// Reconstructs the (small) verifying key with full point validation —
    /// what a registry registers when loading `.zkst` key files.
    pub fn verifying_key(&self) -> Result<VerifyingKey, StoreError> {
        let constants = self.constants()?;
        let gamma_abc_g1 = self.read_family_validated::<G1Config>(segment_kind::IC)?;
        Ok(VerifyingKey {
            alpha_g1: constants.alpha_g1,
            beta_g2: constants.beta_g2,
            gamma_g2: constants.gamma_g2,
            delta_g2: constants.delta_g2,
            gamma_abc_g1,
        })
    }

    /// Fully materializes the proving key (tests and migration tooling;
    /// decode is checksum-protected but skips per-point subgroup checks,
    /// exactly like the streaming prover).
    pub fn load_proving_key(&self) -> Result<ProvingKey, StoreError> {
        let constants = self.constants()?;
        Ok(ProvingKey {
            vk: VerifyingKey {
                alpha_g1: constants.alpha_g1,
                beta_g2: constants.beta_g2,
                gamma_g2: constants.gamma_g2,
                delta_g2: constants.delta_g2,
                gamma_abc_g1: self.read_family::<G1Config>(segment_kind::IC)?,
            },
            beta_g1: constants.beta_g1,
            delta_g1: constants.delta_g1,
            a_query: self.read_family::<G1Config>(segment_kind::A_QUERY)?,
            b_g1_query: self.read_family::<G1Config>(segment_kind::B_G1_QUERY)?,
            b_g2_query: self.read_family::<G2Config>(segment_kind::B_G2_QUERY)?,
            h_query: self.read_family::<G1Config>(segment_kind::H_QUERY)?,
            l_query: self.read_family::<G1Config>(segment_kind::L_QUERY)?,
        })
    }

    /// The table entry of a family segment (count, length, checksum).
    pub fn family_entry(&self, family: KeyFamily) -> Result<&SegmentEntry, StoreError> {
        self.file.require(family_kind(family))
    }

    /// Streams one family segment through `consume` in budget-sized,
    /// checksum-verified chunks of decoded points.
    ///
    /// Points are decoded without per-point curve checks — the segment
    /// checksum, verified over exactly the bytes that were decoded and
    /// *before* this function returns success, is the integrity boundary.
    /// `consume` receives `(start_index, points)` in index order. Note the
    /// checksum verdict arrives only at the end: callers must treat
    /// consumed chunks as tentative until this function returns `Ok`.
    pub fn stream_family<C: SwCurveConfig>(
        &self,
        kind: u32,
        budget: MemoryBudget,
        mut consume: impl FnMut(u64, &[Affine<C>]),
    ) -> Result<(), StoreError> {
        let entry = *self.file.require(kind)?;
        let elem = uncompressed_size::<C>();
        if entry.count.checked_mul(elem as u64) != Some(entry.len) {
            return Err(StoreError::Malformed("family length disagrees with count"));
        }
        let chunk_elems = budget.chunk_len(elem);
        let mut scratch = Vec::new();
        let mut points: Vec<Affine<C>> = Vec::new();
        let mut hasher = Sha256::new();
        let mut index = 0u64;
        while index < entry.count {
            let take = ((entry.count - index) as usize).min(chunk_elems);
            let bytes = self.file.chunk(
                entry.offset + index * elem as u64,
                take * elem,
                &mut scratch,
            )?;
            hasher.update(bytes);
            points.clear();
            for (i, raw) in bytes.chunks_exact(elem).enumerate() {
                let p = read_uncompressed_unvalidated::<C>(raw).map_err(|source| {
                    StoreError::Point {
                        kind,
                        index: index + i as u64,
                        source,
                    }
                })?;
                points.push(p);
            }
            consume(index, &points);
            index += take as u64;
        }
        if hasher.finalize_truncated() != entry.checksum {
            return Err(StoreError::SegmentChecksumMismatch { kind });
        }
        Ok(())
    }

    /// Materializes a family with the checksum-protected fast decode.
    fn read_family<C: SwCurveConfig>(&self, kind: u32) -> Result<Vec<Affine<C>>, StoreError> {
        let entry = self.file.require(kind)?;
        // bound the preallocation by what the file can actually hold
        let cap = (entry.count as usize).min(self.file.file_len() as usize / 64 + 1);
        let mut out = Vec::with_capacity(cap);
        self.stream_family::<C>(kind, MemoryBudget::from_mb(16), |_, pts| {
            out.extend_from_slice(pts)
        })?;
        Ok(out)
    }

    /// Materializes a family with full per-point validation (on-curve +
    /// subgroup) — only used for the small IC segment.
    fn read_family_validated<C: SwCurveConfig>(
        &self,
        kind: u32,
    ) -> Result<Vec<Affine<C>>, StoreError> {
        let entry = *self.file.require(kind)?;
        let bytes = self.file.read_segment(&entry)?;
        let elem = uncompressed_size::<C>();
        if bytes.len() != entry.count as usize * elem {
            return Err(StoreError::Malformed("family length disagrees with count"));
        }
        let mut out = Vec::with_capacity(entry.count as usize);
        for (i, raw) in bytes.chunks_exact(elem).enumerate() {
            out.push(
                read_uncompressed::<C>(raw).map_err(|source| StoreError::Point {
                    kind,
                    index: i as u64,
                    source,
                })?,
            );
        }
        Ok(out)
    }
}
