//! The `.zkst` segmented container format.
//!
//! A store file is a `ZKRW` envelope extended with a *segment table*, so
//! large artifacts can be read lazily and each piece verified
//! independently:
//!
//! ```text
//! offset 0             32                                table_offset
//! ┌────────────────────┬─────────────────────────────────┬───────────────┬────────┐
//! │ header (32 bytes)  │ segment payloads …              │ segment table │ footer │
//! └────────────────────┴─────────────────────────────────┴───────────────┴────────┘
//!
//! header:  "ZKRW" ‖ kind u8 (9) ‖ version u16 LE ‖ reserved u8
//!          ‖ segment_count u64 LE ‖ table_offset u64 LE ‖ file_len u64 LE
//! table:   segment_count × 36-byte entries:
//!          kind u32 LE ‖ count u64 LE ‖ offset u64 LE ‖ len u64 LE ‖ checksum [u8; 8]
//! footer:  8-byte truncated SHA-256 of header ‖ table
//! ```
//!
//! Every byte of the file is covered by a check: the header and table by
//! the footer digest, and each segment payload by its table entry's
//! truncated SHA-256 — computed streamingly on both the write and read
//! sides, so integrity verification never buffers a segment.
//!
//! The `kind` byte reuses the artifact envelope's tag space (tag 9 =
//! "key store", registered in the core crate's `ArtifactKind`); segment
//! kinds are a separate 32-bit namespace owned by this crate
//! ([`crate::keystore::segment_kind`] for the proving-key layout).

use crate::atomic::{fsync_parent_dir, temp_path};
use crate::map::{ReadAt, Source, StoreBackend};
use crate::sha::Sha256;
use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use zkrownn_curves::PointDecodeError;

/// The envelope magic, shared with the core artifact format.
pub const MAGIC: [u8; 4] = *b"ZKRW";
pub use crate::{STORE_KIND, STORE_VERSION};
/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 32;
/// Segment-table entry length in bytes.
pub const ENTRY_LEN: u64 = 36;
/// Footer (truncated digest) length in bytes.
pub const FOOTER_LEN: u64 = 8;

/// Why a store file failed to open, verify or serve a read.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the `ZKRW` magic.
    BadMagic,
    /// The envelope kind tag is not [`STORE_KIND`].
    WrongKind(u8),
    /// The format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The file is shorter than a declared structure.
    Truncated {
        /// Bytes the structure requires.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A declared length or offset disagrees with the actual file layout.
    Malformed(&'static str),
    /// The header/table footer digest does not match.
    TableChecksumMismatch,
    /// A segment's payload digest does not match its table entry.
    SegmentChecksumMismatch {
        /// The corrupt segment's kind tag.
        kind: u32,
    },
    /// A required segment is absent.
    MissingSegment {
        /// The absent segment's kind tag.
        kind: u32,
    },
    /// A segment's element count disagrees with what the caller needs.
    ShapeMismatch {
        /// The segment kind whose count is wrong.
        kind: u32,
        /// Elements the caller expected.
        expected: u64,
        /// Elements the table declares.
        got: u64,
    },
    /// A point failed to decode inside a segment.
    Point {
        /// The segment kind containing the bad point.
        kind: u32,
        /// The element index within the segment.
        index: u64,
        /// The point-level validation that fired.
        source: PointDecodeError,
    },
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O failed: {e}"),
            Self::BadMagic => write!(f, "not a ZKRW store file"),
            Self::WrongKind(k) => write!(f, "envelope kind {k} is not a key store"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported store format version {v}"),
            Self::Truncated { needed, got } => {
                write!(f, "store truncated: need {needed} bytes, have {got}")
            }
            Self::Malformed(what) => write!(f, "malformed store: {what}"),
            Self::TableChecksumMismatch => write!(f, "segment table checksum mismatch"),
            Self::SegmentChecksumMismatch { kind } => {
                write!(f, "segment {kind} payload checksum mismatch")
            }
            Self::MissingSegment { kind } => write!(f, "segment {kind} missing"),
            Self::ShapeMismatch {
                kind,
                expected,
                got,
            } => write!(
                f,
                "segment {kind} holds {got} elements, expected {expected}"
            ),
            Self::Point {
                kind,
                index,
                source,
            } => write!(f, "segment {kind} element {index}: {source}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Point { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One row of the segment table: where a segment lives and how to check it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Application-defined segment kind tag.
    pub kind: u32,
    /// Number of elements in the segment (elements are
    /// application-defined; the key store uses curve points).
    pub count: u64,
    /// Payload offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Truncated SHA-256 of the payload bytes.
    pub checksum: [u8; 8],
}

impl SegmentEntry {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.checksum);
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        let u64at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        Self {
            kind: u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            count: u64at(4),
            offset: u64at(12),
            len: u64at(20),
            checksum: bytes[28..36].try_into().unwrap(),
        }
    }
}

fn header_bytes(segment_count: u64, table_offset: u64, file_len: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = STORE_KIND;
    h[5..7].copy_from_slice(&STORE_VERSION.to_le_bytes());
    // h[7] reserved, zero
    h[8..16].copy_from_slice(&segment_count.to_le_bytes());
    h[16..24].copy_from_slice(&table_offset.to_le_bytes());
    h[24..32].copy_from_slice(&file_len.to_le_bytes());
    h
}

/// The write medium a [`StoreWriter`] commits bytes through — the trait
/// seam the fault-injection harness (`zkrownn-faults`) wraps a real file
/// with. Production code only ever uses [`File`].
pub trait StoreMedium: Write + Seek + Send {
    /// Flushes all written bytes to stable storage. Media without a
    /// durability notion may no-op.
    fn sync_all(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl StoreMedium for File {
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

/// Streaming writer for a `.zkst` container.
///
/// Segments are written strictly sequentially: `begin_segment`, any number
/// of `write` calls (hashed into the segment checksum as they pass), then
/// `end_segment`; `finish` appends the table and footer and patches the
/// header. Nothing is buffered beyond the `BufWriter` block, so writing a
/// multi-GB store holds O(1) memory.
///
/// Durability is atomic: bytes stream to `<path>.tmp`, and only a fully
/// successful [`Self::finish`] — table, footer, header, `sync_all` —
/// renames the staging file over `path` and fsyncs the parent directory.
/// A crash (even `kill -9`) at any earlier byte leaves at worst a stale
/// `*.tmp`; the final name never holds a partial store. If the writer is
/// dropped without finishing, the staging file is removed.
pub struct StoreWriter {
    out: Option<io::BufWriter<Box<dyn StoreMedium>>>,
    offset: u64,
    entries: Vec<SegmentEntry>,
    open: Option<OpenSegment>,
    /// `(staging path, final path)` for path-backed writers.
    dest: Option<(PathBuf, PathBuf)>,
    finished: bool,
}

struct OpenSegment {
    kind: u32,
    count: u64,
    start: u64,
    hasher: Sha256,
}

impl StoreWriter {
    /// Creates a writer that stages at `<path>.tmp` and atomically renames
    /// over `path` on a successful [`Self::finish`].
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_with(path, |file| Box::new(file))
    }

    /// Like [`Self::create`], but the staging file is passed through
    /// `wrap` first — the hook fault-injection harnesses use to interpose
    /// on every write. The atomic rename discipline is unchanged.
    pub fn create_with(
        path: &Path,
        wrap: impl FnOnce(File) -> Box<dyn StoreMedium>,
    ) -> io::Result<Self> {
        let tmp = temp_path(path);
        let file = File::create(&tmp)?;
        let mut out = io::BufWriter::new(wrap(file));
        if let Err(e) = out.write_all(&[0u8; HEADER_LEN as usize]) {
            drop(out);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(Self {
            out: Some(out),
            offset: HEADER_LEN,
            entries: Vec::new(),
            open: None,
            dest: Some((tmp, path.to_path_buf())),
            finished: false,
        })
    }

    fn out(&mut self) -> &mut io::BufWriter<Box<dyn StoreMedium>> {
        self.out.as_mut().expect("writer already consumed")
    }

    /// Opens the next segment. `count` is the (application-defined)
    /// element count recorded in the table.
    ///
    /// # Panics
    /// Panics if a segment is already open — segment writes cannot nest.
    pub fn begin_segment(&mut self, kind: u32, count: u64) {
        assert!(self.open.is_none(), "segment already open");
        self.open = Some(OpenSegment {
            kind,
            count,
            start: self.offset,
            hasher: Sha256::new(),
        });
    }

    /// Appends payload bytes to the open segment.
    ///
    /// # Panics
    /// Panics if no segment is open.
    pub fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        let seg = self.open.as_mut().expect("no open segment");
        seg.hasher.update(bytes);
        self.out().write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Closes the open segment, recording its table entry.
    ///
    /// # Panics
    /// Panics if no segment is open.
    pub fn end_segment(&mut self) {
        let seg = self.open.take().expect("no open segment");
        self.entries.push(SegmentEntry {
            kind: seg.kind,
            count: seg.count,
            offset: seg.start,
            len: self.offset - seg.start,
            checksum: seg.hasher.finalize_truncated(),
        });
    }

    /// Writes the segment table and footer, patches the header, syncs the
    /// staging file to disk, renames it over the final path, and fsyncs
    /// the parent directory. Only a fully successful return commits the
    /// store at its final name.
    ///
    /// # Panics
    /// Panics if a segment is still open.
    pub fn finish(mut self) -> io::Result<()> {
        assert!(self.open.is_none(), "unclosed segment at finish");
        let table_offset = self.offset;
        let mut table = Vec::with_capacity(self.entries.len() * ENTRY_LEN as usize);
        for entry in &self.entries {
            entry.write_bytes(&mut table);
        }
        let file_len = table_offset + table.len() as u64 + FOOTER_LEN;
        let header = header_bytes(self.entries.len() as u64, table_offset, file_len);

        let mut footer_hash = Sha256::new();
        footer_hash.update(&header);
        footer_hash.update(&table);
        let footer = footer_hash.finalize_truncated();

        let out = self.out();
        out.write_all(&table)?;
        out.write_all(&footer)?;
        let mut medium = self
            .out
            .take()
            .expect("writer already consumed")
            .into_inner()
            .map_err(io::IntoInnerError::into_error)?;
        medium.seek(SeekFrom::Start(0))?;
        medium.write_all(&header)?;
        medium.sync_all()?;
        // release the handle before renaming, then commit the name
        drop(medium);
        if let Some((tmp, path)) = self.dest.clone() {
            std::fs::rename(&tmp, &path)?;
            fsync_parent_dir(&path)?;
        }
        self.finished = true;
        Ok(())
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // abandoned mid-write: close the handle, then remove the staging
        // file so a failed setup never leaves partial bytes behind
        drop(self.out.take());
        if let Some((tmp, _)) = self.dest.take() {
            let _ = std::fs::remove_file(tmp);
        }
    }
}

/// An open, header-validated `.zkst` container.
///
/// Opening reads and verifies only the header, table and footer — O(table)
/// work and memory no matter how large the payloads are. Segment payloads
/// are fetched lazily through [`Self::chunk`] and checked against their
/// table checksums by the streaming consumers ([`Self::verify_integrity`],
/// the budgeted prover, the materializing readers in
/// [`crate::keystore`]).
pub struct StoreFile {
    source: Source,
    entries: Vec<SegmentEntry>,
}

impl StoreFile {
    /// Opens `path` with the default backend ([`StoreBackend::Auto`]).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::open_with(path, StoreBackend::Auto)
    }

    /// Opens `path` with an explicit read backend.
    pub fn open_with(path: &Path, backend: StoreBackend) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let source = Source::open(file, file_len, backend)?;
        Self::from_source(source)
    }

    /// Opens a store through an arbitrary positioned reader of `len` total
    /// bytes — the buffered backend's [`ReadAt`] seam, which fault
    /// harnesses use to interpose on every read of a real store file.
    pub fn open_reader(reader: Box<dyn ReadAt>, len: u64) -> Result<Self, StoreError> {
        Self::from_source(Source::from_read_at(reader, len))
    }

    fn from_source(source: Source) -> Result<Self, StoreError> {
        let file_len = source.len();
        let mut scratch = Vec::new();

        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN + FOOTER_LEN,
                got: file_len,
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        header.copy_from_slice(source.chunk(0, HEADER_LEN as usize, &mut scratch)?);
        if header[0..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        if header[4] != STORE_KIND {
            return Err(StoreError::WrongKind(header[4]));
        }
        let version = u16::from_le_bytes(header[5..7].try_into().unwrap());
        if version != STORE_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let segment_count = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let table_offset = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let declared_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if declared_len != file_len {
            return Err(StoreError::Malformed("declared file length disagrees"));
        }
        // validate the table extent against the real file size *before*
        // allocating anything proportional to segment_count
        let table_len = segment_count
            .checked_mul(ENTRY_LEN)
            .ok_or(StoreError::Malformed("segment count overflows"))?;
        let expected_len = table_offset
            .checked_add(table_len)
            .and_then(|v| v.checked_add(FOOTER_LEN))
            .ok_or(StoreError::Malformed("table extent overflows"))?;
        if table_offset < HEADER_LEN || expected_len != file_len {
            return Err(StoreError::Malformed("table extent disagrees with file"));
        }

        let table = source
            .chunk(table_offset, table_len as usize, &mut scratch)?
            .to_vec();
        let mut footer = [0u8; FOOTER_LEN as usize];
        footer.copy_from_slice(source.chunk(
            table_offset + table_len,
            FOOTER_LEN as usize,
            &mut scratch,
        )?);
        let mut footer_hash = Sha256::new();
        footer_hash.update(&header);
        footer_hash.update(&table);
        if footer_hash.finalize_truncated() != footer {
            return Err(StoreError::TableChecksumMismatch);
        }

        // entries must tile [HEADER_LEN, table_offset) exactly, in order —
        // every payload byte belongs to exactly one checksummed segment
        let mut entries = Vec::with_capacity(segment_count as usize);
        let mut cursor = HEADER_LEN;
        for raw in table.chunks_exact(ENTRY_LEN as usize) {
            let entry = SegmentEntry::from_bytes(raw);
            if entry.offset != cursor {
                return Err(StoreError::Malformed("segments are not contiguous"));
            }
            cursor = entry
                .offset
                .checked_add(entry.len)
                .ok_or(StoreError::Malformed("segment extent overflows"))?;
            if cursor > table_offset {
                return Err(StoreError::Malformed("segment extends past the table"));
            }
            entries.push(entry);
        }
        if cursor != table_offset {
            return Err(StoreError::Malformed("payload bytes outside any segment"));
        }

        Ok(Self { source, entries })
    }

    /// The segment table, in file order.
    pub fn segments(&self) -> &[SegmentEntry] {
        &self.entries
    }

    /// The first segment of `kind`, if present.
    pub fn segment(&self, kind: u32) -> Option<&SegmentEntry> {
        self.entries.iter().find(|e| e.kind == kind)
    }

    /// Like [`Self::segment`] but an error when absent.
    pub fn require(&self, kind: u32) -> Result<&SegmentEntry, StoreError> {
        self.segment(kind)
            .ok_or(StoreError::MissingSegment { kind })
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.source.len()
    }

    /// A borrowed window of `len` bytes at absolute `offset` — zero-copy
    /// from the mapping, or `scratch` filled by a positioned read. The
    /// range must lie inside the file.
    pub fn chunk<'a>(
        &'a self,
        offset: u64,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> Result<&'a [u8], StoreError> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(StoreError::Malformed("chunk range overflows"))?;
        if end > self.source.len() {
            return Err(StoreError::Truncated {
                needed: end,
                got: self.source.len(),
            });
        }
        Ok(self.source.chunk(offset, len, scratch)?)
    }

    /// Reads an entire segment's payload into a fresh buffer, verifying
    /// its checksum.
    pub fn read_segment(&self, entry: &SegmentEntry) -> Result<Vec<u8>, StoreError> {
        let mut scratch = Vec::new();
        let bytes = self
            .chunk(entry.offset, entry.len as usize, &mut scratch)?
            .to_vec();
        let mut hasher = Sha256::new();
        hasher.update(&bytes);
        if hasher.finalize_truncated() != entry.checksum {
            return Err(StoreError::SegmentChecksumMismatch { kind: entry.kind });
        }
        Ok(bytes)
    }

    /// Streams every segment through its checksum at a bounded buffer
    /// size, verifying the whole file without materializing any payload.
    pub fn verify_integrity(&self) -> Result<(), StoreError> {
        const VERIFY_CHUNK: usize = 1 << 20;
        let mut scratch = Vec::new();
        for entry in &self.entries {
            let mut hasher = Sha256::new();
            let mut off = entry.offset;
            let mut remaining = entry.len;
            while remaining > 0 {
                let take = remaining.min(VERIFY_CHUNK as u64) as usize;
                hasher.update(self.chunk(off, take, &mut scratch)?);
                off += take as u64;
                remaining -= take as u64;
            }
            if hasher.finalize_truncated() != entry.checksum {
                return Err(StoreError::SegmentChecksumMismatch { kind: entry.kind });
            }
        }
        Ok(())
    }
}
