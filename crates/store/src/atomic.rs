//! Atomic file-commit primitives: write-to-temp, `sync_all`, rename,
//! fsync the parent directory.
//!
//! A writer that creates its final path directly can be interrupted — by a
//! crash, a disk fault, or plain `kill -9` — half way through, leaving a
//! torn file *at the name readers look for*. The discipline here makes
//! every commit all-or-nothing: bytes land at `<path>.tmp`, are synced to
//! stable storage, and only then renamed over `<path>` (atomic within a
//! POSIX filesystem); the parent directory is fsynced afterwards so the
//! *name* survives a power cut too. Readers therefore only ever observe
//! either the previous complete file or the new complete file — a crash at
//! any byte leaves at worst a stale `*.tmp` that loaders skip.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The staging name a pending atomic write uses: `<path>.tmp` (the full
/// file name plus a `.tmp` suffix, so `model.zkst` stages at
/// `model.zkst.tmp`). Loaders treat this suffix as "never committed".
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Fsyncs the directory holding `path`, durably committing a rename of a
/// name inside it. A no-op on platforms where directories cannot be
/// opened (non-Unix); the rename is still atomic there, just not
/// power-cut durable.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically: the content goes to
/// [`temp_path`], is synced, and is renamed over `path` only once
/// complete. An interruption at any point leaves the previous content of
/// `path` (or no file) plus at worst a stale `*.tmp` — never a torn file
/// at the final name.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        fsync_parent_dir(path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_path_appends_to_the_full_name() {
        assert_eq!(
            temp_path(Path::new("/keys/model.zkst")),
            PathBuf::from("/keys/model.zkst.tmp")
        );
        assert_eq!(
            temp_path(Path::new("out.json")),
            PathBuf::from("out.json.tmp")
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("zkst-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_file_atomic(&path, b"first").unwrap();
        write_file_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!temp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
