//! The store-backed (memory-budgeted) Groth16 prover.
//!
//! The in-memory prover holds five point families and runs five monolithic
//! MSMs. Here each family is *streamed* out of the store in budget-sized
//! chunks — decoded without per-point curve checks (the segment checksums
//! are the integrity boundary), folded into a
//! [`zkrownn_curves::MsmAccumulator`], and dropped — so peak memory is the
//! scalar vectors (32 B/element) plus **one** chunk of points, regardless
//! of key size.
//!
//! MSM partial sums add up group-exactly and the final `(r, s)` assembly
//! is the same [`zkrownn_groth16::assemble_proof`] the in-memory kernel
//! calls, so a streamed proof is **byte-identical** to the cached-context
//! proof for the same assignment and randomness — pinned by the
//! `streaming` test suite.
//!
//! Corruption safety: every segment's checksum is verified before its
//! accumulated sum can reach the proof assembly; a flipped bit anywhere in
//! a consumed segment yields [`StoreError::SegmentChecksumMismatch`],
//! never a wrong proof.

use crate::format::StoreError;
use crate::keystore::{segment_kind, KeyStore};
use std::time::Instant;
use zkrownn_curves::{G1Config, G2Config, MemoryBudget, MsmAccumulator};
use zkrownn_ff::Fr;
use zkrownn_groth16::prover::{assemble_proof, ProofSums, ProverContext, ProverTimings};
use zkrownn_groth16::Proof;

/// Creates a proof from a store-backed key at a fixed memory budget, with
/// explicit zero-knowledge randomness `(r, s)`.
///
/// `z` is the full assignment (instance ‖ witness) of a satisfied
/// synthesis of the same circuit the key was generated for; `ctx` is the
/// prover's cached compute state. Byte-identical to
/// [`zkrownn_groth16::create_proof_with_context_and_randomness`] over the
/// equivalent in-memory key.
pub fn create_proof_streamed(
    store: &KeyStore,
    ctx: &ProverContext,
    z: &[Fr],
    r: Fr,
    s: Fr,
    budget: MemoryBudget,
) -> Result<Proof, StoreError> {
    create_proof_streamed_timed(store, ctx, z, r, s, budget).map(|(proof, _)| proof)
}

/// [`create_proof_streamed`] with fresh randomness from `rng`.
pub fn create_proof_streamed_rng<R: rand::Rng + ?Sized>(
    store: &KeyStore,
    ctx: &ProverContext,
    z: &[Fr],
    rng: &mut R,
    budget: MemoryBudget,
) -> Result<Proof, StoreError> {
    use zkrownn_ff::Field;
    let r = Fr::random(rng);
    let s = Fr::random(rng);
    create_proof_streamed(store, ctx, z, r, s, budget)
}

/// [`create_proof_streamed`] returning the per-phase wall-clock breakdown
/// (the bench harness's store-path source).
pub fn create_proof_streamed_timed(
    store: &KeyStore,
    ctx: &ProverContext,
    z: &[Fr],
    r: Fr,
    s: Fr,
    budget: MemoryBudget,
) -> Result<(Proof, ProverTimings), StoreError> {
    let start = Instant::now();
    let num_vars = ctx.matrices().num_instance + ctx.matrices().num_witness;
    let num_instance = ctx.matrices().num_instance;
    if z.len() != num_vars {
        return Err(StoreError::ShapeMismatch {
            kind: segment_kind::A_QUERY,
            expected: num_vars as u64,
            got: z.len() as u64,
        });
    }

    // h(x) coefficients (the FFT-heavy part) — scalars stay in memory;
    // they are 32 B/element against the key's 64–128 B/point
    let h = ctx.witness_map(z);
    let witness_map_time = start.elapsed();

    let msm_start = Instant::now();
    let witness = &z[num_instance..];
    // segments serially (the budget bounds *total* live point memory, so
    // concurrent families would split — and effectively shrink — it)
    let a_sum = stream_msm_g1(store, segment_kind::A_QUERY, z, budget)?;
    let b_g1_sum = stream_msm_g1(store, segment_kind::B_G1_QUERY, z, budget)?;
    let b_g2_sum = {
        let entry = store.family_entry(zkrownn_groth16::KeyFamily::BG2Query)?;
        check_count(entry.count, z.len(), segment_kind::B_G2_QUERY)?;
        let mut acc = MsmAccumulator::<G2Config>::new();
        store.stream_family::<G2Config>(segment_kind::B_G2_QUERY, budget, |at, pts| {
            acc.accumulate(pts, &z[at as usize..at as usize + pts.len()]);
        })?;
        acc.finish()
    };
    let lh_sum = stream_msm_g1(store, segment_kind::L_QUERY, witness, budget)?
        + stream_msm_g1(store, segment_kind::H_QUERY, &h, budget)?;
    let msm_time = msm_start.elapsed();

    let constants = store.constants()?;
    let proof = assemble_proof(
        &constants,
        &ProofSums {
            a_sum,
            b_g1_sum,
            b_g2_sum,
            lh_sum,
        },
        r,
        s,
    );
    Ok((
        proof,
        ProverTimings {
            witness_map: witness_map_time,
            msm: msm_time,
            total: start.elapsed(),
        },
    ))
}

fn check_count(got: u64, expected: usize, kind: u32) -> Result<(), StoreError> {
    if got != expected as u64 {
        return Err(StoreError::ShapeMismatch {
            kind,
            expected: expected as u64,
            got,
        });
    }
    Ok(())
}

/// One G1 family MSM, streamed and checksum-verified.
fn stream_msm_g1(
    store: &KeyStore,
    kind: u32,
    scalars: &[Fr],
    budget: MemoryBudget,
) -> Result<zkrownn_curves::G1Projective, StoreError> {
    let entry = store.file().require(kind)?;
    check_count(entry.count, scalars.len(), kind)?;
    let mut acc = MsmAccumulator::<G1Config>::new();
    store.stream_family::<G1Config>(kind, budget, |at, pts| {
        acc.accumulate(pts, &scalars[at as usize..at as usize + pts.len()]);
    })?;
    Ok(acc.finish())
}
