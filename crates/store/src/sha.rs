//! SHA-256 — the content digest behind segment checksums, `CircuitId`s and
//! the artifact envelope checksum.
//!
//! This implementation lives here (rather than in `zkrownn`, which
//! re-exports it) because the store sits *below* the core crate in the
//! dependency graph: every byte a [`crate::StoreWriter`] emits is hashed
//! into a per-segment checksum as it streams past, and the reader side
//! re-derives those digests without ever buffering a segment.

#[rustfmt::skip]
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256_compress(h: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(SHA256_K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
        *slot = slot.wrapping_add(v);
    }
}

/// Incremental SHA-256 state: absorb any number of `update`s, then
/// `finalize`. Backs the one-shot [`sha256`] helper, the store's streaming
/// segment checksums, and — via the core crate's `TraceHasher` — the
/// streaming digest of setup-mode synthesis traces, which for a CNN-scale
/// circuit would be far too large to buffer.
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hash state.
    pub fn new() -> Self {
        Self {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs the next chunk of the message.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                return; // data exhausted without completing the block
            }
            let block = self.buf;
            sha256_compress(&mut self.h, &block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            sha256_compress(&mut self.h, block);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Pads and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let mut tail = [0u8; 128];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_len = if self.buf_len < 56 { 64 } else { 128 };
        let bit_len = self.total.wrapping_mul(8);
        tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
        for block in tail[..tail_len].chunks_exact(64) {
            sha256_compress(&mut self.h, block);
        }
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The first 8 digest bytes — the store's segment/table checksum width
    /// (the same truncation the artifact envelope uses).
    pub fn finalize_truncated(self) -> [u8; 8] {
        let full = self.finalize();
        full[..8].try_into().unwrap()
    }
}

/// SHA-256 of `data` — the content digest used for `CircuitId`s, statement
/// digests, segment checksums and the artifact envelope checksum.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = Sha256::new();
    state.update(data);
    state.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 test vectors
    #[test]
    fn known_vectors() {
        let hex = |d: [u8; 32]| d.iter().map(|b| format!("{b:02x}")).collect::<String>();
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        for split in [0usize, 1, 63, 64, 65, 1000, 3999] {
            let mut s = Sha256::new();
            s.update(&data[..split.min(data.len())]);
            s.update(&data[split.min(data.len())..]);
            assert_eq!(s.finalize(), sha256(&data), "split at {split}");
        }
    }
}
