//! # zkrownn-store — the segmented on-disk key store
//!
//! ZKROWNN's pipeline materializes every proving key in RAM; at CNN scale
//! a key is tens of megabytes and at paper-scale conv stacks it is
//! multi-GB — far past what the setup and prover should be required to
//! hold. This crate makes key size and peak memory independent:
//!
//! * [`mod@format`] — the `.zkst` container: a `ZKRW` envelope extended with a
//!   **segment table** (per-segment kind/count/offset/length/checksum), a
//!   streaming [`StoreWriter`] and a lazily-reading [`StoreFile`] with
//!   mmap and buffered-`pread` backends ([`StoreBackend`]);
//! * [`keystore`] — the proving-key layout over that container: one
//!   segment per [`zkrownn_groth16::KeyFamily`], a constants segment, and
//!   an optional circuit-binding metadata segment. [`KeyStoreWriter`] is
//!   the [`zkrownn_groth16::KeySink`] that turns
//!   `SetupContext::generate_streaming_with` into memory-budgeted on-disk
//!   keygen; [`KeyStore`] reads families back segment-at-a-time;
//! * [`prover`] — [`create_proof_streamed`]: windowed Pippenger consuming
//!   base chunks straight from the store at a fixed
//!   [`zkrownn_curves::MemoryBudget`], byte-identical to the in-memory
//!   prover;
//! * [`sha`] — the workspace's SHA-256 (re-exported by the core crate),
//!   which backs every segment checksum;
//! * [`mod@atomic`] — the write-to-temp / `sync_all` / rename /
//!   fsync-parent commit discipline behind every writer here: a crash
//!   (even `kill -9`) mid-setup leaves at worst a stale `*.zkst.tmp`,
//!   never a torn store at the final name.
//!
//! Both streaming paths are *pinned* byte-identical to their in-memory
//! equivalents: chunked fixed-base multiplication produces the same
//! canonical affine points, and MSM partial sums add up group-exactly.
//! Integrity is end-to-end — every byte of a store file is covered either
//! by the header/table footer digest or by a segment checksum, and the
//! streaming prover refuses to assemble a proof from a segment whose
//! digest does not match.
//!
//! ```
//! use rand::SeedableRng;
//! use zkrownn_curves::MemoryBudget;
//! use zkrownn_ff::{Field, Fr};
//! use zkrownn_groth16::{SetupContext, ToxicWaste};
//! use zkrownn_r1cs::{assignment, Circuit, ConstraintSystem, ProvingSynthesizer, SynthesisError};
//! use zkrownn_store::{create_proof_streamed, KeyStore, KeyStoreWriter};
//!
//! struct Square { x: Option<u64> }
//! impl Circuit<Fr> for Square {
//!     type Output = ();
//!     fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
//!         let y = cs.alloc_instance(|| Ok(Fr::from_u64(self.x.unwrap() * self.x.unwrap())))?;
//!         let xv = self.x;
//!         let x = cs.alloc_witness(|| assignment(xv.map(Fr::from_u64)))?;
//!         cs.enforce(x.into(), x.into(), y.into());
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("zkst-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("square.zkst");
//!
//! // streaming keygen: each fixed-base chunk goes to disk as it finishes
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let budget = MemoryBudget::from_mb(64);
//! let ctx = SetupContext::for_circuit(&Square { x: None })?;
//! let mut sink = KeyStoreWriter::create(&path, None)?;
//! ctx.generate_streaming_with(&ToxicWaste::sample(&mut rng), &mut sink, budget)?;
//! sink.finish()?;
//!
//! // streaming prove: Pippenger consumes base chunks from the store
//! let store = KeyStore::open(&path)?;
//! let mut cs = ProvingSynthesizer::<Fr>::new();
//! Square { x: Some(3) }.synthesize(&mut cs)?;
//! let prover_ctx = ctx.into_prover_context();
//! let z = cs.full_assignment();
//! let r = Fr::random(&mut rng);
//! let s = Fr::random(&mut rng);
//! let proof = create_proof_streamed(&store, &prover_ctx, &z, r, s, budget)?;
//! assert!(zkrownn_groth16::verify_proof(
//!     &store.verifying_key()?,
//!     &proof,
//!     &[Fr::from_u64(9)],
//! ).is_ok());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

#[cfg(feature = "std")]
pub mod atomic;
#[cfg(feature = "std")]
pub mod format;
#[cfg(feature = "std")]
pub mod keystore;
#[cfg(feature = "std")]
pub mod map;
#[cfg(feature = "std")]
pub mod prover;
pub mod sha;

#[cfg(feature = "std")]
pub use atomic::{fsync_parent_dir, temp_path, write_file_atomic};
#[cfg(feature = "std")]
pub use format::{SegmentEntry, StoreError, StoreFile, StoreMedium, StoreWriter};

/// The envelope kind tag of a store file (`ArtifactKind::KeyStore`).
pub const STORE_KIND: u8 = 9;
/// Store format version this crate writes and understands.
pub const STORE_VERSION: u16 = 1;
#[cfg(feature = "std")]
pub use keystore::{
    family_kind, segment_kind, write_proving_key, KeyStore, KeyStoreWriter, StoreMeta,
};
#[cfg(feature = "std")]
pub use map::ReadAt;
#[cfg(feature = "std")]
pub use map::StoreBackend;
#[cfg(feature = "std")]
pub use prover::{create_proof_streamed, create_proof_streamed_rng, create_proof_streamed_timed};
pub use sha::{sha256, Sha256};
