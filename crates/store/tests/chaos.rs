//! Fault-injection chaos tests for the store's atomic write path.
//!
//! The contract under test: **the final `.zkst` path never holds a
//! partial store.** Whatever faults fire during a write — injected I/O
//! failures, torn writes, stalls, even a simulated `kill -9` — either the
//! store commits completely (and then reads back byte-perfect) or the
//! final path does not exist at all. Every plan is seeded, and every
//! assertion carries the plan label so a CI failure reproduces locally.

use std::path::{Path, PathBuf};

use zkrownn_faults::FaultPlan;
use zkrownn_store::{temp_path, StoreFile, StoreWriter};

const SEG_A: u32 = 0xA0;
const SEG_B: u32 = 0xB0;

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zkst-chaos-{}-{tag}.zkst", std::process::id()))
}

fn seg_bytes(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag ^ (i as u8)).collect()
}

/// Writes the reference two-segment store through `writer`, propagating
/// the first injected failure.
fn write_reference(mut writer: StoreWriter) -> std::io::Result<()> {
    writer.begin_segment(SEG_A, 4);
    writer.write(&seg_bytes(0x11, 400))?;
    writer.end_segment();
    writer.begin_segment(SEG_B, 7);
    writer.write(&seg_bytes(0x22, 700))?;
    writer.end_segment();
    writer.finish()
}

fn assert_committed_store_is_sound(path: &Path, label: &str) {
    let store = StoreFile::open(path)
        .unwrap_or_else(|e| panic!("[{label}] committed store does not open: {e}"));
    store
        .verify_integrity()
        .unwrap_or_else(|e| panic!("[{label}] committed store fails integrity: {e}"));
    let a = store.segment(SEG_A).expect("segment A present");
    assert_eq!(
        store.read_segment(a).unwrap(),
        seg_bytes(0x11, 400),
        "[{label}] segment A bytes"
    );
    let b = store.segment(SEG_B).expect("segment B present");
    assert_eq!(
        store.read_segment(b).unwrap(),
        seg_bytes(0x22, 700),
        "[{label}] segment B bytes"
    );
}

#[test]
fn seeded_write_faults_never_leave_a_partial_store() {
    // the reference store is ~1.2 KiB; spread fault offsets across it so
    // plans hit the header, payloads, table, and footer writes
    const EXTENT: u64 = 1300;
    let mut committed = 0usize;
    let mut aborted = 0usize;
    for seed in 0..16u64 {
        let plan = FaultPlan::from_seed(seed, EXTENT);
        let label = plan.label().to_string();
        let armed = plan.arm();
        let path = scratch_path(&format!("seed{seed}"));
        let _ = std::fs::remove_file(&path);

        let outcome = StoreWriter::create_with(&path, |file| Box::new(armed.medium(file)))
            .and_then(write_reference);
        match outcome {
            Ok(()) => {
                committed += 1;
                assert_committed_store_is_sound(&path, &label);
            }
            Err(_) => {
                aborted += 1;
                assert!(
                    !path.exists(),
                    "[{label}] aborted write left bytes at the final path"
                );
            }
        }
        // the staging file must be gone either way: renamed on success,
        // removed by the writer's drop on failure
        assert!(
            !temp_path(&path).exists(),
            "[{label}] staging file survived the writer"
        );
        let _ = std::fs::remove_file(&path);
    }
    // the seed sweep must actually exercise both outcomes (read-only
    // plans and delay-only plans commit; write faults abort)
    assert!(committed > 0, "no seeded plan committed");
    assert!(aborted > 0, "no seeded plan injected a write failure");
}

#[test]
fn fault_free_wrapped_writer_matches_a_plain_one() {
    let plain = scratch_path("plain");
    let wrapped = scratch_path("wrapped");
    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&wrapped);

    write_reference(StoreWriter::create(&plain).unwrap()).unwrap();
    let armed = FaultPlan::new().arm();
    write_reference(StoreWriter::create_with(&wrapped, |f| Box::new(armed.medium(f))).unwrap())
        .unwrap();

    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&wrapped).unwrap(),
        "an empty fault plan must be byte-transparent"
    );
    assert_committed_store_is_sound(&plain, "plain");
    std::fs::remove_file(&plain).unwrap();
    std::fs::remove_file(&wrapped).unwrap();
}

#[test]
fn kill_nine_mid_write_leaves_only_the_staging_file() {
    let path = scratch_path("kill9");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(temp_path(&path));

    let mut writer = StoreWriter::create(&path).unwrap();
    writer.begin_segment(SEG_A, 4);
    writer.write(&seg_bytes(0x11, 400)).unwrap();
    // a SIGKILL never runs destructors; forgetting the writer models the
    // process vanishing between two write calls
    std::mem::forget(writer);

    assert!(
        !path.exists(),
        "a killed write must not materialize the final path"
    );
    let tmp = temp_path(&path);
    assert!(tmp.exists(), "the staging file is what a crash leaves");
    // the partial staging bytes must not open as a store either
    assert!(
        StoreFile::open(&tmp).is_err(),
        "partial staging bytes opened as a store"
    );
    std::fs::remove_file(&tmp).unwrap();
}

#[test]
fn faulted_positioned_reads_fail_closed() {
    let path = scratch_path("pread");
    let _ = std::fs::remove_file(&path);
    write_reference(StoreWriter::create(&path).unwrap()).unwrap();
    let len = std::fs::metadata(&path).unwrap().len();

    // a fault inside a payload: the store opens (header/table are clean)
    // but integrity verification must error, never panic or pass
    let armed = FaultPlan::new().fail_read_at(200).arm();
    let file = std::fs::File::open(&path).unwrap();
    let store = StoreFile::open_reader(Box::new(armed.read_at(file)), len)
        .expect("header and table avoid the payload fault");
    assert!(
        store.verify_integrity().is_err(),
        "integrity check passed through an injected read failure"
    );

    // a fault inside the header: opening itself must fail cleanly
    let armed = FaultPlan::new().short_read_at(10).arm();
    let file = std::fs::File::open(&path).unwrap();
    assert!(
        StoreFile::open_reader(Box::new(armed.read_at(file)), len).is_err(),
        "open succeeded through a torn header read"
    );
    std::fs::remove_file(&path).unwrap();
}
