//! Byte-identity pins for the streaming paths, under fixed toxic waste and
//! fixed proof randomness:
//!
//! * streaming keygen through a [`KeyStoreWriter`] reloads as **exactly**
//!   the proving key the in-memory `generate_with` produces — and the store
//!   *file* it writes is byte-for-byte the file [`write_proving_key`]
//!   produces from that in-memory key;
//! * the streamed prover emits **exactly** the proof the in-memory
//!   cached-context prover emits, at any memory budget;
//! * corrupting a consumed segment yields a checksum error, never a
//!   different proof.

use std::path::PathBuf;

use zkrownn_curves::MemoryBudget;
use zkrownn_ff::{Field, Fr};
use zkrownn_groth16::{
    create_proof_with_context_and_randomness, verify_proof, SetupContext, ToxicWaste,
};
use zkrownn_r1cs::{
    assignment, Circuit, ConstraintSystem, LinearCombination, ProvingSynthesizer, SynthesisError,
};
use zkrownn_store::{
    create_proof_streamed, segment_kind, write_proving_key, KeyStore, KeyStoreWriter, StoreBackend,
    StoreMeta,
};

/// A small but non-trivial circuit: proves knowledge of `x` with
/// `x³ + x + 5 = out`, padded with extra witnesses so every key family has
/// more than one chunk at tiny budgets.
struct Cubic {
    x: Option<u64>,
    padding: usize,
}

impl Circuit<Fr> for Cubic {
    type Output = ();

    fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
        let xv = self.x;
        let out = cs.alloc_instance(|| {
            let x = xv.ok_or(SynthesisError::AssignmentMissing)?;
            Ok(Fr::from_u64(x * x * x + x + 5))
        })?;
        let x = cs.alloc_witness(|| assignment(xv.map(Fr::from_u64)))?;
        let x2 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x))))?;
        let x3 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x * x))))?;
        cs.enforce(x.into(), x.into(), x2.into());
        cs.enforce(x2.into(), x.into(), x3.into());
        let lhs = LinearCombination::from(x3)
            + LinearCombination::from(x)
            + LinearCombination::constant(Fr::from_u64(5));
        cs.enforce(lhs, LinearCombination::constant(Fr::one()), out.into());
        for i in 0..self.padding {
            let w = cs.alloc_witness(|| Ok(Fr::from_u64(i as u64 + 2)))?;
            let w2 = cs.alloc_witness(|| Ok(Fr::from_u64((i as u64 + 2) * (i as u64 + 2))))?;
            cs.enforce(w.into(), w.into(), w2.into());
        }
        Ok(())
    }
}

fn fixed_toxic() -> ToxicWaste {
    ToxicWaste {
        alpha: Fr::from_u64(21),
        beta: Fr::from_u64(22),
        gamma: Fr::from_u64(23),
        delta: Fr::from_u64(24),
        tau: Fr::from_u64(25),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkst-streaming-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const META: StoreMeta = StoreMeta {
    circuit_id: [0x11; 32],
    statement_digest: [0x22; 32],
};

#[test]
fn streaming_keygen_is_byte_identical_to_in_memory_keygen() {
    let circuit = Cubic {
        x: None,
        padding: 9,
    };
    let ctx = SetupContext::for_circuit(&circuit).unwrap();
    let toxic = fixed_toxic();
    let pk = ctx.generate_with(&toxic);

    // the streamed store reloads as exactly the in-memory key, at several
    // budgets (1 byte floors to the minimum chunk; 1 MB is one chunk)
    for (i, budget_bytes) in [1usize, 300 * 64, 1 << 20].into_iter().enumerate() {
        let path = temp_path(&format!("keygen-{i}.zkst"));
        let mut sink = KeyStoreWriter::create(&path, Some(META)).unwrap();
        ctx.generate_streaming_with(&toxic, &mut sink, MemoryBudget::from_bytes(budget_bytes))
            .unwrap();
        sink.finish().unwrap();

        let store = KeyStore::open(&path).unwrap();
        assert_eq!(store.meta().unwrap(), Some(META));
        assert_eq!(store.load_proving_key().unwrap(), pk);

        // stronger: the streamed *file* equals the file written from the
        // materialized key — chunking leaves no trace in the container
        let oracle_path = temp_path(&format!("oracle-{i}.zkst"));
        write_proving_key(&oracle_path, &pk, Some(META)).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&oracle_path).unwrap(),
            "streamed store at budget {budget_bytes} differs from materialized-key store"
        );
    }
}

#[test]
fn streamed_proofs_are_byte_identical_to_in_memory_proofs() {
    let shape = Cubic {
        x: None,
        padding: 9,
    };
    let ctx = SetupContext::for_circuit(&shape).unwrap();
    let toxic = fixed_toxic();
    let pk = ctx.generate_with(&toxic);
    let path = temp_path("prove.zkst");
    write_proving_key(&path, &pk, None).unwrap();

    let mut cs = ProvingSynthesizer::<Fr>::new();
    Cubic {
        x: Some(3),
        padding: 9,
    }
    .synthesize(&mut cs)
    .unwrap();
    let z = cs.full_assignment();
    let prover_ctx = ctx.into_prover_context();
    let (r, s) = (Fr::from_u64(77), Fr::from_u64(78));
    let expected = create_proof_with_context_and_randomness(&pk, &prover_ctx, &z, r, s);

    for backend in [StoreBackend::Auto, StoreBackend::Buffered] {
        let store = KeyStore::open_with(&path, backend).unwrap();
        for budget_bytes in [1usize, 64 * 257, 1 << 22] {
            let proof = create_proof_streamed(
                &store,
                &prover_ctx,
                &z,
                r,
                s,
                MemoryBudget::from_bytes(budget_bytes),
            )
            .unwrap();
            assert_eq!(
                proof, expected,
                "streamed proof differs at budget {budget_bytes}"
            );
        }
        // and the streamed proof verifies against the store's own vk
        let inputs = [Fr::from_u64(3 * 3 * 3 + 3 + 5)];
        verify_proof(&store.verifying_key().unwrap(), &expected, &inputs).unwrap();
    }
}

#[test]
fn corrupted_segments_yield_errors_never_wrong_proofs() {
    let shape = Cubic {
        x: None,
        padding: 4,
    };
    let ctx = SetupContext::for_circuit(&shape).unwrap();
    let pk = ctx.generate_with(&fixed_toxic());
    let path = temp_path("corrupt-src.zkst");
    write_proving_key(&path, &pk, None).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    let mut cs = ProvingSynthesizer::<Fr>::new();
    Cubic {
        x: Some(3),
        padding: 4,
    }
    .synthesize(&mut cs)
    .unwrap();
    let z = cs.full_assignment();
    let prover_ctx = ctx.into_prover_context();
    let (r, s) = (Fr::from_u64(91), Fr::from_u64(92));

    // flip one byte in the middle of every proof-consumed segment: the
    // streamed prover must error (decode failure or checksum mismatch) —
    // it must never return Ok
    let corrupt_path = temp_path("corrupt.zkst");
    let store = KeyStore::open(&path).unwrap();
    let offsets: Vec<u64> = [
        segment_kind::A_QUERY,
        segment_kind::B_G1_QUERY,
        segment_kind::B_G2_QUERY,
        segment_kind::H_QUERY,
        segment_kind::L_QUERY,
        segment_kind::CONSTANTS,
    ]
    .iter()
    .map(|&kind| {
        let entry = store.file().require(kind).unwrap();
        entry.offset + entry.len / 2
    })
    .collect();
    drop(store);

    for off in offsets {
        let mut corrupt = pristine.clone();
        corrupt[off as usize] ^= 0x01;
        std::fs::write(&corrupt_path, &corrupt).unwrap();
        let store = KeyStore::open(&corrupt_path).unwrap();
        let result = create_proof_streamed(
            &store,
            &prover_ctx,
            &z,
            r,
            s,
            MemoryBudget::from_bytes(1 << 20),
        );
        assert!(
            result.is_err(),
            "corruption at byte {off} produced a proof instead of an error"
        );
    }
}
