//! Property and corruption tests for the `.zkst` container format.
//!
//! Two claims are pinned here: arbitrary segment sets round-trip exactly
//! through [`StoreWriter`] → [`StoreFile`], and **every single byte** of a
//! store file — header, payloads, table, footer — is covered by some
//! integrity check, so no one-byte flip can go undetected.

use std::path::PathBuf;

use proptest::prelude::*;
use zkrownn_store::{StoreBackend, StoreFile, StoreWriter};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zkst-format-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Writes `segments` as `(kind, count, payload)` triples and returns the
/// finished file's bytes.
fn write_store(path: &PathBuf, segments: &[(u32, u64, Vec<u8>)]) -> Vec<u8> {
    let mut w = StoreWriter::create(path).unwrap();
    for (kind, count, payload) in segments {
        w.begin_segment(*kind, *count);
        // split each payload across multiple write calls to exercise the
        // streaming hasher
        for piece in payload.chunks(7.max(payload.len() / 3)) {
            w.write(piece).unwrap();
        }
        w.end_segment();
    }
    w.finish().unwrap();
    std::fs::read(path).unwrap()
}

fn arb_segments() -> impl Strategy<Value = Vec<(u32, u64, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..200)),
        0..8,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            // index-derived kinds keep lookups unambiguous
            .map(|(i, (count, payload))| (i as u32 + 1, count, payload))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever segments go in come back out: same table metadata, same
    /// payload bytes, on both read backends.
    #[test]
    fn segments_round_trip_exactly(segments in arb_segments()) {
        let path = temp_path("roundtrip.zkst");
        write_store(&path, &segments);
        for backend in [StoreBackend::Auto, StoreBackend::Buffered] {
            let file = StoreFile::open_with(&path, backend).unwrap();
            prop_assert_eq!(file.segments().len(), segments.len());
            for (entry, (kind, count, payload)) in file.segments().iter().zip(&segments) {
                prop_assert_eq!(entry.kind, *kind);
                prop_assert_eq!(entry.count, *count);
                prop_assert_eq!(entry.len, payload.len() as u64);
                prop_assert_eq!(&file.read_segment(entry).unwrap(), payload);
            }
            file.verify_integrity().unwrap();
        }
    }
}

/// Flipping any single byte anywhere in a store file — header, segment
/// payloads, segment table, footer — must be detected at open or at
/// integrity verification. There is no unprotected byte.
#[test]
fn every_single_byte_flip_is_detected() {
    let path = temp_path("flip.zkst");
    let segments = vec![
        (1u32, 3u64, vec![0xAAu8; 48]),
        (2, 0, Vec::new()), // empty segment: table row with no payload
        (7, 5, (0..=91u8).collect::<Vec<u8>>()),
    ];
    let pristine = write_store(&path, &segments);
    StoreFile::open(&path).unwrap().verify_integrity().unwrap();

    let flip_path = temp_path("flipped.zkst");
    for i in 0..pristine.len() {
        for mask in [0x01u8, 0x80] {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= mask;
            std::fs::write(&flip_path, &corrupt).unwrap();
            let detected = match StoreFile::open(&flip_path) {
                Err(_) => true,
                Ok(file) => file.verify_integrity().is_err(),
            };
            assert!(detected, "flip {mask:#04x} at byte {i} went undetected");
        }
    }

    // truncation at every length is also detected
    for keep in 0..pristine.len() {
        std::fs::write(&flip_path, &pristine[..keep]).unwrap();
        assert!(
            StoreFile::open(&flip_path).is_err(),
            "truncation to {keep} bytes went undetected"
        );
    }
}
