//! # zkrownn-gadgets — mode-aware R1CS gadgets for watermark extraction
//!
//! The circuit building blocks of Algorithm 1, each usable standalone (as
//! benchmarked in the paper's Table I) or composed into the end-to-end
//! extraction circuits:
//!
//! | Paper circuit | Module |
//! |---------------|--------|
//! | MatMult | [`matmul`] |
//! | Conv3D | [`conv`] |
//! | ReLU | [`relu`] |
//! | Average2D | [`average`] |
//! | Sigmoid (degree-9 Chebyshev) | [`sigmoid`] |
//! | HardThresholding | [`threshold`] |
//! | BER | [`ber`] |
//! | (extension) MaxPool | [`maxpool`] |
//!
//! Every gadget is generic over the synthesis driver (`CS:
//! ConstraintSystem<Fr>` from `zkrownn-r1cs`), so one gadget definition
//! serves trusted setup (shape only — no witness value is ever computed),
//! proving (dense assignment) and constraint counting. Assignment values
//! ride along as `Option`s inside [`Num`]/[`Bit`]: a witnessing driver
//! fills them in at allocation, a setup-mode driver leaves them `None`,
//! and every derived witness (quotients, decomposition bits, comparison
//! flags) is computed inside a value closure the setup driver never calls.
//!
//! Real values use binary fixed point ([`fixed`]); every non-linear step
//! (comparison, truncation) reduces to bit decomposition ([`bits`],
//! [`cmp`]). Each gadget ships with a plain-integer reference function with
//! identical semantics, so the in-circuit pipeline can be validated
//! bit-for-bit against an out-of-circuit implementation.
//!
//! ```
//! use zkrownn_gadgets::{num::Num, relu::relu};
//! use zkrownn_r1cs::{ProvingSynthesizer, SetupSynthesizer};
//! use zkrownn_ff::{Fr, PrimeField};
//!
//! // proving mode: values flow with the structure
//! let mut cs = ProvingSynthesizer::<Fr>::new();
//! let x = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(-7)), 8)?;
//! let y = relu(&x, &mut cs)?;
//! assert_eq!(y.value_i128(), 0);
//! assert!(cs.is_satisfied().is_ok());
//!
//! // setup mode: same structure, and the value closure is never evaluated
//! let mut setup = SetupSynthesizer::<Fr>::new();
//! let x = Num::alloc_witness(&mut setup, || unreachable!("no witness at setup"), 8)?;
//! let y = relu(&x, &mut setup)?;
//! assert_eq!(y.value, None);
//! assert_eq!(setup.num_constraints(), cs.num_constraints());
//! # Ok::<(), zkrownn_r1cs::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod average;
pub mod ber;
pub mod bits;
pub mod cmp;
pub mod conv;
pub mod fixed;
pub mod matmul;
pub mod maxpool;
pub mod num;
pub mod relu;
pub mod sigmoid;
pub mod threshold;

pub use bits::Bit;
pub use fixed::FixedConfig;
pub use num::Num;
