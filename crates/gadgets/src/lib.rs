//! # zkrownn-gadgets — R1CS gadgets for watermark extraction
//!
//! The circuit building blocks of Algorithm 1, each usable standalone (as
//! benchmarked in the paper's Table I) or composed into the end-to-end
//! extraction circuits:
//!
//! | Paper circuit | Module |
//! |---------------|--------|
//! | MatMult | [`matmul`] |
//! | Conv3D | [`conv`] |
//! | ReLU | [`relu`] |
//! | Average2D | [`average`] |
//! | Sigmoid (degree-9 Chebyshev) | [`sigmoid`] |
//! | HardThresholding | [`threshold`] |
//! | BER | [`ber`] |
//! | (extension) MaxPool | [`maxpool`] |
//!
//! Real values use binary fixed point ([`fixed`]); every non-linear step
//! (comparison, truncation) reduces to bit decomposition ([`bits`],
//! [`cmp`]). Each gadget ships with a plain-integer reference function with
//! identical semantics, so the in-circuit pipeline can be validated
//! bit-for-bit against an out-of-circuit implementation.
//!
//! ```
//! use zkrownn_gadgets::{num::Num, relu::relu};
//! use zkrownn_r1cs::ConstraintSystem;
//! use zkrownn_ff::{Fr, PrimeField};
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let x = Num::alloc_witness(&mut cs, Fr::from_i128(-7), 8);
//! let y = relu(&x, &mut cs);
//! assert_eq!(y.value_i128(), 0);
//! assert!(cs.is_satisfied().is_ok());
//! ```

#![warn(missing_docs)]

pub mod average;
pub mod ber;
pub mod bits;
pub mod cmp;
pub mod conv;
pub mod fixed;
pub mod matmul;
pub mod maxpool;
pub mod num;
pub mod relu;
pub mod sigmoid;
pub mod threshold;

pub use bits::Bit;
pub use fixed::FixedConfig;
pub use num::Num;
