//! Zero-knowledge hard thresholding: `f(x) = 1 if x ≥ β else 0` (§III-B.4).
//!
//! Applied to the sigmoid outputs with `β = 0.5` to binarize the extracted
//! watermark.

use crate::bits::Bit;
use crate::cmp::is_negative;
use crate::num::Num;
use zkrownn_ff::Fr;
use zkrownn_r1cs::ConstraintSystem;

/// `x ≥ β` as a circuit bit (`β` is a circuit constant).
pub fn hard_threshold(x: &Num, beta: Fr, cs: &mut ConstraintSystem<Fr>) -> Bit {
    let diff = x.sub(&Num::constant(beta));
    let mut diff = diff;
    diff.bits = x.bits + 1;
    is_negative(&diff, cs).not()
}

/// Element-wise hard thresholding; the outputs concatenate to the extracted
/// watermark bits.
pub fn hard_threshold_vec(xs: &[Num], beta: Fr, cs: &mut ConstraintSystem<Fr>) -> Vec<Bit> {
    xs.iter().map(|x| hard_threshold(x, beta, cs)).collect()
}

/// The standalone Table I circuit: private inputs, public 0/1 outputs.
pub fn threshold_circuit(
    inputs: &[i128],
    beta: i128,
    bits: u32,
    cs: &mut ConstraintSystem<Fr>,
) -> Vec<bool> {
    use zkrownn_ff::PrimeField;
    let nums: Vec<Num> = inputs
        .iter()
        .map(|&v| Num::alloc_witness(cs, Fr::from_i128(v), bits))
        .collect();
    let outs = hard_threshold_vec(&nums, Fr::from_i128(beta), cs);
    outs.iter()
        .map(|b| {
            b.num.expose_as_output(cs);
            b.value()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::PrimeField;

    #[test]
    fn threshold_matches_reference() {
        let beta = 50i128;
        for v in [-100i128, 0, 49, 50, 51, 1000] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = Num::alloc_witness(&mut cs, Fr::from_i128(v), 12);
            let b = hard_threshold(&x, Fr::from_i128(beta), &mut cs);
            assert_eq!(b.value(), v >= beta, "v = {v}");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn vector_threshold_binarizes() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let outs = threshold_circuit(&[10, 20, 30, 40], 25, 8, &mut cs);
        assert_eq!(outs, vec![false, false, true, true]);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn negative_threshold_works() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let outs = threshold_circuit(&[-10, -2, 0], -5, 8, &mut cs);
        assert_eq!(outs, vec![false, true, true]);
        assert!(cs.is_satisfied().is_ok());
    }
}
