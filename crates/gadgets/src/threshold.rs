//! Zero-knowledge hard thresholding: `f(x) = 1 if x ≥ β else 0` (§III-B.4).
//!
//! Applied to the sigmoid outputs with `β = 0.5` to binarize the extracted
//! watermark.

use crate::bits::Bit;
use crate::cmp::is_negative;
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// `x ≥ β` as a circuit bit (`β` is a circuit constant).
pub fn hard_threshold<CS: ConstraintSystem<Fr>>(
    x: &Num,
    beta: Fr,
    cs: &mut CS,
) -> Result<Bit, SynthesisError> {
    let mut diff = x.sub(&Num::constant(beta));
    diff.bits = x.bits + 1;
    Ok(is_negative(&diff, cs)?.not())
}

/// Element-wise hard thresholding; the outputs concatenate to the extracted
/// watermark bits.
pub fn hard_threshold_vec<CS: ConstraintSystem<Fr>>(
    xs: &[Num],
    beta: Fr,
    cs: &mut CS,
) -> Result<Vec<Bit>, SynthesisError> {
    xs.iter().map(|x| hard_threshold(x, beta, cs)).collect()
}

/// The standalone Table I circuit: private inputs, public 0/1 outputs.
/// Returns the reference verdicts (computed out of circuit, so the helper
/// works under every driver).
pub fn threshold_circuit<CS: ConstraintSystem<Fr>>(
    inputs: &[i128],
    beta: i128,
    bits: u32,
    cs: &mut CS,
) -> Result<Vec<bool>, SynthesisError> {
    use zkrownn_ff::PrimeField;
    let nums: Vec<Num> = inputs
        .iter()
        .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits))
        .collect::<Result<_, _>>()?;
    let outs = hard_threshold_vec(&nums, Fr::from_i128(beta), cs)?;
    for b in &outs {
        b.num.expose_as_output(cs)?;
    }
    Ok(inputs.iter().map(|&v| v >= beta).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::PrimeField;
    use zkrownn_r1cs::ProvingSynthesizer;

    #[test]
    fn threshold_matches_reference() {
        let beta = 50i128;
        for v in [-100i128, 0, 49, 50, 51, 1000] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let x = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(v)), 12).unwrap();
            let b = hard_threshold(&x, Fr::from_i128(beta), &mut cs).unwrap();
            assert_eq!(b.value(), Some(v >= beta), "v = {v}");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn vector_threshold_binarizes() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let outs = threshold_circuit(&[10, 20, 30, 40], 25, 8, &mut cs).unwrap();
        assert_eq!(outs, vec![false, false, true, true]);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn negative_threshold_works() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let outs = threshold_circuit(&[-10, -2, 0], -5, 8, &mut cs).unwrap();
        assert_eq!(outs, vec![false, true, true]);
        assert!(cs.is_satisfied().is_ok());
    }
}
