//! Zero-knowledge sigmoid via the degree-9 Chebyshev approximation
//! (§III-B.3 of the paper, coefficients from Wan et al., zk-AuthFeed):
//!
//! ```text
//! S(x) ≈ 0.5 + 0.2159198015·x − 0.0082176259·x³ + 0.0001825597·x⁵
//!            − 0.0000018848·x⁷ + 0.0000000072·x⁹
//! ```
//!
//! Evaluated in fixed point at `sigmoid_frac_bits` (default 32 — the
//! smallest scale at which the x⁹ coefficient survives rounding), with a
//! truncation after every multiplication, then rescaled to the tensor
//! scale. The approximation is intended for inputs roughly in `[-8, 8]`,
//! which DeepSigns projections satisfy after training.

use crate::cmp::truncate;
use crate::fixed::{encode_fixed, floor_div_pow2, FixedConfig};
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// The five odd Chebyshev coefficients `c1, c3, c5, c7, c9`.
pub const SIGMOID_COEFFS: [f64; 5] = [
    0.2159198015,
    -0.0082176259,
    0.0001825597,
    -0.0000018848,
    0.0000000072,
];

/// Assumed integer-part bound on sigmoid inputs: `|x| < 2^7 = 128`. The
/// Chebyshev fit is only meaningful on roughly `[-8, 8]`, so this is
/// generous; it keeps the Horner chain's tracked magnitudes within
/// [`MAX_BITS`](crate::num::MAX_BITS). Inputs outside the bound make the
/// prover's decomposition witnesses unsatisfiable (caught at proving time).
pub const SIGMOID_INPUT_INT_BITS: u32 = 7;

/// Sigmoid on a value at scale `cfg.frac_bits`; returns a value at the same
/// scale in `[0, 1]` (approximately).
pub fn sigmoid<CS: ConstraintSystem<Fr>>(
    x: &Num,
    cfg: &FixedConfig,
    cs: &mut CS,
) -> Result<Num, SynthesisError> {
    let s = cfg.sigmoid_frac_bits;
    let f = cfg.frac_bits;
    assert!(s >= f, "sigmoid scale must be at least the tensor scale");
    // lift x to scale s (free)
    let mut xs = x.shl(s - f);
    // tighten the tracked bound to the documented input range; the range
    // checks inside the truncation gadgets enforce it on the witness
    xs.bits = xs.bits.min(SIGMOID_INPUT_INT_BITS + s);
    // x² at scale s
    let x2 = truncate(&xs.mul(&xs, cs)?, s, cs)?;
    // Horner over x²: acc = c9; acc = acc·x² + c_k …
    let mut acc = Num::constant(Fr::from_i128(encode_fixed(SIGMOID_COEFFS[4], s)));
    for k in (0..4).rev() {
        let prod = truncate(&acc.mul(&x2, cs)?, s, cs)?;
        acc = prod.add(&Num::constant(Fr::from_i128(encode_fixed(
            SIGMOID_COEFFS[k],
            s,
        ))));
    }
    // odd part: acc·x, plus the 0.5 offset
    let odd = truncate(&acc.mul(&xs, cs)?, s, cs)?;
    let out_s = odd.add(&Num::constant(Fr::from_i128(1i128 << (s - 1))));
    // Back to the tensor scale. The tracked bound stays as computed by the
    // truncation: for inputs beyond the Chebyshev fit range the polynomial
    // diverges (sign-correctly — the x⁹ term dominates), so the output can
    // be far outside (0, 1) and the honest bound matters for the
    // downstream thresholding gadget.
    truncate(&out_s, s - f, cs)
}

/// Element-wise sigmoid.
pub fn sigmoid_vec<CS: ConstraintSystem<Fr>>(
    xs: &[Num],
    cfg: &FixedConfig,
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    xs.iter().map(|x| sigmoid(x, cfg, cs)).collect()
}

/// Reference fixed-point sigmoid with *identical* integer semantics to the
/// circuit (used to cross-check witnesses and by the plain extraction
/// pipeline so that in-circuit and out-of-circuit BER agree bit-for-bit).
pub fn sigmoid_fixed_reference(x: i128, cfg: &FixedConfig) -> i128 {
    let s = cfg.sigmoid_frac_bits;
    let f = cfg.frac_bits;
    let xs = x << (s - f);
    let x2 = floor_div_pow2(xs * xs, s);
    let mut acc = encode_fixed(SIGMOID_COEFFS[4], s);
    for k in (0..4).rev() {
        acc = floor_div_pow2(acc * x2, s) + encode_fixed(SIGMOID_COEFFS[k], s);
    }
    let odd = floor_div_pow2(acc * xs, s);
    floor_div_pow2(odd + (1i128 << (s - 1)), s - f)
}

/// `f64` reference sigmoid polynomial (accuracy yardstick in tests).
pub fn sigmoid_poly_f64(x: f64) -> f64 {
    let x2 = x * x;
    let mut acc = SIGMOID_COEFFS[4];
    for k in (0..4).rev() {
        acc = acc * x2 + SIGMOID_COEFFS[k];
    }
    0.5 + acc * x
}

/// The true sigmoid, for approximation-error measurements.
/// (`std`-only: `f64::exp` needs the platform math library.)
#[cfg(feature = "std")]
pub fn sigmoid_exact_f64(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_r1cs::ProvingSynthesizer;

    #[test]
    fn circuit_matches_fixed_reference() {
        let cfg = FixedConfig::default();
        for x in [-4.0f64, -1.5, -0.25, 0.0, 0.25, 1.5, 4.0] {
            let xi = cfg.encode(x);
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let num =
                Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(xi)), cfg.value_bits()).unwrap();
            let out = sigmoid(&num, &cfg, &mut cs).unwrap();
            assert_eq!(
                out.value_i128(),
                sigmoid_fixed_reference(xi, &cfg),
                "x = {x}"
            );
            assert!(cs.is_satisfied().is_ok(), "x = {x}");
        }
    }

    #[test]
    fn fixed_reference_tracks_f64_polynomial() {
        // Floor-truncation error after each Horner step is amplified by the
        // following ·x² multiplications, so the tolerance widens with |x|.
        let cfg = FixedConfig::default();
        for i in -32..=32i32 {
            let x = i as f64 / 4.0; // [-8, 8]
            let xi = cfg.encode(x);
            let got = cfg.decode(sigmoid_fixed_reference(xi, &cfg));
            let want = sigmoid_poly_f64(x);
            let tol = if x.abs() <= 2.0 { 2e-4 } else { 6e-3 };
            assert!(
                (got - want).abs() < tol,
                "x = {x}: fixed {got} vs f64 {want}"
            );
        }
    }

    #[test]
    fn polynomial_approximates_true_sigmoid_near_origin() {
        // The Chebyshev fit is good on roughly [-4, 4]
        for i in -16..=16 {
            let x = i as f64 / 4.0;
            let err = (sigmoid_poly_f64(x) - sigmoid_exact_f64(x)).abs();
            assert!(err < 0.03, "x = {x}, err = {err}");
        }
    }

    #[test]
    fn sigmoid_of_zero_is_half() {
        let cfg = FixedConfig::default();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(0)), cfg.value_bits()).unwrap();
        let out = sigmoid(&num, &cfg, &mut cs).unwrap();
        assert_eq!(out.value_i128(), 1i128 << (cfg.frac_bits - 1));
    }

    #[test]
    fn monotone_on_samples() {
        let cfg = FixedConfig::default();
        let mut prev = i128::MIN;
        for i in -12..=12 {
            let x = cfg.encode(i as f64 / 3.0);
            let y = sigmoid_fixed_reference(x, &cfg);
            assert!(y >= prev, "sigmoid should be monotone on [-4,4]");
            prev = y;
        }
    }
}
