//! Zero-knowledge bit error rate (§III-B.5).
//!
//! Compares the extracted watermark against the owner's private signature
//! bit-by-bit (XOR), counts mismatches, and outputs 1 iff the count is at
//! most the public threshold `θ·N`.

use crate::bits::Bit;
use crate::cmp::is_negative;
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::{Field, Fr};
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// Counts mismatching bit positions (one XOR constraint per position).
pub fn bit_errors<CS: ConstraintSystem<Fr>>(
    a: &[Bit],
    b: &[Bit],
    cs: &mut CS,
) -> Result<Num, SynthesisError> {
    assert_eq!(a.len(), b.len(), "signature length mismatch");
    let mut sum = Num::zero();
    for (x, y) in a.iter().zip(b.iter()) {
        sum = sum.add(&x.xor(y, cs)?.num);
    }
    sum.bits = usize::BITS - a.len().leading_zeros() + 1;
    Ok(sum)
}

/// `1` iff the number of bit errors is ≤ `max_errors` (i.e. BER ≤ θ).
pub fn ber_check<CS: ConstraintSystem<Fr>>(
    wm: &[Bit],
    extracted: &[Bit],
    max_errors: u64,
    cs: &mut CS,
) -> Result<Bit, SynthesisError> {
    let errors = bit_errors(wm, extracted, cs)?;
    // errors − max_errors − 1 < 0  ⟺  errors ≤ max_errors
    let mut diff = errors.sub(&Num::constant(Fr::from_u64(max_errors + 1)));
    diff.bits = errors.bits + 1;
    is_negative(&diff, cs)
}

/// The standalone Table I "BER" circuit: two private bit strings, a public
/// 0/1 verdict. Returns the reference verdict (computed out of circuit, so
/// the helper works under every driver).
pub fn ber_circuit<CS: ConstraintSystem<Fr>>(
    wm: &[bool],
    extracted: &[bool],
    max_errors: u64,
    cs: &mut CS,
) -> Result<bool, SynthesisError> {
    let wm_bits: Vec<Bit> = wm
        .iter()
        .map(|&b| Bit::alloc(cs, || Ok(b)))
        .collect::<Result<_, _>>()?;
    let ex_bits: Vec<Bit> = extracted
        .iter()
        .map(|&b| Bit::alloc(cs, || Ok(b)))
        .collect::<Result<_, _>>()?;
    let ok = ber_check(&wm_bits, &ex_bits, max_errors, cs)?;
    ok.num.expose_as_output(cs)?;
    Ok(ber_reference(wm, extracted) as u64 <= max_errors)
}

/// Reference BER computation.
pub fn ber_reference(wm: &[bool], extracted: &[bool]) -> usize {
    wm.iter()
        .zip(extracted.iter())
        .filter(|(a, b)| a != b)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use zkrownn_r1cs::ProvingSynthesizer;

    #[test]
    fn exact_match_passes_zero_threshold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(171);
        let wm: Vec<bool> = (0..32).map(|_| rng.gen()).collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        assert!(ber_circuit(&wm, &wm, 0, &mut cs).unwrap());
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn single_flip_fails_zero_threshold_but_passes_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(172);
        let wm: Vec<bool> = (0..32).map(|_| rng.gen()).collect();
        let mut flipped = wm.clone();
        flipped[17] = !flipped[17];
        let mut cs = ProvingSynthesizer::<Fr>::new();
        assert!(!ber_circuit(&wm, &flipped, 0, &mut cs).unwrap());
        assert!(cs.is_satisfied().is_ok());
        let mut cs2 = ProvingSynthesizer::<Fr>::new();
        assert!(ber_circuit(&wm, &flipped, 1, &mut cs2).unwrap());
        assert!(cs2.is_satisfied().is_ok());
    }

    #[test]
    fn error_count_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(173);
        for _ in 0..5 {
            let a: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
            let b: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let ab: Vec<Bit> = a
                .iter()
                .map(|&v| Bit::alloc(&mut cs, || Ok(v)).unwrap())
                .collect();
            let bb: Vec<Bit> = b
                .iter()
                .map(|&v| Bit::alloc(&mut cs, || Ok(v)).unwrap())
                .collect();
            let errs = bit_errors(&ab, &bb, &mut cs).unwrap();
            assert_eq!(errs.value_i128() as usize, ber_reference(&a, &b));
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn threshold_boundary_inclusive() {
        // exactly max_errors mismatches → accept
        let wm = vec![false; 16];
        let mut ex = vec![false; 16];
        ex[0] = true;
        ex[1] = true;
        let mut cs = ProvingSynthesizer::<Fr>::new();
        assert!(ber_circuit(&wm, &ex, 2, &mut cs).unwrap());
        let mut cs2 = ProvingSynthesizer::<Fr>::new();
        assert!(!ber_circuit(&wm, &ex, 1, &mut cs2).unwrap());
    }
}
