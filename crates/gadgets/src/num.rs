//! `Num` — a signed fixed-point value inside the circuit.
//!
//! A `Num` carries a linear combination over circuit variables, the value it
//! evaluates to under the current assignment, and a conservative bound
//! `|value| < 2^bits` that downstream gadgets (comparisons, truncations) use
//! to size their bit decompositions. Linear operations are free (pure LC
//! manipulation); multiplication allocates one witness and one constraint.

use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_r1cs::{ConstraintSystem, LinearCombination, Variable};

/// Maximum tracked magnitude (in bits) before gadgets refuse to continue.
/// Keeps every intermediate far below the ~254-bit field and within the
/// `i128` range used by witness computation helpers.
pub const MAX_BITS: u32 = 120;

/// A signed value in the circuit with magnitude bound `|v| < 2^bits`.
#[derive(Clone, Debug)]
pub struct Num {
    /// Symbolic linear combination.
    pub lc: LinearCombination<Fr>,
    /// Assignment value.
    pub value: Fr,
    /// Conservative magnitude bound: `|value| < 2^bits` as a signed integer.
    pub bits: u32,
}

impl Num {
    /// Allocates a fresh private witness.
    pub fn alloc_witness(cs: &mut ConstraintSystem<Fr>, value: Fr, bits: u32) -> Self {
        assert!(bits <= MAX_BITS, "witness bound {bits} exceeds MAX_BITS");
        let var = cs.alloc_witness(value);
        Self {
            lc: var.into(),
            value,
            bits,
        }
    }

    /// Allocates a fresh public input.
    pub fn alloc_instance(cs: &mut ConstraintSystem<Fr>, value: Fr, bits: u32) -> Self {
        assert!(bits <= MAX_BITS, "instance bound {bits} exceeds MAX_BITS");
        let var = cs.alloc_instance(value);
        Self {
            lc: var.into(),
            value,
            bits,
        }
    }

    /// A circuit constant.
    pub fn constant(value: Fr) -> Self {
        let bits = value
            .to_i128()
            .map(|v| 128 - v.unsigned_abs().leading_zeros())
            .unwrap_or(MAX_BITS);
        Self {
            lc: LinearCombination::constant(value),
            value,
            bits: bits.min(MAX_BITS),
        }
    }

    /// The constant zero.
    pub fn zero() -> Self {
        Self {
            lc: LinearCombination::zero(),
            value: Fr::zero(),
            bits: 0,
        }
    }

    /// The signed integer value (panics if out of `i128` range — prevented
    /// by the `MAX_BITS` discipline).
    pub fn value_i128(&self) -> i128 {
        self.value
            .to_i128()
            .expect("Num value exceeded i128 range; bounds tracking violated")
    }

    /// Addition (free).
    pub fn add(&self, other: &Self) -> Self {
        Self {
            lc: self.lc.clone() + other.lc.clone(),
            value: self.value + other.value,
            bits: (self.bits.max(other.bits) + 1).min(MAX_BITS + 1),
        }
    }

    /// Subtraction (free).
    pub fn sub(&self, other: &Self) -> Self {
        Self {
            lc: self.lc.clone() - other.lc.clone(),
            value: self.value - other.value,
            bits: (self.bits.max(other.bits) + 1).min(MAX_BITS + 1),
        }
    }

    /// Multiplication by a constant (free). `const_bits` must bound the
    /// constant's magnitude.
    pub fn mul_constant(&self, c: Fr, const_bits: u32) -> Self {
        Self {
            lc: self.lc.clone().scale(c),
            value: self.value * c,
            bits: (self.bits + const_bits).min(MAX_BITS + 1),
        }
    }

    /// Multiplication by a power of two (free, exact bound bookkeeping).
    pub fn shl(&self, k: u32) -> Self {
        let c = Fr::from_u128(1u128 << k.min(127));
        Self {
            lc: self.lc.clone().scale(c),
            value: self.value * c,
            bits: self.bits + k,
        }
    }

    /// Multiplication (allocates the product and one constraint).
    pub fn mul(&self, other: &Self, cs: &mut ConstraintSystem<Fr>) -> Self {
        let bits = self.bits + other.bits;
        assert!(
            bits <= MAX_BITS,
            "product bound {bits} exceeds MAX_BITS — truncate earlier"
        );
        let value = self.value * other.value;
        let var = cs.alloc_witness(value);
        cs.enforce(self.lc.clone(), other.lc.clone(), var.into());
        Self {
            lc: var.into(),
            value,
            bits,
        }
    }

    /// Enforces `self == other` (one linear constraint).
    pub fn enforce_equal(&self, other: &Self, cs: &mut ConstraintSystem<Fr>) {
        cs.enforce(
            self.lc.clone() - other.lc.clone(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
    }

    /// Exposes the value as a public output: allocates an instance variable
    /// carrying the same value and constrains it equal (one constraint).
    pub fn expose_as_output(&self, cs: &mut ConstraintSystem<Fr>) -> Variable {
        let var = cs.alloc_instance(self.value);
        cs.enforce(
            self.lc.clone(),
            LinearCombination::constant(Fr::one()),
            var.into(),
        );
        var
    }

    /// Sum of many values with a *tight* magnitude bound
    /// (`max(bits) + ⌈log₂ n⌉` instead of `max(bits) + n` from chained
    /// [`Num::add`]). Free — pure linear-combination concatenation.
    pub fn sum(terms: &[Self]) -> Self {
        if terms.is_empty() {
            return Self::zero();
        }
        let mut lc = zkrownn_r1cs::LinearCombination::zero();
        let mut value = Fr::zero();
        let mut max_bits = 0u32;
        for t in terms {
            lc = lc + t.lc.clone();
            value += t.value;
            max_bits = max_bits.max(t.bits);
        }
        let log_n = usize::BITS - (terms.len() - 1).leading_zeros();
        Self {
            lc,
            value,
            bits: (max_bits + log_n).min(MAX_BITS + 1),
        }
    }

    /// Inner product `Σ aᵢ·bᵢ` (one constraint per term).
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    pub fn inner_product(a: &[Self], b: &[Self], cs: &mut ConstraintSystem<Fr>) -> Self {
        assert_eq!(a.len(), b.len(), "inner product arity mismatch");
        assert!(!a.is_empty(), "empty inner product");
        let mut acc = Num::zero();
        for (x, y) in a.iter().zip(b.iter()) {
            acc = acc.add(&x.mul(y, cs));
        }
        // tighten the bound: sum of n products each < 2^(ba+bb)
        let term_bits = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.bits + y.bits)
            .max()
            .unwrap();
        let sum_bits = term_bits + (usize::BITS - a.len().leading_zeros());
        acc.bits = sum_bits.min(MAX_BITS + 1);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ops_are_constraint_free() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(5), 4);
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(7), 4);
        let c = a.add(&b).sub(&Num::constant(Fr::from_u64(2)));
        assert_eq!(c.value, Fr::from_u64(10));
        assert_eq!(cs.num_constraints(), 0);
    }

    #[test]
    fn mul_allocates_one_constraint() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_i128(-5), 4);
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(7), 4);
        let c = a.mul(&b, &mut cs);
        assert_eq!(c.value.to_i128(), Some(-35));
        assert_eq!(c.bits, 8);
        assert_eq!(cs.num_constraints(), 1);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn inner_product_value_and_count() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a: Vec<Num> = (1..=4)
            .map(|i| Num::alloc_witness(&mut cs, Fr::from_u64(i), 3))
            .collect();
        let b: Vec<Num> = (1..=4)
            .map(|i| Num::alloc_witness(&mut cs, Fr::from_u64(i + 1), 3))
            .collect();
        let ip = Num::inner_product(&a, &b, &mut cs);
        // 1·2 + 2·3 + 3·4 + 4·5 = 40
        assert_eq!(ip.value, Fr::from_u64(40));
        assert_eq!(cs.num_constraints(), 4);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn expose_as_output_adds_instance() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(9), 4);
        let before = cs.num_instance_variables();
        a.expose_as_output(&mut cs);
        assert_eq!(cs.num_instance_variables(), before + 1);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn enforce_equal_detects_mismatch() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(3), 3);
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(4), 3);
        a.enforce_equal(&b, &mut cs);
        assert!(cs.is_satisfied().is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_BITS")]
    fn oversized_product_panics() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_u64(1), 100);
        let b = Num::alloc_witness(&mut cs, Fr::from_u64(1), 100);
        let _ = a.mul(&b, &mut cs);
    }

    #[test]
    fn shl_scales_value_and_bits() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = Num::alloc_witness(&mut cs, Fr::from_i128(-3), 3);
        let b = a.shl(10);
        assert_eq!(b.value.to_i128(), Some(-3 << 10));
        assert_eq!(b.bits, 13);
    }
}
