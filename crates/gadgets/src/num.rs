//! `Num` — a signed fixed-point value inside the circuit.
//!
//! A `Num` carries a linear combination over circuit variables, the value it
//! evaluates to under the current assignment (when the driver is witnessing
//! — `None` under setup/counting synthesis), and a conservative bound
//! `|value| < 2^bits` that downstream gadgets (comparisons, truncations) use
//! to size their bit decompositions. Linear operations are free (pure LC
//! manipulation); multiplication allocates one witness and one constraint.
//!
//! The bound tracking is *structural*: it depends only on how a value was
//! built, never on the assignment, which is what keeps the synthesized
//! constraint shape identical across setup, proving and counting drivers.

use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_r1cs::{assignment, ConstraintSystem, LinearCombination, SynthesisError, Variable};

/// Maximum tracked magnitude (in bits) before gadgets refuse to continue.
/// Keeps every intermediate far below the ~254-bit field and within the
/// `i128` range used by witness computation helpers.
pub const MAX_BITS: u32 = 120;

/// A signed value in the circuit with magnitude bound `|v| < 2^bits`.
#[derive(Clone, Debug)]
pub struct Num {
    /// Symbolic linear combination.
    pub lc: LinearCombination<Fr>,
    /// Assignment value — `Some` under a witnessing driver, `None` under
    /// setup/counting synthesis (circuit constants are always `Some`).
    pub value: Option<Fr>,
    /// Conservative magnitude bound: `|value| < 2^bits` as a signed integer.
    pub bits: u32,
}

impl Num {
    /// Allocates a fresh private witness. `value` is only evaluated by
    /// witnessing drivers — setup synthesis never calls it.
    pub fn alloc_witness<CS: ConstraintSystem<Fr>>(
        cs: &mut CS,
        value: impl FnOnce() -> Result<Fr, SynthesisError>,
        bits: u32,
    ) -> Result<Self, SynthesisError> {
        assert!(bits <= MAX_BITS, "witness bound {bits} exceeds MAX_BITS");
        let mut evaluated = None;
        let var = cs.alloc_witness(|| {
            let v = value()?;
            evaluated = Some(v);
            Ok(v)
        })?;
        Ok(Self {
            lc: var.into(),
            value: evaluated,
            bits,
        })
    }

    /// Allocates a fresh public input (value closure evaluated only by
    /// witnessing drivers, like [`Num::alloc_witness`]).
    pub fn alloc_instance<CS: ConstraintSystem<Fr>>(
        cs: &mut CS,
        value: impl FnOnce() -> Result<Fr, SynthesisError>,
        bits: u32,
    ) -> Result<Self, SynthesisError> {
        assert!(bits <= MAX_BITS, "instance bound {bits} exceeds MAX_BITS");
        let mut evaluated = None;
        let var = cs.alloc_instance(|| {
            let v = value()?;
            evaluated = Some(v);
            Ok(v)
        })?;
        Ok(Self {
            lc: var.into(),
            value: evaluated,
            bits,
        })
    }

    /// A circuit constant (known in every synthesis mode).
    pub fn constant(value: Fr) -> Self {
        let bits = value
            .to_i128()
            .map(|v| 128 - v.unsigned_abs().leading_zeros())
            .unwrap_or(MAX_BITS);
        Self {
            lc: LinearCombination::constant(value),
            value: Some(value),
            bits: bits.min(MAX_BITS),
        }
    }

    /// The constant zero.
    pub fn zero() -> Self {
        Self {
            lc: LinearCombination::zero(),
            value: Some(Fr::zero()),
            bits: 0,
        }
    }

    /// The assignment value, or [`SynthesisError::AssignmentMissing`] under
    /// a non-witnessing driver — the building block for derived-witness
    /// closures.
    pub fn val(&self) -> Result<Fr, SynthesisError> {
        assignment(self.value)
    }

    /// The signed integer assignment value, as [`Num::val`] (panics only if
    /// the value exceeds `i128` — prevented by the `MAX_BITS` discipline).
    pub fn val_i128(&self) -> Result<i128, SynthesisError> {
        Ok(self
            .val()?
            .to_i128()
            .expect("Num value exceeded i128 range; bounds tracking violated"))
    }

    /// The signed integer value (panics when no assignment is present —
    /// only call on values produced by a witnessing synthesis).
    pub fn value_i128(&self) -> i128 {
        self.val_i128()
            .expect("Num has no assignment (setup/counting synthesis)")
    }

    /// Addition (free).
    pub fn add(&self, other: &Self) -> Self {
        Self {
            lc: self.lc.clone() + other.lc.clone(),
            value: self.value.zip(other.value).map(|(a, b)| a + b),
            bits: (self.bits.max(other.bits) + 1).min(MAX_BITS + 1),
        }
    }

    /// Subtraction (free).
    pub fn sub(&self, other: &Self) -> Self {
        Self {
            lc: self.lc.clone() - other.lc.clone(),
            value: self.value.zip(other.value).map(|(a, b)| a - b),
            bits: (self.bits.max(other.bits) + 1).min(MAX_BITS + 1),
        }
    }

    /// Multiplication by a constant (free). `const_bits` must bound the
    /// constant's magnitude.
    pub fn mul_constant(&self, c: Fr, const_bits: u32) -> Self {
        Self {
            lc: self.lc.clone().scale(c),
            value: self.value.map(|v| v * c),
            bits: (self.bits + const_bits).min(MAX_BITS + 1),
        }
    }

    /// Multiplication by a power of two (free, exact bound bookkeeping).
    pub fn shl(&self, k: u32) -> Self {
        let c = Fr::from_u128(1u128 << k.min(127));
        Self {
            lc: self.lc.clone().scale(c),
            value: self.value.map(|v| v * c),
            bits: self.bits + k,
        }
    }

    /// Multiplication (allocates the product and one constraint).
    pub fn mul<CS: ConstraintSystem<Fr>>(
        &self,
        other: &Self,
        cs: &mut CS,
    ) -> Result<Self, SynthesisError> {
        let bits = self.bits + other.bits;
        assert!(
            bits <= MAX_BITS,
            "product bound {bits} exceeds MAX_BITS — truncate earlier"
        );
        let value = self.value.zip(other.value).map(|(a, b)| a * b);
        let var = cs.alloc_witness(|| assignment(value))?;
        cs.enforce(self.lc.clone(), other.lc.clone(), var.into());
        Ok(Self {
            lc: var.into(),
            value,
            bits,
        })
    }

    /// Enforces `self == other` (one linear constraint).
    pub fn enforce_equal<CS: ConstraintSystem<Fr>>(&self, other: &Self, cs: &mut CS) {
        cs.enforce(
            self.lc.clone() - other.lc.clone(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
    }

    /// Exposes the value as a public output: allocates an instance variable
    /// carrying the same value and constrains it equal (one constraint).
    pub fn expose_as_output<CS: ConstraintSystem<Fr>>(
        &self,
        cs: &mut CS,
    ) -> Result<Variable, SynthesisError> {
        let value = self.value;
        let var = cs.alloc_instance(|| assignment(value))?;
        cs.enforce(
            self.lc.clone(),
            LinearCombination::constant(Fr::one()),
            var.into(),
        );
        Ok(var)
    }

    /// Sum of many values with a *tight* magnitude bound
    /// (`max(bits) + ⌈log₂ n⌉` instead of `max(bits) + n` from chained
    /// [`Num::add`]). Free — pure linear-combination concatenation.
    pub fn sum(terms: &[Self]) -> Self {
        if terms.is_empty() {
            return Self::zero();
        }
        let mut lc = LinearCombination::zero();
        let mut value = Some(Fr::zero());
        let mut max_bits = 0u32;
        for t in terms {
            lc = lc + t.lc.clone();
            value = value.zip(t.value).map(|(a, b)| a + b);
            max_bits = max_bits.max(t.bits);
        }
        let log_n = usize::BITS - (terms.len() - 1).leading_zeros();
        Self {
            lc,
            value,
            bits: (max_bits + log_n).min(MAX_BITS + 1),
        }
    }

    /// Inner product `Σ aᵢ·bᵢ` (one constraint per term).
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    pub fn inner_product<CS: ConstraintSystem<Fr>>(
        a: &[Self],
        b: &[Self],
        cs: &mut CS,
    ) -> Result<Self, SynthesisError> {
        assert_eq!(a.len(), b.len(), "inner product arity mismatch");
        assert!(!a.is_empty(), "empty inner product");
        let mut acc = Num::zero();
        for (x, y) in a.iter().zip(b.iter()) {
            acc = acc.add(&x.mul(y, cs)?);
        }
        // tighten the bound: sum of n products each < 2^(ba+bb)
        let term_bits = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.bits + y.bits)
            .max()
            .unwrap();
        let sum_bits = term_bits + (usize::BITS - a.len().leading_zeros());
        acc.bits = sum_bits.min(MAX_BITS + 1);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_r1cs::{ProvingSynthesizer, SetupSynthesizer};

    fn wit(cs: &mut ProvingSynthesizer<Fr>, v: i128, bits: u32) -> Num {
        Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits).unwrap()
    }

    #[test]
    fn linear_ops_are_constraint_free() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, 5, 4);
        let b = wit(&mut cs, 7, 4);
        let c = a.add(&b).sub(&Num::constant(Fr::from_u64(2)));
        assert_eq!(c.value, Some(Fr::from_u64(10)));
        assert_eq!(cs.num_constraints(), 0);
    }

    #[test]
    fn mul_allocates_one_constraint() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, -5, 4);
        let b = wit(&mut cs, 7, 4);
        let c = a.mul(&b, &mut cs).unwrap();
        assert_eq!(c.value_i128(), -35);
        assert_eq!(c.bits, 8);
        assert_eq!(cs.num_constraints(), 1);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn setup_mode_tracks_no_values_but_same_shape() {
        let mut setup = SetupSynthesizer::<Fr>::new();
        let a = Num::alloc_witness(&mut setup, || panic!("evaluated"), 4).unwrap();
        let b = Num::alloc_witness(&mut setup, || panic!("evaluated"), 4).unwrap();
        let c = a.mul(&b, &mut setup).unwrap();
        assert_eq!(c.value, None);
        assert_eq!(c.bits, 8);
        assert_eq!(setup.num_constraints(), 1);
        // and the derived-value accessors report the missing assignment
        assert_eq!(c.val(), Err(SynthesisError::AssignmentMissing));
    }

    #[test]
    fn inner_product_value_and_count() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a: Vec<Num> = (1..=4).map(|i| wit(&mut cs, i, 3)).collect();
        let b: Vec<Num> = (1..=4).map(|i| wit(&mut cs, i + 1, 3)).collect();
        let ip = Num::inner_product(&a, &b, &mut cs).unwrap();
        // 1·2 + 2·3 + 3·4 + 4·5 = 40
        assert_eq!(ip.value, Some(Fr::from_u64(40)));
        assert_eq!(cs.num_constraints(), 4);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn expose_as_output_adds_instance() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, 9, 4);
        let before = cs.num_instance_variables();
        a.expose_as_output(&mut cs).unwrap();
        assert_eq!(cs.num_instance_variables(), before + 1);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn enforce_equal_detects_mismatch() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, 3, 3);
        let b = wit(&mut cs, 4, 3);
        a.enforce_equal(&b, &mut cs);
        assert!(cs.is_satisfied().is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_BITS")]
    fn oversized_product_panics() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, 1, 100);
        let b = wit(&mut cs, 1, 100);
        let _ = a.mul(&b, &mut cs);
    }

    #[test]
    fn shl_scales_value_and_bits() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = wit(&mut cs, -3, 3);
        let b = a.shl(10);
        assert_eq!(b.value.and_then(|v| v.to_i128()), Some(-3 << 10));
        assert_eq!(b.bits, 13);
    }
}
