//! Zero-knowledge max pooling.
//!
//! Not one of the paper's seven benchmarked circuits, but required to push
//! the watermark past a pooling layer ("ZKROWNN still works when the
//! watermark is embedded in deeper layers, at the cost of higher prover
//! complexity" — §III-B.6). Each pairwise max costs one signed comparison
//! plus one multiplexer.

use crate::cmp::is_negative;
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// `max(a, b)` on signed values.
pub fn max<CS: ConstraintSystem<Fr>>(a: &Num, b: &Num, cs: &mut CS) -> Result<Num, SynthesisError> {
    let mut diff = a.sub(b);
    diff.bits = a.bits.max(b.bits) + 1;
    let a_lt_b = is_negative(&diff, cs)?;
    let mut out = a_lt_b.select(b, a, cs)?;
    out.bits = a.bits.max(b.bits);
    Ok(out)
}

/// `max` over a non-empty slice.
pub fn max_many<CS: ConstraintSystem<Fr>>(
    vals: &[Num],
    cs: &mut CS,
) -> Result<Num, SynthesisError> {
    assert!(!vals.is_empty(), "max of empty slice");
    let mut acc = vals[0].clone();
    for v in &vals[1..] {
        acc = max(&acc, v, cs)?;
    }
    Ok(acc)
}

/// 2-D max pooling over a channel-first `C×H×W` volume with a square
/// window. Matches [`maxpool2d_reference`] and the float layer in
/// `zkrownn-nn`.
#[allow(clippy::too_many_arguments)]
pub fn maxpool2d<CS: ConstraintSystem<Fr>>(
    input: &[Num],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    assert_eq!(
        input.len(),
        channels * height * width,
        "maxpool input shape"
    );
    let oh = (height - size) / stride + 1;
    let ow = (width - size) / stride + 1;
    let mut out = Vec::with_capacity(channels * oh * ow);
    for c in 0..channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut window = Vec::with_capacity(size * size);
                for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        window.push(input[(c * height + iy) * width + ix].clone());
                    }
                }
                out.push(max_many(&window, cs)?);
            }
        }
    }
    Ok(out)
}

/// Reference integer max pooling.
pub fn maxpool2d_reference(
    input: &[i128],
    channels: usize,
    height: usize,
    width: usize,
    size: usize,
    stride: usize,
) -> Vec<i128> {
    let oh = (height - size) / stride + 1;
    let ow = (width - size) / stride + 1;
    let mut out = Vec::with_capacity(channels * oh * ow);
    for c in 0..channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i128::MIN;
                for ky in 0..size {
                    for kx in 0..size {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        best = best.max(input[(c * height + iy) * width + ix]);
                    }
                }
                out.push(best);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::PrimeField;
    use zkrownn_r1cs::ProvingSynthesizer;

    fn wit(cs: &mut ProvingSynthesizer<Fr>, v: i128, bits: u32) -> Num {
        Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits).unwrap()
    }

    #[test]
    fn pairwise_max_on_samples() {
        for (a, b) in [(3i128, 5i128), (5, 3), (-2, -7), (0, 0), (-1, 1)] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let na = wit(&mut cs, a, 8);
            let nb = wit(&mut cs, b, 8);
            let m = max(&na, &nb, &mut cs).unwrap();
            assert_eq!(m.value_i128(), a.max(b), "({a}, {b})");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn max_many_matches_iterator_max() {
        let vals = [-4i128, 9, 0, 9, -100, 3];
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let nums: Vec<Num> = vals.iter().map(|&v| wit(&mut cs, v, 8)).collect();
        let m = max_many(&nums, &mut cs).unwrap();
        assert_eq!(m.value_i128(), 9);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn maxpool_circuit_matches_reference() {
        let (c, h, w) = (2usize, 4usize, 4usize);
        let input: Vec<i128> = (0..(c * h * w) as i128)
            .map(|i| (i * 7) % 23 - 11)
            .collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let nums: Vec<Num> = input.iter().map(|&v| wit(&mut cs, v, 8)).collect();
        let pooled = maxpool2d(&nums, c, h, w, 2, 2, &mut cs).unwrap();
        let reference = maxpool2d_reference(&input, c, h, w, 2, 2);
        assert_eq!(pooled.len(), reference.len());
        for (p, r) in pooled.iter().zip(&reference) {
            assert_eq!(p.value_i128(), *r);
        }
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn overlapping_stride_pooling() {
        // MP(2,1) as in the paper's CNN
        let input: Vec<i128> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let nums: Vec<Num> = input.iter().map(|&v| wit(&mut cs, v, 6)).collect();
        let pooled = maxpool2d(&nums, 1, 3, 3, 2, 1, &mut cs).unwrap();
        let vals: Vec<i128> = pooled.iter().map(|p| p.value_i128()).collect();
        assert_eq!(vals, vec![5, 6, 8, 9]);
        assert!(cs.is_satisfied().is_ok());
    }
}
