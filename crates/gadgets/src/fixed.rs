//! Fixed-point encoding of real numbers.
//!
//! zkSNARK circuits cannot do floating point natively; the paper scales
//! inputs "by several orders of magnitude" and truncates the result
//! (§III-B). We use
//! binary scaling: a real `x` is represented by the integer `⌊x·2^f⌉`
//! embedded in `Fr` as a signed value. Multiplication doubles the scale, so
//! products are followed by a truncation gadget that floor-divides by `2^f`.

use zkrownn_ff::{Fr, PrimeField};

/// Fixed-point configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FixedConfig {
    /// Number of fractional bits for tensor values (weights, activations).
    pub frac_bits: u32,
    /// Number of fractional bits inside the sigmoid evaluation (must be
    /// large enough to represent the 7.2e-9 Chebyshev coefficient).
    pub sigmoid_frac_bits: u32,
    /// Assumed bound on the *integer part* of any represented value:
    /// `|x| < 2^int_bits`. Used to size comparison decompositions.
    pub int_bits: u32,
}

impl Default for FixedConfig {
    fn default() -> Self {
        Self {
            frac_bits: 16,
            sigmoid_frac_bits: 32,
            int_bits: 16,
        }
    }
}

impl FixedConfig {
    /// Total bit width of a freshly-encoded value (`int + frac`).
    pub fn value_bits(&self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// Encodes a real number at `frac_bits` scale.
    pub fn encode(&self, x: f64) -> i128 {
        encode_fixed(x, self.frac_bits)
    }

    /// Decodes an integer at `frac_bits` scale.
    pub fn decode(&self, v: i128) -> f64 {
        decode_fixed(v, self.frac_bits)
    }

    /// Encodes directly into the field.
    pub fn encode_fr(&self, x: f64) -> Fr {
        Fr::from_i128(self.encode(x))
    }
}

/// `⌊x·2^f⌉` with round-half-away-from-zero.
///
/// Uses an integer power of two and cast-truncation so it stays available
/// without `std` (no `f64::powi`/`round`, which live in the platform math
/// library).
pub fn encode_fixed(x: f64, frac_bits: u32) -> i128 {
    let scaled = x * ((1u128 << frac_bits) as f64);
    if scaled >= 0.0 {
        (scaled + 0.5) as i128
    } else {
        (scaled - 0.5) as i128
    }
}

/// `v / 2^f` as `f64`.
pub fn decode_fixed(v: i128, frac_bits: u32) -> f64 {
    (v as f64) / ((1u128 << frac_bits) as f64)
}

/// Floor division by a power of two on signed integers (arithmetic shift),
/// the reference semantics of the in-circuit truncation gadget.
pub fn floor_div_pow2(v: i128, bits: u32) -> i128 {
    v >> bits
}

/// Floor division by an arbitrary positive constant, the reference
/// semantics of the in-circuit averaging gadget.
pub fn floor_div(v: i128, d: i128) -> i128 {
    debug_assert!(d > 0);
    v.div_euclid(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_within_precision() {
        let cfg = FixedConfig::default();
        for x in [-3.75f64, -0.001, 0.0, 0.5, 1.0, 123.456] {
            let v = cfg.encode(x);
            assert!((cfg.decode(v) - x).abs() < 1.0 / (1u64 << 15) as f64);
        }
    }

    #[test]
    fn floor_div_pow2_matches_euclid_for_negatives() {
        // arithmetic shift == floor division, including negatives
        for v in [-17i128, -16, -1, 0, 1, 15, 16, 17] {
            assert_eq!(floor_div_pow2(v, 4), v.div_euclid(16));
        }
    }

    #[test]
    fn floor_div_matches_div_euclid() {
        for v in [-100i128, -7, -1, 0, 1, 7, 100] {
            assert_eq!(floor_div(v, 7), v.div_euclid(7));
            assert!(v - floor_div(v, 7) * 7 >= 0);
            assert!(v - floor_div(v, 7) * 7 < 7);
        }
    }

    #[test]
    fn sigmoid_coefficient_representable_at_32_bits() {
        // the smallest Chebyshev coefficient must not round to zero
        let c9 = 0.0000000072f64;
        assert_ne!(encode_fixed(c9, 32), 0);
        assert_eq!(encode_fixed(c9, 16), 0); // …but would vanish at 16 bits
    }
}
