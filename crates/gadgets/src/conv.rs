//! Zero-knowledge 3D convolution (§III-B.2).
//!
//! As in the paper, the input volume and kernels are flattened and the
//! convolution is reduced to inner products over im2col patches ("1D
//! convolution between the processed input vector and the flattened
//! kernel"). Layout is channels-first (`C × H × W`); no padding (valid
//! convolution), configurable stride.

use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// Shape of a convolution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Output channels (number of kernels).
    pub out_channels: usize,
    /// Kernel side length (square kernels).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl ConvShape {
    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        (self.height - self.kernel) / self.stride + 1
    }
    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        (self.width - self.kernel) / self.stride + 1
    }
    /// Total number of output activations.
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_height() * self.out_width()
    }
    /// Elements per im2col patch.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
    /// Total input length (`C·H·W`).
    pub fn in_len(&self) -> usize {
        self.in_channels * self.height * self.width
    }
    /// Total kernel parameter count.
    pub fn kernel_len(&self) -> usize {
        self.out_channels * self.patch_len()
    }
}

/// 3D convolution over circuit values.
///
/// `input` is `C·H·W` row-major; `kernels` is `OC × (C·k·k)` row-major.
/// Output is `OC·OH·OW` row-major.
pub fn conv3d<CS: ConstraintSystem<Fr>>(
    input: &[Num],
    kernels: &[Num],
    shape: &ConvShape,
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    assert_eq!(input.len(), shape.in_len(), "input length mismatch");
    assert_eq!(kernels.len(), shape.kernel_len(), "kernel length mismatch");
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut out = Vec::with_capacity(shape.out_len());
    for oc in 0..shape.out_channels {
        let kern = &kernels[oc * shape.patch_len()..(oc + 1) * shape.patch_len()];
        for y in 0..oh {
            for x in 0..ow {
                // gather the im2col patch (flattening, as in the paper)
                let mut patch = Vec::with_capacity(shape.patch_len());
                for c in 0..shape.in_channels {
                    for ky in 0..shape.kernel {
                        for kx in 0..shape.kernel {
                            let iy = y * shape.stride + ky;
                            let ix = x * shape.stride + kx;
                            patch.push(
                                input[c * shape.height * shape.width + iy * shape.width + ix]
                                    .clone(),
                            );
                        }
                    }
                }
                out.push(Num::inner_product(&patch, kern, cs)?);
            }
        }
    }
    Ok(out)
}

/// The standalone Table I "Conv3D" circuit: private input and kernels,
/// public outputs. Returns the reference output activations (computed out
/// of circuit, so the helper works under every driver).
pub fn conv3d_circuit<CS: ConstraintSystem<Fr>>(
    input: &[i128],
    kernels: &[i128],
    shape: &ConvShape,
    bits: u32,
    cs: &mut CS,
) -> Result<Vec<i128>, SynthesisError> {
    use zkrownn_ff::PrimeField;
    let input_nums: Vec<Num> = input
        .iter()
        .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits))
        .collect::<Result<_, _>>()?;
    let kernel_nums: Vec<Num> = kernels
        .iter()
        .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits))
        .collect::<Result<_, _>>()?;
    let outs = conv3d(&input_nums, &kernel_nums, shape, cs)?;
    for o in &outs {
        o.expose_as_output(cs)?;
    }
    Ok(conv3d_reference(input, kernels, shape))
}

/// Reference integer convolution for cross-checking.
pub fn conv3d_reference(input: &[i128], kernels: &[i128], shape: &ConvShape) -> Vec<i128> {
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut out = Vec::with_capacity(shape.out_len());
    for oc in 0..shape.out_channels {
        let kern = &kernels[oc * shape.patch_len()..(oc + 1) * shape.patch_len()];
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0i128;
                let mut ki = 0;
                for c in 0..shape.in_channels {
                    for ky in 0..shape.kernel {
                        for kx in 0..shape.kernel {
                            let iy = y * shape.stride + ky;
                            let ix = x * shape.stride + kx;
                            acc += input[c * shape.height * shape.width + iy * shape.width + ix]
                                * kern[ki];
                            ki += 1;
                        }
                    }
                }
                out.push(acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use zkrownn_r1cs::{CountingSynthesizer, ProvingSynthesizer};

    fn small_shape() -> ConvShape {
        ConvShape {
            in_channels: 2,
            height: 5,
            width: 5,
            out_channels: 3,
            kernel: 3,
            stride: 1,
        }
    }

    #[test]
    fn conv_matches_reference() {
        let shape = small_shape();
        let mut rng = rand::rngs::StdRng::seed_from_u64(151);
        let input: Vec<i128> = (0..shape.in_len())
            .map(|_| rng.gen_range(-20..20))
            .collect();
        let kernels: Vec<i128> = (0..shape.kernel_len())
            .map(|_| rng.gen_range(-20..20))
            .collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = conv3d_circuit(&input, &kernels, &shape, 8, &mut cs).unwrap();
        assert_eq!(got, conv3d_reference(&input, &kernels, &shape));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn strided_conv_shapes() {
        let shape = ConvShape {
            in_channels: 3,
            height: 32,
            width: 32,
            out_channels: 4,
            kernel: 3,
            stride: 2,
        };
        // matches the paper's Conv3D benchmark geometry: (32-3)/2+1 = 15
        assert_eq!(shape.out_height(), 15);
        assert_eq!(shape.out_width(), 15);
        let input = vec![1i128; shape.in_len()];
        let kernels = vec![1i128; shape.kernel_len()];
        let r = conv3d_reference(&input, &kernels, &shape);
        assert_eq!(r.len(), shape.out_len());
        // all-ones: every output = patch size
        assert!(r.iter().all(|&v| v == shape.patch_len() as i128));
    }

    #[test]
    fn constraint_count_formula() {
        let shape = small_shape();
        let input = vec![1i128; shape.in_len()];
        let kernels = vec![1i128; shape.kernel_len()];
        let mut cs = CountingSynthesizer::<Fr>::new();
        conv3d_circuit(&input, &kernels, &shape, 6, &mut cs).unwrap();
        // patch_len multiplications per output + 1 exposure per output
        assert_eq!(
            cs.num_constraints(),
            shape.out_len() * (shape.patch_len() + 1)
        );
    }
}
