//! Sign tests, comparisons and fixed-point rescaling (truncation/division).

use crate::bits::{to_bits, Bit};
use crate::num::{Num, MAX_BITS};
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_r1cs::{assignment, ConstraintSystem, LinearCombination, SynthesisError};

/// Returns the bit `x < 0`, assuming `|x| < 2^x.bits`.
///
/// Implementation: decompose `x + 2^n` (guaranteed in `[0, 2^(n+1))`) and
/// read the top bit — it is 1 exactly when `x ≥ 0`.
pub fn is_negative<CS: ConstraintSystem<Fr>>(x: &Num, cs: &mut CS) -> Result<Bit, SynthesisError> {
    let n = x.bits;
    assert!(n < MAX_BITS, "comparison width exceeds MAX_BITS");
    let mut shifted = x.add(&Num::constant(Fr::from_u128(1u128 << n)));
    shifted.bits = n + 1;
    let bits = to_bits(&shifted, n + 1, cs)?;
    Ok(bits[n as usize].not())
}

/// Returns the bit `a ≥ b`.
pub fn is_ge<CS: ConstraintSystem<Fr>>(
    a: &Num,
    b: &Num,
    cs: &mut CS,
) -> Result<Bit, SynthesisError> {
    Ok(is_negative(&a.sub(b), cs)?.not())
}

/// Returns the bit `a < b`.
pub fn is_lt<CS: ConstraintSystem<Fr>>(
    a: &Num,
    b: &Num,
    cs: &mut CS,
) -> Result<Bit, SynthesisError> {
    is_negative(&a.sub(b), cs)
}

/// Floor-divides a signed value by `2^k` (fixed-point truncation).
///
/// Constrains `x = q·2^k + r` with `r ∈ [0, 2^k)` and `q` range-checked to
/// `(x.bits − k + 1)` signed bits; floor semantics match
/// [`crate::fixed::floor_div_pow2`].
pub fn truncate<CS: ConstraintSystem<Fr>>(
    x: &Num,
    k: u32,
    cs: &mut CS,
) -> Result<Num, SynthesisError> {
    assert!(k > 0 && k < MAX_BITS);
    assert!(x.bits < MAX_BITS, "truncation input too wide");
    let v = x.value.map(|f| {
        f.to_i128()
            .expect("Num value exceeded i128 range; bounds tracking violated")
    });
    let q_val = v.map(|v| v >> k);
    let r_val = v.map(|v| v - ((v >> k) << k));
    if let Some(r) = r_val {
        debug_assert!((0..(1i128 << k)).contains(&r));
    }

    let q_bits = x.bits.saturating_sub(k).max(1);
    let q = Num::alloc_witness(cs, || assignment(q_val.map(Fr::from_i128)), q_bits)?;
    let r = Num::alloc_witness(cs, || assignment(r_val.map(Fr::from_i128)), k)?;
    // range checks
    let _ = to_bits(&r, k, cs)?;
    let mut q_shifted = q.add(&Num::constant(Fr::from_u128(1u128 << q_bits)));
    q_shifted.bits = q_bits + 1;
    let _ = to_bits(&q_shifted, q_bits + 1, cs)?;
    // recomposition: x − q·2^k − r == 0
    let recompose = x.lc.clone() - q.lc.clone().scale(Fr::from_u128(1u128 << k)) - r.lc.clone();
    cs.enforce(
        recompose,
        LinearCombination::constant(Fr::one()),
        LinearCombination::zero(),
    );
    Ok(q)
}

/// Floor-divides a signed value by a small positive constant `d` (used for
/// activation averaging). Matches [`crate::fixed::floor_div`].
pub fn div_by_const<CS: ConstraintSystem<Fr>>(
    x: &Num,
    d: u64,
    cs: &mut CS,
) -> Result<Num, SynthesisError> {
    assert!(d > 0, "division by zero");
    if d.is_power_of_two() && d > 1 {
        return truncate(x, d.trailing_zeros(), cs);
    }
    if d == 1 {
        return Ok(x.clone());
    }
    let d_bits = 64 - d.leading_zeros();
    assert!(x.bits < MAX_BITS);
    let v = x.value.map(|f| {
        f.to_i128()
            .expect("Num value exceeded i128 range; bounds tracking violated")
    });
    let q_val = v.map(|v| v.div_euclid(d as i128));
    let r_val = v.map(|v| v - v.div_euclid(d as i128) * d as i128);
    let q_bits = x.bits; // |q| ≤ |x|
    let q = Num::alloc_witness(cs, || assignment(q_val.map(Fr::from_i128)), q_bits)?;
    let r = Num::alloc_witness(cs, || assignment(r_val.map(Fr::from_i128)), d_bits)?;
    // r ∈ [0, 2^d_bits) …
    let _ = to_bits(&r, d_bits, cs)?;
    // … and r ≤ d − 1: decompose (d − 1 − r) too
    let mut dd = Num::constant(Fr::from_u64(d - 1)).sub(&r);
    dd.bits = d_bits;
    let _ = to_bits(&dd, d_bits, cs)?;
    // signed range check on q
    let mut q_shifted = q.add(&Num::constant(Fr::from_u128(1u128 << q_bits)));
    q_shifted.bits = q_bits + 1;
    let _ = to_bits(&q_shifted, q_bits + 1, cs)?;
    // x − q·d − r == 0
    let recompose = x.lc.clone() - q.lc.clone().scale(Fr::from_u64(d)) - r.lc.clone();
    cs.enforce(
        recompose,
        LinearCombination::constant(Fr::one()),
        LinearCombination::zero(),
    );
    Ok(q)
}

/// Enforces that `vals[k]` is a maximum of `vals` (ties allowed): adds an
/// `is_ge` check against every other element and constrains each to hold.
/// Used by class-only verifiable inference ("the predicted class is k"
/// without revealing the logits). Note that `k` is part of the circuit
/// *structure* — the claimed class is a public parameter, not a witness.
pub fn enforce_argmax<CS: ConstraintSystem<Fr>>(
    vals: &[Num],
    k: usize,
    cs: &mut CS,
) -> Result<(), SynthesisError> {
    assert!(k < vals.len(), "argmax index out of range");
    for (j, v) in vals.iter().enumerate() {
        if j == k {
            continue;
        }
        let ge = is_ge(&vals[k], v, cs)?;
        // ge must be 1
        cs.enforce(
            ge.num.lc.clone() - LinearCombination::constant(Fr::one()),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{floor_div, floor_div_pow2};
    use zkrownn_r1cs::ProvingSynthesizer;

    fn num(cs: &mut ProvingSynthesizer<Fr>, v: i128, bits: u32) -> Num {
        Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits).unwrap()
    }

    #[test]
    fn is_negative_on_samples() {
        for v in [-100i128, -1, 0, 1, 100] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let x = num(&mut cs, v, 8);
            let neg = is_negative(&x, &mut cs).unwrap();
            assert_eq!(neg.value(), Some(v < 0), "v = {v}");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn comparisons() {
        let cases = [(3i128, 5i128), (5, 3), (4, 4), (-2, 2), (-7, -3)];
        for (a, b) in cases {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let na = num(&mut cs, a, 6);
            let nb = num(&mut cs, b, 6);
            assert_eq!(is_ge(&na, &nb, &mut cs).unwrap().value(), Some(a >= b));
            assert_eq!(is_lt(&na, &nb, &mut cs).unwrap().value(), Some(a < b));
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn truncate_matches_reference_semantics() {
        for v in [-1000i128, -17, -16, -1, 0, 1, 15, 16, 1000] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let x = num(&mut cs, v, 12);
            let q = truncate(&x, 4, &mut cs).unwrap();
            assert_eq!(q.value_i128(), floor_div_pow2(v, 4), "v = {v}");
            assert!(cs.is_satisfied().is_ok(), "v = {v}");
        }
    }

    #[test]
    fn div_by_const_matches_reference_semantics() {
        for d in [1u64, 3, 5, 7, 10, 128] {
            for v in [-99i128, -10, -1, 0, 1, 9, 100] {
                let mut cs = ProvingSynthesizer::<Fr>::new();
                let x = num(&mut cs, v, 9);
                let q = div_by_const(&x, d, &mut cs).unwrap();
                assert_eq!(q.value_i128(), floor_div(v, d as i128), "v={v}, d={d}");
                assert!(cs.is_satisfied().is_ok(), "v={v}, d={d}");
            }
        }
    }

    #[test]
    fn enforce_argmax_accepts_true_max_and_rejects_others() {
        let vals = [3i128, 9, -2, 9, 0];
        // index 1 and 3 are both maxima (ties allowed)
        for k in [1usize, 3] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let nums: Vec<Num> = vals.iter().map(|&v| num(&mut cs, v, 6)).collect();
            enforce_argmax(&nums, k, &mut cs).unwrap();
            assert!(cs.is_satisfied().is_ok(), "k = {k}");
        }
        for k in [0usize, 2, 4] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let nums: Vec<Num> = vals.iter().map(|&v| num(&mut cs, v, 6)).collect();
            enforce_argmax(&nums, k, &mut cs).unwrap();
            assert!(cs.is_satisfied().is_err(), "k = {k}");
        }
    }

    #[test]
    fn truncate_rejects_cheating_quotient() {
        // A forged quotient/remainder pair violating the range checks must
        // not satisfy the system: emulate by rebuilding with a bad witness.
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let x = num(&mut cs, 33, 8);
        // honest: q = 2, r = 1 (33 = 2·16 + 1). Forge q = 1, r = 17.
        let q = num(&mut cs, 1, 4);
        let r = num(&mut cs, 17, 4);
        // r decomposition into 4 bits cannot represent 17 — any bit
        // assignment fails either booleanity or recomposition. Use the
        // honest-looking bits of 17 mod 16 = 1 to show recomposition fails.
        let b: Vec<_> = (0..4)
            .map(|i| Bit::alloc(&mut cs, || Ok((1u64 >> i) & 1 == 1)).unwrap())
            .collect();
        let recompose_r = b
            .iter()
            .enumerate()
            .fold(LinearCombination::<Fr>::zero(), |acc, (i, bit)| {
                acc + bit.num.lc.clone().scale(Fr::from_u64(1 << i))
            });
        cs.enforce(
            recompose_r - r.lc.clone(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
        let recompose = x.lc.clone() - q.lc.clone().scale(Fr::from_u64(16)) - r.lc.clone();
        cs.enforce(
            recompose,
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
        assert!(cs.is_satisfied().is_err());
    }
}
