//! Boolean variables and bit decomposition.
//!
//! Bit decomposition is the workhorse behind every non-linear gadget
//! (comparison, ReLU, thresholding, truncation): a value known to lie in
//! `[0, 2^n)` is split into `n` boolean witnesses whose weighted sum is
//! constrained to equal it. For `n ≪ 253` the decomposition is unique, so
//! the booleans faithfully represent the value's binary expansion.
//!
//! Like every gadget in this crate, the decomposition is mode-aware: the
//! *structure* (`n` booleanity constraints + 1 recomposition) depends only
//! on the tracked bound, while the bit *values* are derived inside witness
//! closures that setup-mode drivers never evaluate.

use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_r1cs::{assignment, ConstraintSystem, LinearCombination, SynthesisError};

/// A boolean circuit value (guaranteed 0 or 1 by a constraint).
#[derive(Clone, Debug)]
pub struct Bit {
    /// The underlying 0/1 number.
    pub num: Num,
}

impl Bit {
    /// Allocates a boolean witness and adds the constraint `b·(b−1) = 0`.
    /// The value closure is only evaluated by witnessing drivers.
    pub fn alloc<CS: ConstraintSystem<Fr>>(
        cs: &mut CS,
        value: impl FnOnce() -> Result<bool, SynthesisError>,
    ) -> Result<Self, SynthesisError> {
        let num = Num::alloc_witness(cs, || Ok(if value()? { Fr::one() } else { Fr::zero() }), 1)?;
        // b·b = b
        cs.enforce(num.lc.clone(), num.lc.clone(), num.lc.clone());
        Ok(Self { num })
    }

    /// Wraps an existing `Num` already known (constrained elsewhere) to be
    /// boolean. Internal use by the decomposition gadget.
    fn from_constrained(num: Num) -> Self {
        Self { num }
    }

    /// A constant bit (no constraints).
    pub fn constant(value: bool) -> Self {
        Self {
            num: if value {
                Num::constant(Fr::one())
            } else {
                Num::zero()
            },
        }
    }

    /// The boolean value under the current assignment (`None` under a
    /// non-witnessing driver).
    pub fn value(&self) -> Option<bool> {
        self.num.value.map(|v| !v.is_zero())
    }

    /// Logical NOT (free).
    pub fn not(&self) -> Self {
        Self {
            num: Num::constant(Fr::one()).sub(&self.num),
        }
    }

    /// Logical AND (one constraint).
    pub fn and<CS: ConstraintSystem<Fr>>(
        &self,
        other: &Self,
        cs: &mut CS,
    ) -> Result<Self, SynthesisError> {
        let mut n = self.num.mul(&other.num, cs)?;
        n.bits = 1;
        Ok(Self::from_constrained(n))
    }

    /// Logical OR (one constraint): `a + b − a·b`.
    pub fn or<CS: ConstraintSystem<Fr>>(
        &self,
        other: &Self,
        cs: &mut CS,
    ) -> Result<Self, SynthesisError> {
        let ab = self.num.mul(&other.num, cs)?;
        let mut n = self.num.add(&other.num).sub(&ab);
        n.bits = 1;
        Ok(Self::from_constrained(n))
    }

    /// Logical XOR (one constraint): `a + b − 2·a·b`.
    pub fn xor<CS: ConstraintSystem<Fr>>(
        &self,
        other: &Self,
        cs: &mut CS,
    ) -> Result<Self, SynthesisError> {
        let ab = self.num.mul(&other.num, cs)?;
        let mut n = self
            .num
            .add(&other.num)
            .sub(&ab.mul_constant(Fr::from_u64(2), 2));
        n.bits = 1;
        Ok(Self::from_constrained(n))
    }

    /// Multiplexer `if self { a } else { b }` (one constraint):
    /// `out = b + self·(a − b)`.
    pub fn select<CS: ConstraintSystem<Fr>>(
        &self,
        a: &Num,
        b: &Num,
        cs: &mut CS,
    ) -> Result<Num, SynthesisError> {
        let diff = a.sub(b);
        let scaled = self.num.mul(&diff, cs)?;
        let mut out = b.add(&scaled);
        out.bits = a.bits.max(b.bits) + 1;
        Ok(out)
    }
}

/// Decomposes a *non-negative* value into `n` little-endian bits.
///
/// Adds `n` booleanity constraints plus one recomposition constraint. The
/// caller must guarantee `0 ≤ value < 2^n` (gadgets arrange this via the
/// `Num::bits` bound plus an offset); the constraint system itself enforces
/// it — an out-of-range witness has no satisfying assignment for `n < 253`.
///
/// # Panics
/// Panics (during a *witnessing* synthesis only) if the assignment value is
/// negative or too wide — an internal bug or a malicious witness; setup
/// never sees values at all.
pub fn to_bits<CS: ConstraintSystem<Fr>>(
    num: &Num,
    n: u32,
    cs: &mut CS,
) -> Result<Vec<Bit>, SynthesisError> {
    assert!(
        n < 253,
        "decomposition width must stay below the field size"
    );
    let v = num.value.map(|f| {
        let v = f
            .to_i128()
            .expect("Num value exceeded i128 range; bounds tracking violated");
        assert!(v >= 0, "to_bits requires a non-negative value, got {v}");
        assert!(
            n >= 127 || v < (1i128 << n),
            "value {v} does not fit in {n} bits"
        );
        v
    });
    let mut bits = Vec::with_capacity(n as usize);
    let mut recompose = LinearCombination::<Fr>::zero();
    let mut weight = Fr::one();
    for i in 0..n {
        let bit = Bit::alloc(cs, || Ok((assignment(v)? >> i) & 1 == 1))?;
        recompose = recompose + bit.num.lc.clone().scale(weight);
        weight = weight.double();
        bits.push(bit);
    }
    // Σ 2^i·bᵢ == num
    cs.enforce(
        recompose - num.lc.clone(),
        LinearCombination::constant(Fr::one()),
        LinearCombination::zero(),
    );
    Ok(bits)
}

/// Packs little-endian bits back into a `Num` (free; pure LC manipulation).
pub fn from_bits(bits: &[Bit]) -> Num {
    let mut acc = Num::zero();
    let mut weight = Fr::one();
    for b in bits {
        acc = acc.add(&b.num.mul_constant(weight, 0).clone());
        weight = weight.double();
    }
    acc.bits = bits.len() as u32;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_r1cs::{ProvingSynthesizer, SetupSynthesizer};

    #[test]
    fn bit_ops_truth_tables() {
        for a in [false, true] {
            for b in [false, true] {
                let mut cs = ProvingSynthesizer::<Fr>::new();
                let ba = Bit::alloc(&mut cs, || Ok(a)).unwrap();
                let bb = Bit::alloc(&mut cs, || Ok(b)).unwrap();
                assert_eq!(ba.and(&bb, &mut cs).unwrap().value(), Some(a && b));
                assert_eq!(ba.or(&bb, &mut cs).unwrap().value(), Some(a || b));
                assert_eq!(ba.xor(&bb, &mut cs).unwrap().value(), Some(a ^ b));
                assert_eq!(ba.not().value(), Some(!a));
                assert!(cs.is_satisfied().is_ok());
            }
        }
    }

    #[test]
    fn select_chooses_correct_branch() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let x = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(11)), 4).unwrap();
        let y = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(22)), 5).unwrap();
        let t = Bit::alloc(&mut cs, || Ok(true)).unwrap();
        let f = Bit::alloc(&mut cs, || Ok(false)).unwrap();
        assert_eq!(
            t.select(&x, &y, &mut cs).unwrap().value,
            Some(Fr::from_u64(11))
        );
        assert_eq!(
            f.select(&x, &y, &mut cs).unwrap().value,
            Some(Fr::from_u64(22))
        );
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn to_bits_roundtrip() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let v = 0b1011_0110u64;
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(v)), 8).unwrap();
        let bits = to_bits(&num, 8, &mut cs).unwrap();
        assert!(cs.is_satisfied().is_ok());
        for (i, bit) in bits.iter().enumerate() {
            assert_eq!(bit.value(), Some((v >> i) & 1 == 1));
        }
        let packed = from_bits(&bits);
        assert_eq!(packed.value, Some(Fr::from_u64(v)));
    }

    #[test]
    fn to_bits_constraint_count() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(5)), 4).unwrap();
        let base = cs.num_constraints();
        let _ = to_bits(&num, 4, &mut cs).unwrap();
        // 4 booleanity + 1 recomposition
        assert_eq!(cs.num_constraints() - base, 5);
    }

    #[test]
    fn setup_mode_decomposition_matches_proving_shape() {
        let mut setup = SetupSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut setup, || panic!("evaluated"), 4).unwrap();
        let bits = to_bits(&num, 4, &mut setup).unwrap();
        assert_eq!(setup.num_constraints(), 5); // 4 booleanity + 1 recomposition
        assert_eq!(bits.len(), 4);
        assert!(bits.iter().all(|b| b.value().is_none()));
    }

    #[test]
    fn forged_bit_witness_is_unsatisfiable() {
        // If a prover lies about a bit, the recomposition constraint fails.
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(3)), 2).unwrap();
        let _ = to_bits(&num, 2, &mut cs).unwrap();
        assert!(cs.is_satisfied().is_ok());
        // rebuild with a corrupted value in place of the allocated bit:
        let mut cs2 = ProvingSynthesizer::<Fr>::new();
        let num2 = Num::alloc_witness(&mut cs2, || Ok(Fr::from_u64(3)), 2).unwrap();
        let b0 = cs2.alloc_witness(|| Ok(Fr::zero())).unwrap(); // claims bit0 = 0 (lie)
        let b1 = cs2.alloc_witness(|| Ok(Fr::one())).unwrap();
        for b in [b0, b1] {
            let lc: LinearCombination<Fr> = b.into();
            cs2.enforce(lc.clone(), lc.clone(), lc.clone());
        }
        let recompose = LinearCombination::<Fr>::zero()
            .add_term(Fr::one(), b0)
            .add_term(Fr::from_u64(2), b1);
        cs2.enforce(
            recompose - num2.lc.clone(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
        assert!(cs2.is_satisfied().is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, || Ok(Fr::from_u64(16)), 5).unwrap();
        let _ = to_bits(&num, 4, &mut cs);
    }
}
