//! Boolean variables and bit decomposition.
//!
//! Bit decomposition is the workhorse behind every non-linear gadget
//! (comparison, ReLU, thresholding, truncation): a value known to lie in
//! `[0, 2^n)` is split into `n` boolean witnesses whose weighted sum is
//! constrained to equal it. For `n ≪ 253` the decomposition is unique, so
//! the booleans faithfully represent the value's binary expansion.

use crate::num::Num;
use zkrownn_ff::{Field, Fr};
use zkrownn_r1cs::{ConstraintSystem, LinearCombination};

/// A boolean circuit value (guaranteed 0 or 1 by a constraint).
#[derive(Clone, Debug)]
pub struct Bit {
    /// The underlying 0/1 number.
    pub num: Num,
}

impl Bit {
    /// Allocates a boolean witness and adds the constraint `b·(b−1) = 0`.
    pub fn alloc(cs: &mut ConstraintSystem<Fr>, value: bool) -> Self {
        let num = Num::alloc_witness(cs, if value { Fr::one() } else { Fr::zero() }, 1);
        // b·b = b
        cs.enforce(num.lc.clone(), num.lc.clone(), num.lc.clone());
        Self { num }
    }

    /// Wraps an existing `Num` already known (constrained elsewhere) to be
    /// boolean. Internal use by the decomposition gadget.
    fn from_constrained(num: Num) -> Self {
        Self { num }
    }

    /// A constant bit (no constraints).
    pub fn constant(value: bool) -> Self {
        Self {
            num: if value {
                Num::constant(Fr::one())
            } else {
                Num::zero()
            },
        }
    }

    /// The boolean value under the current assignment.
    pub fn value(&self) -> bool {
        !self.num.value.is_zero()
    }

    /// Logical NOT (free).
    pub fn not(&self) -> Self {
        Self {
            num: Num::constant(Fr::one()).sub(&self.num),
        }
    }

    /// Logical AND (one constraint).
    pub fn and(&self, other: &Self, cs: &mut ConstraintSystem<Fr>) -> Self {
        let mut n = self.num.mul(&other.num, cs);
        n.bits = 1;
        Self::from_constrained(n)
    }

    /// Logical OR (one constraint): `a + b − a·b`.
    pub fn or(&self, other: &Self, cs: &mut ConstraintSystem<Fr>) -> Self {
        let ab = self.num.mul(&other.num, cs);
        let mut n = self.num.add(&other.num).sub(&ab);
        n.bits = 1;
        Self::from_constrained(n)
    }

    /// Logical XOR (one constraint): `a + b − 2·a·b`.
    pub fn xor(&self, other: &Self, cs: &mut ConstraintSystem<Fr>) -> Self {
        let ab = self.num.mul(&other.num, cs);
        let mut n = self
            .num
            .add(&other.num)
            .sub(&ab.mul_constant(Fr::from_u64(2), 2));
        n.bits = 1;
        Self::from_constrained(n)
    }

    /// Multiplexer `if self { a } else { b }` (one constraint):
    /// `out = b + self·(a − b)`.
    pub fn select(&self, a: &Num, b: &Num, cs: &mut ConstraintSystem<Fr>) -> Num {
        let diff = a.sub(b);
        let scaled = self.num.mul(&diff, cs);
        let mut out = b.add(&scaled);
        out.bits = a.bits.max(b.bits) + 1;
        out
    }
}

/// Decomposes a *non-negative* value into `n` little-endian bits.
///
/// Adds `n` booleanity constraints plus one recomposition constraint. The
/// caller must guarantee `0 ≤ value < 2^n` (gadgets arrange this via the
/// `Num::bits` bound plus an offset); the constraint system itself enforces
/// it — an out-of-range witness has no satisfying assignment for `n < 253`.
///
/// # Panics
/// Panics if the assignment value is negative or too wide (internal bug or
/// malicious witness during proving — setup never sees real values).
pub fn to_bits(num: &Num, n: u32, cs: &mut ConstraintSystem<Fr>) -> Vec<Bit> {
    assert!(
        n < 253,
        "decomposition width must stay below the field size"
    );
    let v = num.value_i128();
    assert!(v >= 0, "to_bits requires a non-negative value, got {v}");
    assert!(
        n >= 127 || v < (1i128 << n),
        "value {v} does not fit in {n} bits"
    );
    let mut bits = Vec::with_capacity(n as usize);
    let mut recompose = LinearCombination::<Fr>::zero();
    let mut weight = Fr::one();
    for i in 0..n {
        let bit = Bit::alloc(cs, (v >> i) & 1 == 1);
        recompose = recompose + bit.num.lc.clone().scale(weight);
        weight = weight.double();
        bits.push(bit);
    }
    // Σ 2^i·bᵢ == num
    cs.enforce(
        recompose - num.lc.clone(),
        LinearCombination::constant(Fr::one()),
        LinearCombination::zero(),
    );
    bits
}

/// Packs little-endian bits back into a `Num` (free; pure LC manipulation).
pub fn from_bits(bits: &[Bit]) -> Num {
    let mut acc = Num::zero();
    let mut weight = Fr::one();
    for b in bits {
        acc = acc.add(&b.num.mul_constant(weight, 0).clone());
        weight = weight.double();
    }
    acc.bits = bits.len() as u32;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops_truth_tables() {
        for a in [false, true] {
            for b in [false, true] {
                let mut cs = ConstraintSystem::<Fr>::new();
                let ba = Bit::alloc(&mut cs, a);
                let bb = Bit::alloc(&mut cs, b);
                assert_eq!(ba.and(&bb, &mut cs).value(), a && b);
                assert_eq!(ba.or(&bb, &mut cs).value(), a || b);
                assert_eq!(ba.xor(&bb, &mut cs).value(), a ^ b);
                assert_eq!(ba.not().value(), !a);
                assert!(cs.is_satisfied().is_ok());
            }
        }
    }

    #[test]
    fn select_chooses_correct_branch() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = Num::alloc_witness(&mut cs, Fr::from_u64(11), 4);
        let y = Num::alloc_witness(&mut cs, Fr::from_u64(22), 5);
        let t = Bit::alloc(&mut cs, true);
        let f = Bit::alloc(&mut cs, false);
        assert_eq!(t.select(&x, &y, &mut cs).value, Fr::from_u64(11));
        assert_eq!(f.select(&x, &y, &mut cs).value, Fr::from_u64(22));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn to_bits_roundtrip() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let v = 0b1011_0110u64;
        let num = Num::alloc_witness(&mut cs, Fr::from_u64(v), 8);
        let bits = to_bits(&num, 8, &mut cs);
        assert!(cs.is_satisfied().is_ok());
        let vals: Vec<bool> = bits.iter().map(|b| b.value()).collect();
        for (i, bv) in vals.iter().enumerate() {
            assert_eq!(*bv, (v >> i) & 1 == 1);
        }
        let packed = from_bits(&bits);
        assert_eq!(packed.value, Fr::from_u64(v));
    }

    #[test]
    fn to_bits_constraint_count() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, Fr::from_u64(5), 4);
        let base = cs.num_constraints();
        let _ = to_bits(&num, 4, &mut cs);
        // 4 booleanity + 1 recomposition
        assert_eq!(cs.num_constraints() - base, 5);
    }

    #[test]
    fn forged_bit_witness_is_unsatisfiable() {
        // If a prover lies about a bit, the recomposition constraint fails.
        let mut cs = ConstraintSystem::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, Fr::from_u64(3), 2);
        let _ = to_bits(&num, 2, &mut cs);
        assert!(cs.is_satisfied().is_ok());
        // rebuild with a corrupted value in place of the allocated bit:
        let mut cs2 = ConstraintSystem::<Fr>::new();
        let num2 = Num::alloc_witness(&mut cs2, Fr::from_u64(3), 2);
        let b0 = cs2.alloc_witness(Fr::zero()); // claims bit0 = 0 (lie)
        let b1 = cs2.alloc_witness(Fr::one());
        for b in [b0, b1] {
            let lc: LinearCombination<Fr> = b.into();
            cs2.enforce(lc.clone(), lc.clone(), lc.clone());
        }
        let recompose = LinearCombination::<Fr>::zero()
            .add_term(Fr::one(), b0)
            .add_term(Fr::from_u64(2), b1);
        cs2.enforce(
            recompose - num2.lc.clone(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::zero(),
        );
        assert!(cs2.is_satisfied().is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let num = Num::alloc_witness(&mut cs, Fr::from_u64(16), 5);
        let _ = to_bits(&num, 4, &mut cs);
    }
}
