//! Zero-knowledge matrix multiplication `A(M×K) · B(K×N) = C(M×N)`
//! (§III-B.1). Used both as a standalone Table I circuit and as the dense
//! layer of the feed-forward step. Each scalar product costs one
//! constraint; sums are free linear combinations.

use crate::num::Num;
use alloc::vec;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// A row-major matrix of circuit values.
#[derive(Clone, Debug)]
pub struct NumMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major entries (`rows × cols`).
    pub data: Vec<Num>,
}

impl NumMatrix {
    /// Builds a matrix from row-major entries.
    pub fn new(rows: usize, cols: usize, data: Vec<Num>) -> Self {
        assert_eq!(rows * cols, data.len(), "matrix shape mismatch");
        Self { rows, cols, data }
    }

    /// Entry accessor.
    pub fn at(&self, r: usize, c: usize) -> &Num {
        &self.data[r * self.cols + c]
    }

    /// Allocates a matrix of private witnesses from integer entries.
    pub fn alloc_witness<CS: ConstraintSystem<Fr>>(
        cs: &mut CS,
        rows: usize,
        cols: usize,
        entries: &[i128],
        bits: u32,
    ) -> Result<Self, SynthesisError> {
        use zkrownn_ff::PrimeField;
        assert_eq!(entries.len(), rows * cols);
        let data = entries
            .iter()
            .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits))
            .collect::<Result<_, _>>()?;
        Ok(Self::new(rows, cols, data))
    }

    /// Allocates a matrix of public inputs from integer entries.
    pub fn alloc_instance<CS: ConstraintSystem<Fr>>(
        cs: &mut CS,
        rows: usize,
        cols: usize,
        entries: &[i128],
        bits: u32,
    ) -> Result<Self, SynthesisError> {
        use zkrownn_ff::PrimeField;
        assert_eq!(entries.len(), rows * cols);
        let data = entries
            .iter()
            .map(|&v| Num::alloc_instance(cs, || Ok(Fr::from_i128(v)), bits))
            .collect::<Result<_, _>>()?;
        Ok(Self::new(rows, cols, data))
    }
}

/// Matrix product (one constraint per scalar multiplication).
pub fn matmul<CS: ConstraintSystem<Fr>>(
    a: &NumMatrix,
    b: &NumMatrix,
    cs: &mut CS,
) -> Result<NumMatrix, SynthesisError> {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    let mut out = Vec::with_capacity(a.rows * b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let row: Vec<Num> = (0..a.cols).map(|k| a.at(i, k).clone()).collect();
            let col: Vec<Num> = (0..b.rows).map(|k| b.at(k, j).clone()).collect();
            out.push(Num::inner_product(&row, &col, cs)?);
        }
    }
    Ok(NumMatrix::new(a.rows, b.cols, out))
}

/// The standalone Table I "MatMult" circuit: private `A`, `B`; public `C`.
/// Returns the reference product entries (computed out of circuit, so the
/// helper works under every driver) for supplying to the verifier.
#[allow(clippy::too_many_arguments)]
pub fn matmul_circuit<CS: ConstraintSystem<Fr>>(
    a_entries: &[i128],
    b_entries: &[i128],
    m: usize,
    k: usize,
    n: usize,
    bits: u32,
    cs: &mut CS,
) -> Result<Vec<i128>, SynthesisError> {
    let a = NumMatrix::alloc_witness(cs, m, k, a_entries, bits)?;
    let b = NumMatrix::alloc_witness(cs, k, n, b_entries, bits)?;
    let c = matmul(&a, &b, cs)?;
    for num in &c.data {
        num.expose_as_output(cs)?;
    }
    Ok(matmul_reference(a_entries, b_entries, m, k, n))
}

/// Reference integer matmul for cross-checking.
pub fn matmul_reference(a: &[i128], b: &[i128], m: usize, k: usize, n: usize) -> Vec<i128> {
    let mut out = vec![0i128; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i128;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use zkrownn_r1cs::{CountingSynthesizer, ProvingSynthesizer};

    #[test]
    fn matmul_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(141);
        let (m, k, n) = (3usize, 4usize, 2usize);
        let a: Vec<i128> = (0..m * k).map(|_| rng.gen_range(-50..50)).collect();
        let b: Vec<i128> = (0..k * n).map(|_| rng.gen_range(-50..50)).collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = matmul_circuit(&a, &b, m, k, n, 8, &mut cs).unwrap();
        assert_eq!(got, matmul_reference(&a, &b, m, k, n));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn constraint_count_is_mkn_plus_outputs() {
        let (m, k, n) = (4usize, 5usize, 6usize);
        let a = vec![1i128; m * k];
        let b = vec![1i128; k * n];
        let mut cs = CountingSynthesizer::<Fr>::new();
        matmul_circuit(&a, &b, m, k, n, 4, &mut cs).unwrap();
        // k multiplications per output + 1 output-exposure constraint
        assert_eq!(cs.num_constraints(), m * n * k + m * n);
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let a = vec![7i128, -3, 2, 9];
        let eye = vec![1i128, 0, 0, 1];
        let got = matmul_circuit(&a, &eye, 2, 2, 2, 6, &mut cs).unwrap();
        assert_eq!(got, a);
        assert!(cs.is_satisfied().is_ok());
    }
}
