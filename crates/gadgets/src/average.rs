//! Zero-knowledge activation averaging (the `zkAverage` step of
//! Algorithm 1): the statistical mean of the activation maps obtained from
//! the trigger keys approximates the watermarked Gaussian centers.

use crate::cmp::div_by_const;
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// Averages `rows` vectors element-wise: output `j` is
/// `⌊(Σᵢ rows[i][j]) / rows.len()⌋` (floor division, matching
/// [`crate::fixed::floor_div`]).
pub fn average_rows<CS: ConstraintSystem<Fr>>(
    rows: &[Vec<Num>],
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    assert!(!rows.is_empty(), "average of zero rows");
    let width = rows[0].len();
    assert!(
        rows.iter().all(|r| r.len() == width),
        "ragged rows in average"
    );
    let n = rows.len() as u64;
    (0..width)
        .map(|j| {
            let terms: Vec<Num> = rows.iter().map(|row| row[j].clone()).collect();
            div_by_const(&Num::sum(&terms), n, cs)
        })
        .collect()
}

/// The standalone Table I "Average2D" circuit: a private `rows × cols`
/// matrix averaged along rows (column means), public outputs. Returns the
/// reference means (computed out of circuit, so the helper works under
/// every driver).
pub fn average2d_circuit<CS: ConstraintSystem<Fr>>(
    entries: &[i128],
    rows: usize,
    cols: usize,
    bits: u32,
    cs: &mut CS,
) -> Result<Vec<i128>, SynthesisError> {
    use zkrownn_ff::PrimeField;
    assert_eq!(entries.len(), rows * cols);
    let nums: Vec<Vec<Num>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| Num::alloc_witness(cs, || Ok(Fr::from_i128(entries[r * cols + c])), bits))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;
    let means = average_rows(&nums, cs)?;
    for m in &means {
        m.expose_as_output(cs)?;
    }
    Ok(average_reference(entries, rows, cols))
}

/// Reference column means with floor semantics.
pub fn average_reference(entries: &[i128], rows: usize, cols: usize) -> Vec<i128> {
    (0..cols)
        .map(|c| {
            let sum: i128 = (0..rows).map(|r| entries[r * cols + c]).sum();
            sum.div_euclid(rows as i128)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use zkrownn_r1cs::ProvingSynthesizer;

    #[test]
    fn average_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(161);
        let (rows, cols) = (5usize, 7usize);
        let entries: Vec<i128> = (0..rows * cols).map(|_| rng.gen_range(-100..100)).collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = average2d_circuit(&entries, rows, cols, 8, &mut cs).unwrap();
        assert_eq!(got, average_reference(&entries, rows, cols));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn power_of_two_rows_use_truncation_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(162);
        let (rows, cols) = (4usize, 3usize);
        let entries: Vec<i128> = (0..rows * cols).map(|_| rng.gen_range(-100..100)).collect();
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = average2d_circuit(&entries, rows, cols, 8, &mut cs).unwrap();
        assert_eq!(got, average_reference(&entries, rows, cols));
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn single_row_average_is_identity() {
        let entries = vec![3i128, -4, 5];
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let got = average2d_circuit(&entries, 1, 3, 4, &mut cs).unwrap();
        assert_eq!(got, entries);
        assert!(cs.is_satisfied().is_ok());
    }
}
