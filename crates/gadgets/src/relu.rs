//! Zero-knowledge ReLU: `f(x) = max(0, x)`.

use crate::bits::Bit;
use crate::cmp::is_negative;
use crate::num::Num;
use zkrownn_ff::Fr;
use zkrownn_r1cs::ConstraintSystem;

/// ReLU on a single value: one sign decomposition plus one multiplexer.
pub fn relu(x: &Num, cs: &mut ConstraintSystem<Fr>) -> Num {
    let neg = is_negative(x, cs);
    let mut out = neg.select(&Num::zero(), x, cs);
    out.bits = x.bits;
    out
}

/// ReLU applied element-wise.
pub fn relu_vec(xs: &[Num], cs: &mut ConstraintSystem<Fr>) -> Vec<Num> {
    xs.iter().map(|x| relu(x, cs)).collect()
}

/// The "zkReLU" circuit of Table I: a private input vector passed through
/// ReLU with public outputs. Returns the output values for the verifier.
pub fn relu_circuit(inputs: &[i128], bits: u32, cs: &mut ConstraintSystem<Fr>) -> Vec<i128> {
    use zkrownn_ff::PrimeField;
    let nums: Vec<Num> = inputs
        .iter()
        .map(|&v| Num::alloc_witness(cs, Fr::from_i128(v), bits))
        .collect();
    let outs = relu_vec(&nums, cs);
    outs.iter()
        .map(|o| {
            o.expose_as_output(cs);
            o.value.to_i128().expect("bounded")
        })
        .collect()
}

/// Boolean-output helper shared with hard thresholding: `x ≥ 0`.
pub fn is_non_negative(x: &Num, cs: &mut ConstraintSystem<Fr>) -> Bit {
    is_negative(x, cs).not()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::PrimeField;

    #[test]
    fn relu_matches_reference() {
        for v in [-1000i128, -1, 0, 1, 5, 999] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = Num::alloc_witness(&mut cs, Fr::from_i128(v), 12);
            let y = relu(&x, &mut cs);
            assert_eq!(y.value_i128(), v.max(0), "v = {v}");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn relu_vec_preserves_order() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let vals = [-3i128, 7, -1, 0, 2];
        let outs = relu_circuit(&vals, 8, &mut cs);
        assert_eq!(outs, vec![0, 7, 0, 0, 2]);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn relu_constraint_count_scales_linearly() {
        let mut cs1 = ConstraintSystem::<Fr>::new();
        relu_circuit(&[1; 10], 32, &mut cs1);
        let mut cs2 = ConstraintSystem::<Fr>::new();
        relu_circuit(&[1; 20], 32, &mut cs2);
        assert_eq!(cs2.num_constraints(), 2 * cs1.num_constraints());
    }
}
