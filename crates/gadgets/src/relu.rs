//! Zero-knowledge ReLU: `f(x) = max(0, x)`.

use crate::bits::Bit;
use crate::cmp::is_negative;
use crate::num::Num;
use alloc::vec::Vec;
use zkrownn_ff::Fr;
use zkrownn_r1cs::{ConstraintSystem, SynthesisError};

/// ReLU on a single value: one sign decomposition plus one multiplexer.
pub fn relu<CS: ConstraintSystem<Fr>>(x: &Num, cs: &mut CS) -> Result<Num, SynthesisError> {
    let neg = is_negative(x, cs)?;
    let mut out = neg.select(&Num::zero(), x, cs)?;
    out.bits = x.bits;
    Ok(out)
}

/// ReLU applied element-wise.
pub fn relu_vec<CS: ConstraintSystem<Fr>>(
    xs: &[Num],
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    xs.iter().map(|x| relu(x, cs)).collect()
}

/// The "zkReLU" circuit of Table I: a private input vector passed through
/// ReLU with public outputs. Returns the output values (computed out of
/// circuit from `inputs`, so the helper works under every driver) for the
/// verifier.
pub fn relu_circuit<CS: ConstraintSystem<Fr>>(
    inputs: &[i128],
    bits: u32,
    cs: &mut CS,
) -> Result<Vec<i128>, SynthesisError> {
    use zkrownn_ff::PrimeField;
    let nums: Vec<Num> = inputs
        .iter()
        .map(|&v| Num::alloc_witness(cs, || Ok(Fr::from_i128(v)), bits))
        .collect::<Result<_, _>>()?;
    let outs = relu_vec(&nums, cs)?;
    for o in &outs {
        o.expose_as_output(cs)?;
    }
    Ok(inputs.iter().map(|&v| v.max(0)).collect())
}

/// Boolean-output helper shared with hard thresholding: `x ≥ 0`.
pub fn is_non_negative<CS: ConstraintSystem<Fr>>(
    x: &Num,
    cs: &mut CS,
) -> Result<Bit, SynthesisError> {
    Ok(is_negative(x, cs)?.not())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::PrimeField;
    use zkrownn_r1cs::{CountingSynthesizer, ProvingSynthesizer};

    #[test]
    fn relu_matches_reference() {
        for v in [-1000i128, -1, 0, 1, 5, 999] {
            let mut cs = ProvingSynthesizer::<Fr>::new();
            let x = Num::alloc_witness(&mut cs, || Ok(Fr::from_i128(v)), 12).unwrap();
            let y = relu(&x, &mut cs).unwrap();
            assert_eq!(y.value_i128(), v.max(0), "v = {v}");
            assert!(cs.is_satisfied().is_ok());
        }
    }

    #[test]
    fn relu_vec_preserves_order() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let vals = [-3i128, 7, -1, 0, 2];
        let outs = relu_circuit(&vals, 8, &mut cs).unwrap();
        assert_eq!(outs, vec![0, 7, 0, 0, 2]);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn relu_constraint_count_scales_linearly() {
        let mut cs1 = CountingSynthesizer::<Fr>::new();
        relu_circuit(&[1; 10], 32, &mut cs1).unwrap();
        let mut cs2 = CountingSynthesizer::<Fr>::new();
        relu_circuit(&[1; 20], 32, &mut cs2).unwrap();
        assert_eq!(cs2.num_constraints(), 2 * cs1.num_constraints());
    }
}
