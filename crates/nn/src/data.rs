//! Synthetic datasets.
//!
//! The offline build environment cannot ship MNIST/CIFAR-10, so the
//! benchmarks are driven by *class-conditional Gaussian mixtures* of
//! identical shape (784-dim vectors / 3×32×32 volumes, 10 classes). This is
//! a faithful substitution for the watermarking study: DeepSigns models the
//! hidden activations as a Gaussian Mixture Model and embeds the signature
//! in the mixture means, so data that is an actual GMM in input space
//! exercises exactly the statistical structure the scheme relies on.

use crate::tensor::Tensor;
use rand::Rng;

/// A labelled synthetic classification dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Input tensors.
    pub xs: Vec<Tensor>,
    /// Integer class labels.
    pub ys: Vec<usize>,
    /// Shape of each input.
    pub input_shape: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

/// Configuration for synthetic Gaussian-mixture data.
#[derive(Clone, Debug)]
pub struct GmmConfig {
    /// Input shape (e.g. `[784]` or `[3, 32, 32]`).
    pub input_shape: Vec<usize>,
    /// Number of classes / mixture components.
    pub num_classes: usize,
    /// Distance scale of the class means.
    pub mean_scale: f32,
    /// Within-class noise standard deviation.
    pub noise_std: f32,
}

impl GmmConfig {
    /// MNIST-shaped configuration (784-dim, 10 classes).
    pub fn mnist_like() -> Self {
        Self {
            input_shape: vec![784],
            num_classes: 10,
            mean_scale: 1.0,
            noise_std: 0.35,
        }
    }

    /// CIFAR-10-shaped configuration (3×32×32, 10 classes).
    pub fn cifar_like() -> Self {
        Self {
            input_shape: vec![3, 32, 32],
            num_classes: 10,
            mean_scale: 1.0,
            noise_std: 0.35,
        }
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos()
}

/// Samples a dataset of `n` points from a fresh random mixture.
pub fn generate_gmm<R: Rng + ?Sized>(cfg: &GmmConfig, n: usize, rng: &mut R) -> Dataset {
    let dim: usize = cfg.input_shape.iter().product();
    // class means
    let means: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|_| (0..dim).map(|_| gaussian(rng) * cfg.mean_scale).collect())
        .collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % cfg.num_classes; // balanced
        let data: Vec<f32> = means[class]
            .iter()
            .map(|&m| m + gaussian(rng) * cfg.noise_std)
            .collect();
        xs.push(Tensor::from_vec(&cfg.input_shape, data));
        ys.push(class);
    }
    Dataset {
        xs,
        ys,
        input_shape: cfg.input_shape.clone(),
        num_classes: cfg.num_classes,
    }
}

impl Dataset {
    /// Splits off the last `n` samples as a held-out set.
    pub fn split_off(&mut self, n: usize) -> Dataset {
        let cut = self.xs.len().saturating_sub(n);
        Dataset {
            xs: self.xs.split_off(cut),
            ys: self.ys.split_off(cut),
            input_shape: self.input_shape.clone(),
            num_classes: self.num_classes,
        }
    }

    /// The first `n` samples (used to pick DeepSigns trigger keys, which
    /// the scheme draws as ~1% of the training data).
    pub fn subset(&self, n: usize) -> (Vec<Tensor>, Vec<usize>) {
        (
            self.xs.iter().take(n).cloned().collect(),
            self.ys.iter().take(n).copied().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_balanced_labels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(211);
        let ds = generate_gmm(&GmmConfig::mnist_like(), 100, &mut rng);
        for c in 0..10 {
            assert_eq!(ds.ys.iter().filter(|&&y| y == c).count(), 10);
        }
        assert_eq!(ds.xs[0].shape(), &[784]);
    }

    #[test]
    fn cifar_like_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(212);
        let ds = generate_gmm(&GmmConfig::cifar_like(), 10, &mut rng);
        assert_eq!(ds.xs[0].shape(), &[3, 32, 32]);
    }

    #[test]
    fn classes_are_separable() {
        // same-class pairs should be closer than cross-class pairs on average
        let mut rng = rand::rngs::StdRng::seed_from_u64(213);
        let ds = generate_gmm(&GmmConfig::mnist_like(), 200, &mut rng);
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        let mut same = 0.0;
        let mut same_n = 0;
        let mut diff = 0.0;
        let mut diff_n = 0;
        for i in 0..50 {
            for j in (i + 1)..50 {
                let d = dist(&ds.xs[i], &ds.xs[j]);
                if ds.ys[i] == ds.ys[j] {
                    same += d;
                    same_n += 1;
                } else {
                    diff += d;
                    diff_n += 1;
                }
            }
        }
        assert!(same / same_n as f32 * 2.0 < diff / diff_n as f32);
    }

    #[test]
    fn split_off_preserves_totals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(214);
        let mut ds = generate_gmm(&GmmConfig::mnist_like(), 50, &mut rng);
        let held = ds.split_off(10);
        assert_eq!(ds.xs.len(), 40);
        assert_eq!(held.xs.len(), 10);
    }
}
