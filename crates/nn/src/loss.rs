//! Loss functions.

use crate::tensor::Tensor;

/// Softmax cross-entropy against an integer label; returns
/// `(loss, ∂loss/∂logits)`.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let max = logits
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -probs[label].max(1e-12).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, Tensor::from_vec(logits.shape(), grad))
}

/// Binary cross-entropy of a sigmoid probability `p` against a bit target;
/// returns `(loss, ∂loss/∂p)`.
pub fn binary_cross_entropy(p: f32, target: bool) -> (f32, f32) {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    let t = if target { 1.0 } else { 0.0 };
    let loss = -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
    let grad = (p - t) / (p * (1.0 - p));
    (loss, grad)
}

/// The logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ce_prefers_correct_class() {
        let good = Tensor::from_vec(&[3], vec![5.0, 0.0, 0.0]);
        let bad = Tensor::from_vec(&[3], vec![0.0, 5.0, 0.0]);
        let (l_good, _) = softmax_cross_entropy(&good, 0);
        let (l_bad, _) = softmax_cross_entropy(&bad, 0);
        assert!(l_good < l_bad);
    }

    #[test]
    fn softmax_ce_grad_sums_to_zero() {
        let logits = Tensor::from_vec(&[4], vec![0.3, -1.0, 2.0, 0.1]);
        let (_, g) = softmax_cross_entropy(&logits, 2);
        let s: f32 = g.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_grad_matches_numeric() {
        let logits = Tensor::from_vec(&[3], vec![0.5, -0.2, 1.1]);
        let (_, g) = softmax_cross_entropy(&logits, 1);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (softmax_cross_entropy(&lp, 1).0 - softmax_cross_entropy(&lm, 1).0) / (2.0 * eps);
            assert!((g.data()[i] - num).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_grad_sign() {
        // predicting 0.9 for target 0 → positive gradient (push p down)
        let (_, g) = binary_cross_entropy(0.9, false);
        assert!(g > 0.0);
        let (_, g2) = binary_cross_entropy(0.1, true);
        assert!(g2 < 0.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }
}
