//! # zkrownn-nn — neural-network substrate
//!
//! A compact, dependency-free neural-network library sufficient to *train*
//! the paper's Table II benchmark models (an MNIST-shaped MLP and a
//! CIFAR-shaped CNN): dense/convolution/pooling layers with full backprop,
//! sample-wise SGD, softmax cross-entropy, and synthetic Gaussian-mixture
//! datasets standing in for MNIST/CIFAR-10 in the offline environment.
//!
//! The API surface DeepSigns builds on:
//! * [`Network::forward_collect`] — per-layer activation capture,
//! * [`Network::backward`] with *injected gradients* at hidden layers — the
//!   hook for the watermark-embedding loss.
//!
//! ```
//! use zkrownn_nn::{Dense, Layer, Network, Tensor};
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Network::new(vec![
//!     Layer::Dense(Dense::new(4, 8, &mut rng)),
//!     Layer::ReLU,
//!     Layer::Dense(Dense::new(8, 2, &mut rng)),
//! ]);
//! let y = net.forward(&Tensor::zeros(&[4]));
//! assert_eq!(y.shape(), &[2]);
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod layers;
pub mod loss;
pub mod network;
pub mod tensor;

pub use data::{generate_gmm, Dataset, GmmConfig};
pub use layers::{Conv2d, Dense, Layer, LayerGrad};
pub use loss::{binary_cross_entropy, sigmoid, softmax_cross_entropy};
pub use network::Network;
pub use tensor::Tensor;
