//! Feed-forward networks: forward passes (with per-layer activation
//! capture, which DeepSigns needs) and SGD training with optional injected
//! gradients at hidden layers (which the watermark-embedding loss needs).

use crate::layers::{Layer, LayerGrad};
use crate::loss::softmax_cross_entropy;
use crate::tensor::Tensor;

/// A sequential feed-forward network.
#[derive(Clone, Debug)]
pub struct Network {
    /// The layer stack, applied in order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from a layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.layers.iter().fold(x.clone(), |h, l| l.forward(&h))
    }

    /// Forward pass returning the activation *after every layer*
    /// (`result[i]` is the output of `layers[i]`).
    pub fn forward_collect(&self, x: &Tensor) -> Vec<Tensor> {
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for l in &self.layers {
            h = l.forward(&h);
            acts.push(h.clone());
        }
        acts
    }

    /// Predicted class for a single input.
    pub fn predict(&self, x: &Tensor) -> usize {
        self.forward(x).argmax()
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&self, xs: &[Tensor], ys: &[usize]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    /// Full backward pass for one sample.
    ///
    /// `grad_output` is ∂L/∂(final activation); `injected` optionally adds
    /// extra gradient contributions at the outputs of specific hidden
    /// layers (layer index → gradient tensor) — this is how the DeepSigns
    /// embedding loss on intermediate activations joins the task loss.
    pub fn backward(
        &self,
        input: &Tensor,
        activations: &[Tensor],
        grad_output: &Tensor,
        injected: &[(usize, Tensor)],
    ) -> Vec<LayerGrad> {
        let n = self.layers.len();
        assert_eq!(activations.len(), n);
        let mut grads = vec![LayerGrad::default(); n];
        let mut grad = grad_output.clone();
        for i in (0..n).rev() {
            for (idx, extra) in injected {
                if *idx == i {
                    grad.add_scaled(extra, 1.0);
                }
            }
            let layer_input = if i == 0 { input } else { &activations[i - 1] };
            let (gx, gp) = self.layers[i].backward(layer_input, &grad);
            grads[i] = gp;
            grad = gx;
        }
        grads
    }

    /// One SGD step from accumulated gradients.
    pub fn apply_grads(&mut self, grads: &[LayerGrad], lr: f32) {
        for (layer, grad) in self.layers.iter_mut().zip(grads) {
            layer.apply_grad(grad, lr);
        }
    }

    /// Trains with softmax cross-entropy for `epochs` over the dataset,
    /// sample-at-a-time SGD. Returns the final mean loss.
    pub fn train(&mut self, xs: &[Tensor], ys: &[usize], epochs: usize, lr: f32) -> f32 {
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            for (x, &y) in xs.iter().zip(ys) {
                let acts = self.forward_collect(x);
                let logits = acts.last().expect("non-empty network");
                let (loss, grad) = softmax_cross_entropy(logits, y);
                total += loss;
                let grads = self.backward(x, &acts, &grad, &[]);
                self.apply_grads(&grads, lr);
            }
            last = total / xs.len() as f32;
        }
        last
    }

    /// Total parameter count.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.w.len() + d.b.len(),
                Layer::Conv2d(c) => c.w.len() + c.b.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use rand::SeedableRng;

    fn xor_network(seed: u64) -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(2, 8, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(8, 2, &mut rng)),
        ])
    }

    fn xor_data() -> (Vec<Tensor>, Vec<usize>) {
        let xs = vec![
            Tensor::from_vec(&[2], vec![0., 0.]),
            Tensor::from_vec(&[2], vec![0., 1.]),
            Tensor::from_vec(&[2], vec![1., 0.]),
            Tensor::from_vec(&[2], vec![1., 1.]),
        ];
        (xs, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut net = xor_network(201);
        let (xs, ys) = xor_data();
        net.train(&xs, &ys, 600, 0.1);
        assert_eq!(net.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn forward_collect_matches_forward() {
        let net = xor_network(202);
        let x = Tensor::from_vec(&[2], vec![0.3, -0.7]);
        let acts = net.forward_collect(&x);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts.last().unwrap(), &net.forward(&x));
    }

    #[test]
    fn injected_gradient_changes_training() {
        let mut a = xor_network(203);
        let mut b = a.clone();
        let x = Tensor::from_vec(&[2], vec![1., 0.]);
        let acts_a = a.forward_collect(&x);
        let (_, g) = softmax_cross_entropy(acts_a.last().unwrap(), 1);
        // a: plain; b: with an injected gradient at layer 0's output
        let grads_a = a.backward(&x, &acts_a, &g, &[]);
        let inj = Tensor::from_vec(&[8], vec![0.5; 8]);
        let grads_b = b.backward(&x, &acts_a, &g, &[(0, inj)]);
        a.apply_grads(&grads_a, 0.1);
        b.apply_grads(&grads_b, 0.1);
        let wa = match &a.layers[0] {
            Layer::Dense(d) => d.w.clone(),
            _ => unreachable!(),
        };
        let wb = match &b.layers[0] {
            Layer::Dense(d) => d.w.clone(),
            _ => unreachable!(),
        };
        assert_ne!(wa, wb);
    }

    #[test]
    fn parameter_count_for_paper_mlp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(204);
        // Table II: 784 - FC(512) - FC(512) - FC(10)
        let net = Network::new(vec![
            Layer::Dense(Dense::new(784, 512, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(512, 512, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(512, 10, &mut rng)),
        ]);
        assert_eq!(
            net.num_parameters(),
            784 * 512 + 512 + 512 * 512 + 512 + 512 * 10 + 10
        );
    }
}
