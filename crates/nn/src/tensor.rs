//! A minimal dense tensor (`f32`, row-major) sufficient for the paper's
//! benchmark networks.

use rand::Rng;

/// A dense row-major tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Kaiming-style random initialization for a layer with `fan_in` inputs.
    pub fn kaiming<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let std = (2.0 / fan_in as f32).sqrt();
        let data = (0..shape.iter().product())
            .map(|_| {
                // Box-Muller from two uniforms
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos() * std
            })
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place (volume must match).
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape volume mismatch"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape);
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// In-place scaled accumulation `self += alpha · other`.
    pub fn add_scaled(&mut self, other: &Self, alpha: f32) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Index of the maximum element.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Dense matrix-vector product: `w [out×in] · x [in] + b [out]`.
pub fn dense_forward(w: &Tensor, b: &Tensor, x: &Tensor) -> Tensor {
    let (out_dim, in_dim) = (w.shape()[0], w.shape()[1]);
    assert_eq!(x.len(), in_dim, "dense input dimension mismatch");
    assert_eq!(b.len(), out_dim);
    let mut out = vec![0.0f32; out_dim];
    for (o, out_o) in out.iter_mut().enumerate() {
        let row = &w.data()[o * in_dim..(o + 1) * in_dim];
        let mut acc = 0.0f32;
        for (wi, xi) in row.iter().zip(x.data()) {
            acc += wi * xi;
        }
        *out_o = acc + b.data()[o];
    }
    Tensor::from_vec(&[out_dim], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn from_vec_and_reshape() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1., 2., 3.]);
    }

    #[test]
    fn dense_forward_known_values() {
        let w = Tensor::from_vec(&[2, 3], vec![1., 0., -1., 2., 1., 0.]);
        let b = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let y = dense_forward(&w, &b, &x);
        assert_eq!(y.data(), &[1. - 3. + 0.5, 2. + 2. - 0.5]);
    }

    #[test]
    fn kaiming_has_reasonable_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(181);
        let t = Tensor::kaiming(&[100, 100], 100, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.02).abs() < 0.005, "var {var}"); // 2/fan_in = 0.02
    }

    #[test]
    fn argmax_and_mean() {
        let t = Tensor::from_vec(&[4], vec![0.1, 3.0, -2.0, 1.5]);
        assert_eq!(t.argmax(), 1);
        assert!((t.mean() - 0.65).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let b = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        a.add_scaled(&b, 0.5);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), b.data());
    }
}
