//! Network layers with forward and backward passes.
//!
//! Covers exactly what the paper's Table II benchmarks require: fully
//! connected layers, ReLU, 2-D convolution over channel-first volumes
//! (the "Conv3D" of the paper: 3-D input, per-kernel 3-D dot products),
//! max pooling and flattening.

use crate::tensor::{dense_forward, Tensor};
use rand::Rng;

/// A fully connected layer `y = Wx + b`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weights, shape `[out, in]`.
    pub w: Tensor,
    /// Bias, shape `[out]`.
    pub b: Tensor,
}

impl Dense {
    /// Kaiming-initialized dense layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w: Tensor::kaiming(&[out_dim, in_dim], in_dim, rng),
            b: Tensor::zeros(&[out_dim]),
        }
    }
}

/// A 2-D convolution layer over `C×H×W` volumes (valid padding).
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Kernels, shape `[oc, ic, k, k]`.
    pub w: Tensor,
    /// Bias, shape `[oc]`.
    pub b: Tensor,
    /// Stride.
    pub stride: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel side length.
    pub kernel: usize,
}

impl Conv2d {
    /// Kaiming-initialized convolution layer.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Self {
            w: Tensor::kaiming(&[out_channels, in_channels, kernel, kernel], fan_in, rng),
            b: Tensor::zeros(&[out_channels]),
            stride,
            in_channels,
            out_channels,
            kernel,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// One layer of a feed-forward network.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fully connected.
    Dense(Dense),
    /// Element-wise ReLU.
    ReLU,
    /// 2-D convolution (channel-first).
    Conv2d(Conv2d),
    /// Max pooling with square window.
    MaxPool2d {
        /// Window side length.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// Collapses `C×H×W` to a flat vector.
    Flatten,
}

/// Parameter gradients for one layer (empty for parameter-free layers).
#[derive(Clone, Debug, Default)]
pub struct LayerGrad {
    /// Gradient of the weights (if any).
    pub dw: Option<Tensor>,
    /// Gradient of the bias (if any).
    pub db: Option<Tensor>,
}

impl Layer {
    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Dense(d) => dense_forward(&d.w, &d.b, x),
            Layer::ReLU => {
                let data = x.data().iter().map(|&v| v.max(0.0)).collect();
                Tensor::from_vec(x.shape(), data)
            }
            Layer::Conv2d(c) => conv_forward(c, x),
            Layer::MaxPool2d { size, stride } => maxpool_forward(x, *size, *stride).0,
            Layer::Flatten => x.clone().reshape(&[x.len()]),
        }
    }

    /// Backward pass: given the layer input and ∂L/∂output, returns
    /// (∂L/∂input, parameter gradients).
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor) -> (Tensor, LayerGrad) {
        match self {
            Layer::Dense(d) => {
                let (out_dim, in_dim) = (d.w.shape()[0], d.w.shape()[1]);
                let mut dw = Tensor::zeros(&[out_dim, in_dim]);
                let mut dx = Tensor::zeros(&[in_dim]);
                for o in 0..out_dim {
                    let go = grad_out.data()[o];
                    for i in 0..in_dim {
                        dw.data_mut()[o * in_dim + i] = go * x.data()[i];
                        dx.data_mut()[i] += go * d.w.data()[o * in_dim + i];
                    }
                }
                let db = Tensor::from_vec(&[out_dim], grad_out.data().to_vec());
                (
                    dx,
                    LayerGrad {
                        dw: Some(dw),
                        db: Some(db),
                    },
                )
            }
            Layer::ReLU => {
                let data = x
                    .data()
                    .iter()
                    .zip(grad_out.data())
                    .map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 })
                    .collect();
                (Tensor::from_vec(x.shape(), data), LayerGrad::default())
            }
            Layer::Conv2d(c) => conv_backward(c, x, grad_out),
            Layer::MaxPool2d { size, stride } => {
                let (_, argmax) = maxpool_forward(x, *size, *stride);
                let mut dx = Tensor::zeros(x.shape());
                for (out_idx, &in_idx) in argmax.iter().enumerate() {
                    dx.data_mut()[in_idx] += grad_out.data()[out_idx];
                }
                (dx, LayerGrad::default())
            }
            Layer::Flatten => (grad_out.clone().reshape(x.shape()), LayerGrad::default()),
        }
    }

    /// Applies a gradient step `param -= lr · grad`.
    pub fn apply_grad(&mut self, grad: &LayerGrad, lr: f32) {
        match self {
            Layer::Dense(d) => {
                if let Some(dw) = &grad.dw {
                    d.w.add_scaled(dw, -lr);
                }
                if let Some(db) = &grad.db {
                    d.b.add_scaled(db, -lr);
                }
            }
            Layer::Conv2d(c) => {
                if let Some(dw) = &grad.dw {
                    c.w.add_scaled(dw, -lr);
                }
                if let Some(db) = &grad.db {
                    c.b.add_scaled(db, -lr);
                }
            }
            _ => {}
        }
    }
}

fn conv_forward(c: &Conv2d, x: &Tensor) -> Tensor {
    let (ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(ic, c.in_channels, "conv input channel mismatch");
    let (oh, ow) = c.out_hw(h, w);
    let k = c.kernel;
    let mut out = Tensor::zeros(&[c.out_channels, oh, ow]);
    for oc in 0..c.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = c.b.data()[oc];
                for ci in 0..ic {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * c.stride + ky;
                            let ix = ox * c.stride + kx;
                            acc += c.w.data()[((oc * ic + ci) * k + ky) * k + kx]
                                * x.data()[(ci * h + iy) * w + ix];
                        }
                    }
                }
                out.data_mut()[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

fn conv_backward(c: &Conv2d, x: &Tensor, grad_out: &Tensor) -> (Tensor, LayerGrad) {
    let (ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (oh, ow) = c.out_hw(h, w);
    let k = c.kernel;
    let mut dw = Tensor::zeros(c.w.shape());
    let mut db = Tensor::zeros(c.b.shape());
    let mut dx = Tensor::zeros(x.shape());
    for oc in 0..c.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let go = grad_out.data()[(oc * oh + oy) * ow + ox];
                db.data_mut()[oc] += go;
                for ci in 0..ic {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy * c.stride + ky;
                            let ix = ox * c.stride + kx;
                            dw.data_mut()[((oc * ic + ci) * k + ky) * k + kx] +=
                                go * x.data()[(ci * h + iy) * w + ix];
                            dx.data_mut()[(ci * h + iy) * w + ix] +=
                                go * c.w.data()[((oc * ic + ci) * k + ky) * k + kx];
                        }
                    }
                }
            }
        }
    }
    (
        dx,
        LayerGrad {
            dw: Some(dw),
            db: Some(db),
        },
    )
}

/// Returns pooled output and, for each output element, the flat input index
/// of its maximum (for gradient routing).
fn maxpool_forward(x: &Tensor, size: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let oh = (h - size) / stride + 1;
    let ow = (w - size) / stride + 1;
    let mut out = Tensor::zeros(&[c, oh, ow]);
    let mut argmax = vec![0usize; c * oh * ow];
    for ci in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..size {
                    for kx in 0..size {
                        let idx = (ci * h + oy * stride + ky) * w + ox * stride + kx;
                        if x.data()[idx] > best {
                            best = x.data()[idx];
                            best_idx = idx;
                        }
                    }
                }
                out.data_mut()[(ci * oh + oy) * ow + ox] = best;
                argmax[(ci * oh + oy) * ow + ox] = best_idx;
            }
        }
    }
    (out, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn numeric_grad<F: Fn(&Tensor) -> f32>(x: &Tensor, f: F) -> Tensor {
        let eps = 1e-3f32;
        let mut g = Tensor::zeros(x.shape());
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
        g
    }

    #[test]
    fn dense_backward_matches_numeric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(191);
        let layer = Layer::Dense(Dense::new(4, 3, &mut rng));
        let x = Tensor::kaiming(&[4], 4, &mut rng);
        // loss = sum of outputs
        let (dx, _) = layer.backward(&x, &Tensor::from_vec(&[3], vec![1.0; 3]));
        let num = numeric_grad(&x, |xv| layer.forward(xv).data().iter().sum());
        for (a, b) in dx.data().iter().zip(num.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_backward_matches_numeric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(192);
        let conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let layer = Layer::Conv2d(conv);
        let x = Tensor::kaiming(&[2, 5, 5], 50, &mut rng);
        let out_len = 3 * 3 * 3;
        let (dx, _) = layer.backward(&x, &Tensor::from_vec(&[3, 3, 3], vec![1.0; out_len]));
        let num = numeric_grad(&x, |xv| layer.forward(xv).data().iter().sum());
        for (a, b) in dx.data().iter().zip(num.data()) {
            assert!((a - b).abs() < 2e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_weight_grad_matches_numeric() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(193);
        let conv = Conv2d::new(1, 2, 2, 1, &mut rng);
        let x = Tensor::kaiming(&[1, 4, 4], 16, &mut rng);
        let layer = Layer::Conv2d(conv.clone());
        let out_len = 2 * 3 * 3;
        let (_, grad) = layer.backward(&x, &Tensor::from_vec(&[2, 3, 3], vec![1.0; out_len]));
        let dw = grad.dw.unwrap();
        // numeric gradient w.r.t. one kernel weight
        for wi in [0usize, 3, 7] {
            let eps = 1e-3f32;
            let mut cp = conv.clone();
            cp.w.data_mut()[wi] += eps;
            let fp: f32 = Layer::Conv2d(cp).forward(&x).data().iter().sum();
            let mut cm = conv.clone();
            cm.w.data_mut()[wi] -= eps;
            let fm: f32 = Layer::Conv2d(cm).forward(&x).data().iter().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (dw.data()[wi] - num).abs() < 2e-2,
                "{} vs {num}",
                dw.data()[wi]
            );
        }
    }

    #[test]
    fn relu_and_maxpool_shapes() {
        let x = Tensor::from_vec(&[1, 4, 4], (0..16).map(|v| v as f32 - 8.0).collect());
        let r = Layer::ReLU.forward(&x);
        assert!(r.data().iter().all(|&v| v >= 0.0));
        let p = Layer::MaxPool2d { size: 2, stride: 2 }.forward(&x);
        assert_eq!(p.shape(), &[1, 2, 2]);
        // max of each 2×2 block of 0..16 grid
        assert_eq!(p.data(), &[5.0 - 8.0, 7.0 - 8.0, 13.0 - 8.0, 15.0 - 8.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let layer = Layer::MaxPool2d { size: 2, stride: 1 };
        let (dx, _) = layer.backward(&x, &Tensor::from_vec(&[1, 1, 1], vec![2.0]));
        assert_eq!(dx.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_output_geometry_matches_paper_cnn() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(194);
        // C(32, 3, 2) on 3×32×32 (first layer of the Table II CNN)
        let conv = Conv2d::new(3, 32, 3, 2, &mut rng);
        let x = Tensor::zeros(&[3, 32, 32]);
        let y = Layer::Conv2d(conv).forward(&x);
        assert_eq!(y.shape(), &[32, 15, 15]);
    }
}
