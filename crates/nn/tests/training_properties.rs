//! Property-based tests of the NN substrate: gradient sanity and tensor
//! algebra invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_nn::{softmax_cross_entropy, Dense, Layer, Network, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sgd_step_reduces_sample_loss(seed in 0u64..500, label in 0usize..3) {
        // one gradient step on one sample must not increase that sample's loss
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(6, 8, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(8, 3, &mut rng)),
        ]);
        let x = Tensor::kaiming(&[6], 6, &mut rng);
        let acts = net.forward_collect(&x);
        let (loss_before, grad) = softmax_cross_entropy(acts.last().unwrap(), label);
        let grads = net.backward(&x, &acts, &grad, &[]);
        net.apply_grads(&grads, 0.01);
        let (loss_after, _) = softmax_cross_entropy(&net.forward(&x), label);
        prop_assert!(loss_after <= loss_before + 1e-4,
            "loss rose from {loss_before} to {loss_after}");
    }

    #[test]
    fn softmax_ce_loss_is_nonnegative(logits in prop::collection::vec(-10f32..10.0, 2..8)) {
        let n = logits.len();
        let t = Tensor::from_vec(&[n], logits);
        let (loss, grad) = softmax_cross_entropy(&t, 0);
        prop_assert!(loss >= 0.0);
        // gradient entries lie in [-1, 1]
        prop_assert!(grad.data().iter().all(|g| (-1.0..=1.0).contains(g)));
    }

    #[test]
    fn relu_forward_idempotent(vals in prop::collection::vec(-5f32..5.0, 1..32)) {
        let n = vals.len();
        let t = Tensor::from_vec(&[n], vals);
        let once = Layer::ReLU.forward(&t);
        let twice = Layer::ReLU.forward(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tensor_add_scaled_linear(a in prop::collection::vec(-3f32..3.0, 4), alpha in -2f32..2.0) {
        let t = Tensor::from_vec(&[4], a.clone());
        let mut acc = Tensor::zeros(&[4]);
        acc.add_scaled(&t, alpha);
        for (x, y) in acc.data().iter().zip(&a) {
            prop_assert!((x - alpha * y).abs() < 1e-5);
        }
    }
}
