//! The BN254 scalar field `Fr` (the SNARK "constraint field").
//!
//! `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`
//!
//! `r − 1` has 2-adicity 28, enabling radix-2 FFTs over domains of size up to
//! 2²⁸ — far larger than any circuit in the paper (the MNIST-MLP needs 2²¹).

use crate::bigint::BigInt256;
use crate::fp::{Fp, FpParams};

/// Parameters of the BN254 scalar field.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct FrParams;

impl FpParams for FrParams {
    /// 0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001
    const MODULUS: BigInt256 = BigInt256([
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ]);
    const GENERATOR: u64 = 5;
    const TWO_ADICITY: u32 = 28;
}

/// An element of the BN254 scalar field.
pub type Fr = Fp<FrParams>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biguint::BigUint;
    use crate::traits::{Field, PrimeField};
    use rand::SeedableRng;

    const R_DEC: &str =
        "21888242871839275222246405745257275088548364400416034343698204186575808495617";

    #[test]
    fn modulus_matches_published_decimal() {
        let r = BigUint::from_limbs(&FrParams::MODULUS.0);
        assert_eq!(r.to_decimal(), R_DEC);
    }

    #[test]
    fn two_adicity_is_28() {
        let r_min_1 = BigUint::from_limbs(&FrParams::MODULUS.0).sub(&BigUint::one());
        let mut v = r_min_1;
        let mut s = 0;
        loop {
            let (q, rem) = v.div_rem_u64(2);
            if rem != 0 {
                break;
            }
            v = q;
            s += 1;
        }
        assert_eq!(s, 28);
    }

    #[test]
    fn two_adic_root_has_exact_order() {
        let w = Fr::two_adic_root_of_unity();
        // w^(2^28) == 1
        let mut x = w;
        for _ in 0..28 {
            x = x.square();
        }
        assert!(x.is_one());
        // w^(2^27) != 1 (primitivity)
        let mut y = w;
        for _ in 0..27 {
            y = y.square();
        }
        assert!(!y.is_one());
    }

    #[test]
    fn generator_is_nonresidue() {
        let g = Fr::multiplicative_generator();
        let half = FrParams::MODULUS.sub_with_borrow(&BigInt256::ONE).0.shr(1);
        assert_eq!(g.pow(&half.0), -Fr::one());
    }

    #[test]
    fn field_axioms_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            assert_eq!((a + b) - b, a);
            assert_eq!(
                a * b * b.inverse().unwrap_or(Fr::one()),
                if b.is_zero() { a * b } else { a }
            );
        }
    }

    #[test]
    fn batch_inverse_matches_individual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut v: Vec<Fr> = (0..33).map(|_| Fr::random(&mut rng)).collect();
        v[7] = Fr::zero(); // zeros must be skipped
        let expected: Vec<Fr> = v
            .iter()
            .map(|x| x.inverse().unwrap_or(Fr::zero()))
            .collect();
        Fr::batch_inverse(&mut v);
        for (got, want) in v.iter().zip(expected.iter()) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn from_u128_matches_composition() {
        let v: u128 = (1u128 << 100) + 12345;
        let direct = Fr::from_u128(v);
        let composed =
            Fr::from_u64((v >> 64) as u64) * Fr::from_u64(2).pow(&[64]) + Fr::from_u64(v as u64);
        assert_eq!(direct, composed);
    }
}
