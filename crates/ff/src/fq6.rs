//! Cubic extension `Fq6 = Fq2[v] / (v³ − ξ)` with `ξ = 9 + u`.

use crate::fq2::Fq2;
use crate::frobenius;
use crate::traits::Field;

/// An element `c0 + c1·v + c2·v²` of `Fq6`, where `v³ = ξ`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fq6 {
    /// Coefficient of 1.
    pub c0: Fq2,
    /// Coefficient of `v`.
    pub c1: Fq2,
    /// Coefficient of `v²`.
    pub c2: Fq2,
}

impl Fq6 {
    /// Creates the element `c0 + c1·v + c2·v²`.
    #[inline]
    pub const fn new(c0: Fq2, c1: Fq2, c2: Fq2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Multiplies by `v` (the Fq12-level non-residue):
    /// `(c0 + c1 v + c2 v²)·v = ξ·c2 + c0·v + c1·v²`.
    #[inline]
    pub fn mul_by_nonresidue(&self) -> Self {
        Self::new(self.c2.mul_by_nonresidue(), self.c0, self.c1)
    }

    /// Multiplies every coefficient by an `Fq2` scalar.
    #[inline]
    pub fn mul_by_fq2(&self, s: Fq2) -> Self {
        Self::new(self.c0 * s, self.c1 * s, self.c2 * s)
    }

    /// Applies the Frobenius endomorphism `x ↦ x^(q^power)`.
    pub fn frobenius_map(&self, power: usize) -> Self {
        let mut r = *self;
        for _ in 0..power {
            r = Self::new(
                r.c0.frobenius_map(1),
                r.c1.frobenius_map(1) * frobenius::fq6_c1(),
                r.c2.frobenius_map(1) * frobenius::fq6_c2(),
            );
        }
        r
    }
}

impl core::ops::Add for Fq6 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1, self.c2 + rhs.c2)
    }
}

impl core::ops::Sub for Fq6 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1, self.c2 - rhs.c2)
    }
}

impl core::ops::Mul for Fq6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom-style schoolbook with v³ = ξ:
        // c0 = a0b0 + ξ(a1b2 + a2b1)
        // c1 = a0b1 + a1b0 + ξ a2b2
        // c2 = a0b2 + a1b1 + a2b0
        let v00 = self.c0 * rhs.c0;
        let v01 = self.c0 * rhs.c1;
        let v02 = self.c0 * rhs.c2;
        let v10 = self.c1 * rhs.c0;
        let v11 = self.c1 * rhs.c1;
        let v12 = self.c1 * rhs.c2;
        let v20 = self.c2 * rhs.c0;
        let v21 = self.c2 * rhs.c1;
        let v22 = self.c2 * rhs.c2;
        Self::new(
            v00 + (v12 + v21).mul_by_nonresidue(),
            v01 + v10 + v22.mul_by_nonresidue(),
            v02 + v11 + v20,
        )
    }
}

impl core::ops::Neg for Fq6 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1, -self.c2)
    }
}

impl core::ops::AddAssign for Fq6 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fq6 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fq6 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl core::fmt::Debug for Fq6 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fq6({}, {}, {})", self.c0, self.c1, self.c2)
    }
}

impl core::fmt::Display for Fq6 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}) + ({})*v + ({})*v^2", self.c0, self.c1, self.c2)
    }
}

impl Field for Fq6 {
    #[inline]
    fn zero() -> Self {
        Self::new(Fq2::zero(), Fq2::zero(), Fq2::zero())
    }
    #[inline]
    fn one() -> Self {
        Self::new(Fq2::one(), Fq2::zero(), Fq2::zero())
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn inverse(&self) -> Option<Self> {
        // Standard cubic-extension inversion (e.g. Guide to Pairing-Based
        // Cryptography, Alg. 5.23).
        let t0 = self.c0.square() - (self.c1 * self.c2).mul_by_nonresidue();
        let t1 = self.c2.square().mul_by_nonresidue() - self.c0 * self.c1;
        let t2 = self.c1.square() - self.c0 * self.c2;
        let denom = self.c0 * t0 + ((self.c2 * t1 + self.c1 * t2).mul_by_nonresidue());
        let inv = denom.inverse()?;
        Some(Self::new(t0 * inv, t1 * inv, t2 * inv))
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng))
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Self::new(Fq2::from_u64(v), Fq2::zero(), Fq2::zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn v_cubed_is_xi() {
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        let v3 = v * v * v;
        assert_eq!(v3, Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero()));
    }

    #[test]
    fn mul_by_nonresidue_matches_mul_by_v() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let a = Fq6::random(&mut rng);
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        assert_eq!(a.mul_by_nonresidue(), a * v);
    }

    #[test]
    fn field_axioms_and_inverse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for _ in 0..20 {
            let a = Fq6::random(&mut rng);
            let b = Fq6::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq6::one());
            }
        }
    }

    #[test]
    fn frobenius_is_q_power() {
        use crate::fp::FpParams;
        use crate::fq::FqParams;
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let a = Fq6::random(&mut rng);
        assert_eq!(a.frobenius_map(1), a.pow(&FqParams::MODULUS.0));
    }

    #[test]
    fn frobenius_composes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let a = Fq6::random(&mut rng);
        assert_eq!(a.frobenius_map(1).frobenius_map(1), a.frobenius_map(2));
        assert_eq!(a.frobenius_map(6), a);
    }
}
