//! # zkrownn-ff — BN254 finite-field arithmetic
//!
//! Self-contained field arithmetic for the ZKROWNN reproduction: the BN254
//! (a.k.a. BN128 / alt_bn128) base field [`Fq`], scalar field [`Fr`], and the
//! pairing tower [`Fq2`] → [`Fq6`] → [`Fq12`], plus the fixed-width
//! [`BigInt256`] and arbitrary-precision [`BigUint`] integers that back them.
//!
//! Only the two moduli are hand-transcribed; every derived constant
//! (Montgomery `R`/`R²`/`-p⁻¹`, Frobenius coefficients, 2-adic roots of
//! unity) is computed from them, and the moduli themselves are cross-checked
//! against their published decimal expansions in unit tests.
//!
//! ```
//! use zkrownn_ff::{Field, Fr};
//! let a = Fr::from_u64(6);
//! let b = Fr::from_u64(7);
//! assert_eq!(a * b, Fr::from_u64(42));
//! assert_eq!(a * a.inverse().unwrap(), Fr::one());
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod backend;
pub mod bigint;
pub mod biguint;
pub mod cache;
pub mod fp;
pub mod fq;
pub mod fq12;
pub mod fq2;
pub mod fq6;
pub mod fr;
pub mod frobenius;
pub mod traits;

pub use backend::{ActiveBackend, FieldBackend, SchoolbookBackend, UnrolledBackend};
pub use bigint::BigInt256;
pub use biguint::BigUint;
pub use cache::Cached;
pub use fp::{Fp, FpParams};
pub use fq::{Fq, FqParams};
pub use fq12::Fq12;
pub use fq2::Fq2;
pub use fq6::Fq6;
pub use fr::{Fr, FrParams};
pub use traits::{Field, PrimeField, SquareRootField};
