//! Quadratic extension `Fq2 = Fq[u] / (u² + 1)`.

use crate::fq::Fq;
use crate::traits::{Field, SquareRootField};

/// An element `c0 + c1·u` of `Fq2`, where `u² = −1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fq2 {
    /// Coefficient of 1.
    pub c0: Fq,
    /// Coefficient of `u`.
    pub c1: Fq,
}

impl Fq2 {
    /// Creates the element `c0 + c1·u`.
    #[inline]
    pub const fn new(c0: Fq, c1: Fq) -> Self {
        Self { c0, c1 }
    }

    /// The distinguished non-residue `ξ = 9 + u` used to build `Fq6`.
    pub fn xi() -> Self {
        Self::new(Fq::from_u64(9), Fq::one())
    }

    /// Complex conjugation `c0 − c1·u` (this is also `x ↦ x^q`).
    #[inline]
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// Applies the Frobenius endomorphism `x ↦ x^(q^power)`.
    #[inline]
    pub fn frobenius_map(&self, power: usize) -> Self {
        if power % 2 == 1 {
            self.conjugate()
        } else {
            *self
        }
    }

    /// The norm `c0² + c1²` (an element of `Fq`).
    #[inline]
    pub fn norm(&self) -> Fq {
        self.c0.square() + self.c1.square()
    }

    /// Multiplies by a base-field scalar.
    #[inline]
    pub fn mul_by_fq(&self, s: Fq) -> Self {
        Self::new(self.c0 * s, self.c1 * s)
    }

    /// Multiplies by the non-residue `ξ = 9 + u`.
    ///
    /// `(a + b·u)(9 + u) = (9a − b) + (a + 9b)·u`
    #[inline]
    pub fn mul_by_nonresidue(&self) -> Self {
        let nine_a = self.c0.double().double().double() + self.c0;
        let nine_b = self.c1.double().double().double() + self.c1;
        Self::new(nine_a - self.c1, self.c0 + nine_b)
    }
}

impl core::ops::Add for Fq2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}

impl core::ops::Sub for Fq2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}

impl core::ops::Mul for Fq2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba with u² = −1:
        // (a0 + a1 u)(b0 + b1 u) = (a0b0 − a1b1) + ((a0+a1)(b0+b1) − a0b0 − a1b1) u
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let c0 = v0 - v1;
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}

impl core::ops::Neg for Fq2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}

impl core::ops::AddAssign for Fq2 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fq2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fq2 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl core::fmt::Debug for Fq2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fq2({} + {}*u)", self.c0, self.c1)
    }
}

impl core::fmt::Display for Fq2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} + {}*u", self.c0, self.c1)
    }
}

impl Field for Fq2 {
    #[inline]
    fn zero() -> Self {
        Self::new(Fq::zero(), Fq::zero())
    }
    #[inline]
    fn one() -> Self {
        Self::new(Fq::one(), Fq::zero())
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    #[inline]
    fn square(&self) -> Self {
        // (a + bu)² = (a+b)(a−b) + 2ab·u
        let ab = self.c0 * self.c1;
        Self::new((self.c0 + self.c1) * (self.c0 - self.c1), ab.double())
    }

    fn inverse(&self) -> Option<Self> {
        self.norm().inverse().map(|n| self.conjugate().mul_by_fq(n))
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq::random(rng), Fq::random(rng))
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Self::new(Fq::from_u64(v), Fq::zero())
    }
}

impl SquareRootField for Fq2 {
    /// Square root via the "complex method", valid because `u² = −1`.
    fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        if self.c1.is_zero() {
            // sqrt of a base-field element: either √c0 or √(−c0)·u.
            if let Some(r) = self.c0.sqrt() {
                return Some(Self::new(r, Fq::zero()));
            }
            return (-self.c0).sqrt().map(|r| Self::new(Fq::zero(), r));
        }
        // a = a0 + a1 u; |a| = a0² + a1² must be a square in Fq.
        let s = self.norm().sqrt()?;
        // x0² = (a0 + s)/2 or (a0 − s)/2, whichever is a QR.
        let mut alpha = (self.c0 + s).halve();
        let x0 = match alpha.sqrt() {
            Some(x) => x,
            None => {
                alpha = (self.c0 - s).halve();
                alpha.sqrt()?
            }
        };
        let x1 = self.c1 * x0.double().inverse()?;
        let cand = Self::new(x0, x1);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(u.square(), -Fq2::one());
    }

    #[test]
    fn field_axioms_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let a = Fq2::random(&mut rng);
            let b = Fq2::random(&mut rng);
            let c = Fq2::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq2::one());
            }
        }
    }

    #[test]
    fn frobenius_is_q_power() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let a = Fq2::random(&mut rng);
        use crate::fp::FpParams;
        use crate::fq::FqParams;
        let frob = a.frobenius_map(1);
        assert_eq!(frob, a.pow(&FqParams::MODULUS.0));
        assert_eq!(a.frobenius_map(2), a);
    }

    #[test]
    fn mul_by_nonresidue_matches_explicit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a = Fq2::random(&mut rng);
        assert_eq!(a.mul_by_nonresidue(), a * Fq2::xi());
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let mut found_nonsquare = false;
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            let sq = a.square();
            let r = sq.sqrt().expect("squares have roots");
            assert_eq!(r.square(), sq);
            if a.sqrt().is_none() {
                found_nonsquare = true;
            }
        }
        // about half of random elements are non-squares
        assert!(found_nonsquare);
    }

    #[test]
    fn sqrt_of_base_field_embeddings() {
        // ξ is known to be a non-residue? Not necessarily its embedding; just
        // exercise both branches of the c1 == 0 path.
        let four = Fq2::from_u64(4);
        let r = four.sqrt().unwrap();
        assert_eq!(r.square(), four);
    }
}
