//! Abstract field traits shared by the base field, scalar field and the
//! extension tower.

use crate::bigint::BigInt256;
use alloc::vec::Vec;
use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field.
///
/// All implementations in this workspace are `Copy` value types with
/// by-value operator overloads; elements are at most 384 bytes (Fq12), so
/// copying is cheap relative to the arithmetic itself.
pub trait Field:
    'static
    + Copy
    + Clone
    + Eq
    + PartialEq
    + Hash
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Returns true if `self` is the additive identity.
    fn is_zero(&self) -> bool;
    /// Returns true if `self` is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }
    /// Returns `2·self`.
    fn double(&self) -> Self {
        *self + *self
    }
    /// Returns `self²`.
    fn square(&self) -> Self {
        *self * *self
    }
    /// Returns the multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;
    /// Exponentiation by a little-endian limb-encoded exponent.
    fn pow(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for i in (0..exp.len() * 64).rev() {
            if started {
                res = res.square();
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                res *= *self;
                started = true;
            }
        }
        res
    }
    /// Samples a uniformly random element.
    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self;
    /// Embeds a small integer into the field.
    fn from_u64(v: u64) -> Self;

    /// Inverts a slice of elements in place using Montgomery's batch trick
    /// (one inversion + 3n multiplications). Zero entries are left untouched.
    fn batch_inverse(elems: &mut [Self]) {
        Self::batch_inverse_with_scratch(elems, &mut Vec::with_capacity(elems.len()));
    }

    /// [`Field::batch_inverse`] reusing a caller-provided prefix buffer —
    /// hot loops calling this repeatedly (the MSM's batch-affine rounds)
    /// avoid one allocation per call. `scratch` is cleared on entry.
    fn batch_inverse_with_scratch(elems: &mut [Self], scratch: &mut Vec<Self>) {
        // prefix[i] = product of all non-zero elems[..=i]
        scratch.clear();
        let prefix = scratch;
        let mut acc = Self::one();
        for e in elems.iter() {
            if !e.is_zero() {
                acc *= *e;
            }
            prefix.push(acc);
        }
        let mut inv = match acc.inverse() {
            Some(i) => i,
            None => return, // all elements zero
        };
        for i in (0..elems.len()).rev() {
            if elems[i].is_zero() {
                continue;
            }
            let prev = if i == 0 { Self::one() } else { prefix[i - 1] };
            let e_inv = inv * prev;
            inv *= elems[i];
            elems[i] = e_inv;
        }
    }
}

/// A prime-order field with a canonical integer representation.
pub trait PrimeField: Field + Ord + PartialOrd {
    /// The field modulus.
    const MODULUS: BigInt256;
    /// Number of bits in the modulus.
    const MODULUS_BIT_SIZE: u32;
    /// Largest `s` such that `2^s` divides `modulus − 1`.
    const TWO_ADICITY: u32;

    /// Converts a canonical integer below the modulus into a field element.
    /// Returns `None` if `v ≥ modulus`.
    fn from_bigint(v: BigInt256) -> Option<Self>;
    /// Returns the canonical integer representation in `[0, modulus)`.
    fn into_bigint(self) -> BigInt256;

    /// A generator of the full multiplicative group (used to derive roots of
    /// unity; verified at runtime to be a quadratic non-residue).
    fn multiplicative_generator() -> Self;

    /// A primitive `2^TWO_ADICITY`-th root of unity.
    fn two_adic_root_of_unity() -> Self {
        let exp = Self::MODULUS
            .sub_with_borrow(&BigInt256::ONE)
            .0
            .shr(Self::TWO_ADICITY);
        Self::multiplicative_generator().pow(&exp.0)
    }

    /// Little-endian canonical byte encoding.
    fn to_le_bytes(self) -> [u8; 32] {
        self.into_bigint().to_le_bytes()
    }

    /// Parses the canonical little-endian encoding; `None` if ≥ modulus.
    fn from_le_bytes(bytes: &[u8; 32]) -> Option<Self> {
        Self::from_bigint(BigInt256::from_le_bytes(bytes))
    }

    /// Embeds a signed 128-bit integer (negative values map to `p − |v|`).
    fn from_i128(v: i128) -> Self {
        if v >= 0 {
            Self::from_u128(v as u128)
        } else {
            -Self::from_u128(v.unsigned_abs())
        }
    }

    /// Embeds an unsigned 128-bit integer.
    fn from_u128(v: u128) -> Self {
        Self::from_u64((v >> 64) as u64) * Self::from_u64(1u64 << 32).square()
            + Self::from_u64(v as u64)
    }

    /// Interprets the element as a signed integer in `(-p/2, p/2]`,
    /// returning `None` if its magnitude exceeds 127 bits.
    ///
    /// This is the inverse of [`PrimeField::from_i128`] for in-range values
    /// and is used pervasively by the fixed-point gadget layer.
    fn to_i128(self) -> Option<i128> {
        let repr = self.into_bigint();
        let half = Self::MODULUS.shr(1);
        let (mag, neg) = if repr.const_cmp(&half) > 0 {
            (Self::MODULUS.sub_with_borrow(&repr).0, true)
        } else {
            (repr, false)
        };
        if mag.num_bits() > 127 {
            return None;
        }
        let v = (mag.0[1] as u128) << 64 | mag.0[0] as u128;
        Some(if neg { -(v as i128) } else { v as i128 })
    }
}

/// Fields in which square roots can be computed.
pub trait SquareRootField: Field {
    /// Returns a square root of `self` if one exists.
    fn sqrt(&self) -> Option<Self>;
}
