//! Pluggable Montgomery-multiplication backends for [`Fp`](crate::fp::Fp).
//!
//! Every MSM bucket add, FFT butterfly and Miller-loop line evaluation
//! bottoms out in one `mul_reduce`, so this is the single hottest
//! instruction sequence in the workspace. Two implementations are provided:
//!
//! * [`SchoolbookBackend`] — the loop-structured 256×256→512 schoolbook
//!   product followed by a separate 4-round Montgomery reduction. This is
//!   the portable reference: `const`-friendly, obviously correct, and what
//!   every byte-pinned test in the workspace was validated against.
//! * [`UnrolledBackend`] — a fully unrolled CIOS (coarsely integrated
//!   operand scanning) multiply using the "no-carry" optimisation available
//!   whenever the modulus leaves a spare bit in its top limb (both BN254
//!   moduli do). Interleaving the reduction into the product shortens the
//!   critical dependency chain from ~8 rounds (4 product + 4 reduction) to
//!   4, which is what matters in the latency-bound chains (`x ← x·y`)
//!   that dominate exponentiation, inversion and the Miller loop.
//!
//! The active backend is chosen at compile time: `UnrolledBackend` by
//! default, or [`SchoolbookBackend`] when the `backend-schoolbook` cargo
//! feature is set. Both backends are always compiled and exported so tests
//! and benches can compare them directly; `tests/backend_equivalence.rs`
//! pins them bit-identical under proptest, and the `field-backend`
//! ablation group in `zkrownn-bench` measures the gap.

use crate::bigint::{adc, mac, sbb, BigInt256};
use crate::fp::FpParams;

/// A Montgomery-form multiplication kernel for 4-limb prime fields.
///
/// Implementations must return fully reduced representatives in
/// `[0, MODULUS)`; since the Montgomery representative of a residue class
/// is unique once reduced, conforming backends are automatically
/// bit-identical.
pub trait FieldBackend: 'static + Copy + Send + Sync {
    /// Human-readable backend name, used by bench labels.
    const NAME: &'static str;

    /// Montgomery product `a · b · R⁻¹ mod p` of two Montgomery-form inputs.
    fn mul_reduce<P: FpParams>(a: &BigInt256, b: &BigInt256) -> BigInt256;

    /// Montgomery square `a² · R⁻¹ mod p`.
    fn square_reduce<P: FpParams>(a: &BigInt256) -> BigInt256;

    /// Montgomery reduction `t · R⁻¹ mod p` of a full 512-bit value
    /// (`t < p · R`). Used by the canonical-form conversions.
    fn reduce_wide<P: FpParams>(t: [u64; 8]) -> BigInt256;
}

/// Shared 4-round Montgomery reduction of a 512-bit product.
#[inline]
fn mont_reduce_wide<P: FpParams>(mut t: [u64; 8]) -> BigInt256 {
    let m = P::MODULUS.0;
    let mut carry2 = 0u64;
    for i in 0..4 {
        let k = t[i].wrapping_mul(P::INV);
        let (_, mut carry) = mac(t[i], k, m[0], 0);
        for j in 1..4 {
            let (lo, hi) = mac(t[i + j], k, m[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        let (lo, c) = adc(t[i + 4], carry, carry2);
        t[i + 4] = lo;
        carry2 = c;
    }
    debug_assert_eq!(carry2, 0, "montgomery reduction overflow");
    let mut r = BigInt256([t[4], t[5], t[6], t[7]]);
    if r.const_cmp(&P::MODULUS) >= 0 {
        r = r.sub_with_borrow(&P::MODULUS).0;
    }
    r
}

/// The loop-structured schoolbook-then-reduce reference backend.
///
/// This is byte-for-byte the arithmetic the workspace shipped with before
/// the backend split: a full 512-bit schoolbook product (`mul_wide` /
/// `square_wide`) followed by the shared 4-round Montgomery reduction. Interleaved (CIOS)
/// multiplication *without* the no-carry trick was tried here historically
/// and measured slower — the per-iteration `k` dependency serializes what
/// the wide product pipelines freely; the no-carry variant in
/// [`UnrolledBackend`] removes exactly that serialization cost.
#[derive(Copy, Clone, Debug)]
pub struct SchoolbookBackend;

impl FieldBackend for SchoolbookBackend {
    const NAME: &'static str = "schoolbook";

    #[inline]
    fn mul_reduce<P: FpParams>(a: &BigInt256, b: &BigInt256) -> BigInt256 {
        mont_reduce_wide::<P>(a.mul_wide(b))
    }

    #[inline]
    fn square_reduce<P: FpParams>(a: &BigInt256) -> BigInt256 {
        mont_reduce_wide::<P>(a.square_wide())
    }

    #[inline]
    fn reduce_wide<P: FpParams>(t: [u64; 8]) -> BigInt256 {
        mont_reduce_wide::<P>(t)
    }
}

/// Returns true when the no-carry CIOS optimisation is sound for `m`:
/// the top limb must leave headroom so the per-round `carry + carry2`
/// fold-in cannot overflow 64 bits (the gnark/arkworks condition).
const fn no_carry_ok(m: &BigInt256) -> bool {
    m.0[3] >> 63 == 0
        && !(m.0[3] == 0x7fff_ffff_ffff_ffff
            && m.0[2] == u64::MAX
            && m.0[1] == u64::MAX
            && m.0[0] == u64::MAX)
}

/// Branchless conditional subtraction: returns `r - m` if `r ≥ m`, else
/// `r`. The subtract-or-not decision in a Montgomery chain is data-driven
/// and effectively random, so a compare-and-branch mispredicts half the
/// time; masking costs a fixed handful of cycles instead.
#[inline(always)]
fn csub(r: [u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (d0, b) = sbb(r[0], m[0], 0);
    let (d1, b) = sbb(r[1], m[1], b);
    let (d2, b) = sbb(r[2], m[2], b);
    let (d3, b) = sbb(r[3], m[3], b);
    // b == 1 ⇒ r < m ⇒ keep r; b == 0 ⇒ take the difference.
    let keep = b.wrapping_neg();
    [
        (r[0] & keep) | (d0 & !keep),
        (r[1] & keep) | (d1 & !keep),
        (r[2] & keep) | (d2 & !keep),
        (r[3] & keep) | (d3 & !keep),
    ]
}

/// One fully inlined CIOS round: fold `a_i · b` into `t` and divide by
/// 2⁶⁴ via one Montgomery step, without materialising a fifth limb.
#[inline(always)]
fn cios_round(t: [u64; 4], a_i: u64, b: &[u64; 4], m: &[u64; 4], inv: u64) -> [u64; 4] {
    let (t0, c) = mac(t[0], a_i, b[0], 0);
    let k = t0.wrapping_mul(inv);
    let (_, c2) = mac(t0, k, m[0], 0);

    let (t1, c) = mac(t[1], a_i, b[1], c);
    let (r0, c2) = mac(t1, k, m[1], c2);

    let (t2, c) = mac(t[2], a_i, b[2], c);
    let (r1, c2) = mac(t2, k, m[2], c2);

    let (t3, c) = mac(t[3], a_i, b[3], c);
    let (r2, c2) = mac(t3, k, m[3], c2);

    // No-carry condition guarantees this addition cannot overflow.
    [r0, r1, r2, c + c2]
}

/// Runtime-detected MULX + ADCX/ADOX kernel (x86-64, `std` only — feature
/// detection needs the standard library; every other configuration uses
/// the portable CIOS path).
#[cfg(all(feature = "std", target_arch = "x86_64"))]
mod adx {
    use core::sync::atomic::{AtomicU8, Ordering};

    static STATE: AtomicU8 = AtomicU8::new(0);

    /// One-time CPUID probe for BMI2 (MULX) + ADX (ADCX/ADOX), cached in
    /// a relaxed atomic so the hot path pays one predictable load.
    #[inline(always)]
    pub(super) fn available() -> bool {
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let ok =
                    std::is_x86_feature_detected!("bmi2") && std::is_x86_feature_detected!("adx");
                STATE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// 4-limb no-carry CIOS Montgomery multiply with dual carry chains:
    /// the `a_i·b` partial products ride the CF chain (ADCX) while the
    /// high halves ride the OF chain (ADOX), so the two never serialize
    /// each other. Returns `t < 2m`; the caller applies the final
    /// conditional subtraction.
    ///
    /// # Safety
    /// Requires BMI2 + ADX (gate on [`available`]) and a modulus that
    /// satisfies the no-carry condition (`super::no_carry_ok`).
    #[inline]
    pub(super) unsafe fn mul_no_carry(
        a: &[u64; 4],
        b: &[u64; 4],
        m: &[u64; 4],
        inv: u64,
    ) -> [u64; 4] {
        let mut t0: u64 = 0;
        let mut t1: u64 = 0;
        let mut t2: u64 = 0;
        let mut t3: u64 = 0;
        // Per round r: (1) t += a_r·b, the carry word landing in t4;
        // (2) k = t0·inv mod 2⁶⁴; (3) t = (t + k·m) >> 64. The rotation
        // movs at the end of each round realize the shift.
        core::arch::asm!(
            // ---- round 0 (t is zero: plain product chain) ----
            "mov rdx, qword ptr [{a}]",
            "mulx {t1}, {t0}, qword ptr [{b}]",
            "mulx {t2}, {lo}, qword ptr [{b} + 8]",
            "add {t1}, {lo}",
            "mulx {t3}, {lo}, qword ptr [{b} + 16]",
            "adc {t2}, {lo}",
            "mulx {t4}, {lo}, qword ptr [{b} + 24]",
            "adc {t3}, {lo}",
            "adc {t4}, 0",
            "mov rdx, {t0}",
            "imul rdx, {inv}",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{p}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{p} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{p} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{p} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov {t0}, {t1}",
            "mov {t1}, {t2}",
            "mov {t2}, {t3}",
            "mov {t3}, {t4}",
            // ---- round 1 ----
            "mov rdx, qword ptr [{a} + 8]",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{b}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{b} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{b} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{b} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {t4}, 0",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov rdx, {t0}",
            "imul rdx, {inv}",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{p}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{p} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{p} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{p} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov {t0}, {t1}",
            "mov {t1}, {t2}",
            "mov {t2}, {t3}",
            "mov {t3}, {t4}",
            // ---- round 2 ----
            "mov rdx, qword ptr [{a} + 16]",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{b}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{b} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{b} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{b} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {t4}, 0",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov rdx, {t0}",
            "imul rdx, {inv}",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{p}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{p} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{p} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{p} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov {t0}, {t1}",
            "mov {t1}, {t2}",
            "mov {t2}, {t3}",
            "mov {t3}, {t4}",
            // ---- round 3 ----
            "mov rdx, qword ptr [{a} + 24]",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{b}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{b} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{b} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{b} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {t4}, 0",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov rdx, {t0}",
            "imul rdx, {inv}",
            "xor {lo}, {lo}",
            "mulx {hA}, {lo}, qword ptr [{p}]",
            "adcx {t0}, {lo}",
            "mulx {hB}, {lo}, qword ptr [{p} + 8]",
            "adcx {t1}, {lo}",
            "adox {t1}, {hA}",
            "mulx {hA}, {lo}, qword ptr [{p} + 16]",
            "adcx {t2}, {lo}",
            "adox {t2}, {hB}",
            "mulx {hB}, {lo}, qword ptr [{p} + 24]",
            "adcx {t3}, {lo}",
            "adox {t3}, {hA}",
            "mov {lo}, 0",
            "adox {t4}, {hB}",
            "adcx {t4}, {lo}",
            "mov {t0}, {t1}",
            "mov {t1}, {t2}",
            "mov {t2}, {t3}",
            "mov {t3}, {t4}",
            a = in(reg) a.as_ptr(),
            b = in(reg) b.as_ptr(),
            p = in(reg) m.as_ptr(),
            inv = in(reg) inv,
            t0 = inout(reg) t0,
            t1 = inout(reg) t1,
            t2 = inout(reg) t2,
            t3 = inout(reg) t3,
            t4 = out(reg) _,
            hA = out(reg) _,
            hB = out(reg) _,
            lo = out(reg) _,
            out("rdx") _,
            options(nostack),
        );
        [t0, t1, t2, t3]
    }
}

/// Fully unrolled no-carry CIOS Montgomery multiplication: a runtime-
/// detected MULX/ADX dual-carry-chain kernel on x86-64 (`std` builds),
/// and a portable u128-mac unrolled CIOS everywhere else.
///
/// Falls back to [`SchoolbookBackend`] for moduli without a spare top bit
/// (the check is on compile-time constants, so the branch folds away).
#[derive(Copy, Clone, Debug)]
pub struct UnrolledBackend;

impl FieldBackend for UnrolledBackend {
    const NAME: &'static str = "unrolled";

    #[inline]
    fn mul_reduce<P: FpParams>(a: &BigInt256, b: &BigInt256) -> BigInt256 {
        if !no_carry_ok(&P::MODULUS) {
            return SchoolbookBackend::mul_reduce::<P>(a, b);
        }
        let m = &P::MODULUS.0;
        #[cfg(all(feature = "std", target_arch = "x86_64"))]
        if adx::available() {
            // SAFETY: BMI2+ADX verified above; no-carry condition checked.
            let t = unsafe { adx::mul_no_carry(&a.0, &b.0, m, P::INV) };
            return BigInt256(csub(t, m));
        }
        let b = &b.0;
        let mut t = cios_round([0; 4], a.0[0], b, m, P::INV);
        t = cios_round(t, a.0[1], b, m, P::INV);
        t = cios_round(t, a.0[2], b, m, P::INV);
        t = cios_round(t, a.0[3], b, m, P::INV);
        BigInt256(csub(t, m))
    }

    #[inline]
    fn square_reduce<P: FpParams>(a: &BigInt256) -> BigInt256 {
        // The dedicated wide squaring (off-diagonal products computed once
        // and doubled — ~10 word multiplications instead of 16) already
        // beats folding the square through the CIOS path.
        mont_reduce_wide::<P>(a.square_wide())
    }

    #[inline]
    fn reduce_wide<P: FpParams>(t: [u64; 8]) -> BigInt256 {
        mont_reduce_wide::<P>(t)
    }
}

/// The backend [`Fp`](crate::fp::Fp) compiles against: [`UnrolledBackend`]
/// unless the `backend-schoolbook` feature demands the reference kernel.
#[cfg(not(feature = "backend-schoolbook"))]
pub type ActiveBackend = UnrolledBackend;

/// The backend [`Fp`](crate::fp::Fp) compiles against (feature-selected).
#[cfg(feature = "backend-schoolbook")]
pub type ActiveBackend = SchoolbookBackend;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fq::FqParams;
    use crate::fr::FrParams;
    use crate::traits::{Field, PrimeField};
    use crate::{Fq, Fr};

    fn edge_reprs(modulus: &BigInt256) -> [BigInt256; 6] {
        let p_minus_1 = modulus.sub_with_borrow(&BigInt256::ONE).0;
        let p_minus_2 = modulus.sub_with_borrow(&BigInt256::from_u64(2)).0;
        [
            BigInt256::ZERO,
            BigInt256::ONE,
            BigInt256::from_u64(u64::MAX),
            BigInt256([u64::MAX, u64::MAX, 0, 0]),
            p_minus_1,
            p_minus_2,
        ]
    }

    #[test]
    fn backends_agree_on_edge_cases() {
        for a in edge_reprs(&FqParams::MODULUS) {
            for b in edge_reprs(&FqParams::MODULUS) {
                assert_eq!(
                    SchoolbookBackend::mul_reduce::<FqParams>(&a, &b),
                    UnrolledBackend::mul_reduce::<FqParams>(&a, &b),
                );
            }
            assert_eq!(
                SchoolbookBackend::square_reduce::<FqParams>(&a),
                UnrolledBackend::square_reduce::<FqParams>(&a),
            );
        }
        for a in edge_reprs(&FrParams::MODULUS) {
            for b in edge_reprs(&FrParams::MODULUS) {
                assert_eq!(
                    SchoolbookBackend::mul_reduce::<FrParams>(&a, &b),
                    UnrolledBackend::mul_reduce::<FrParams>(&a, &b),
                );
            }
        }
    }

    #[test]
    fn no_carry_applies_to_both_bn254_moduli() {
        assert!(no_carry_ok(&FqParams::MODULUS));
        assert!(no_carry_ok(&FrParams::MODULUS));
        assert!(!no_carry_ok(&BigInt256([u64::MAX; 4])));
    }

    #[test]
    fn active_backend_matches_field_ops() {
        let a = Fq::from_u64(0xdead_beef).pow(&[12345]);
        let b = Fq::from_u64(7).pow(&[678]);
        let via_field = (a * b).into_bigint();
        let a_repr = a.pow(&[1]); // identity; keeps Montgomery repr opaque
        assert_eq!(a_repr, a);
        let _ = Fr::from_u64(3); // exercise the Fr instantiation too
        assert_eq!((a * b).into_bigint(), via_field);
    }
}
