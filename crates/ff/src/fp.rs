//! Generic Montgomery-form prime field over a 256-bit modulus.
//!
//! The only hand-transcribed datum per field is the modulus itself (plus a
//! small generator hint); `R`, `R²` and `-p⁻¹ mod 2⁶⁴` are derived by
//! `const fn` evaluation, and the 2-adic root of unity is derived at runtime.

use crate::backend::{ActiveBackend, FieldBackend};
use crate::bigint::{mont_inv64, mont_r, mont_r2, BigInt256};
use crate::traits::{Field, PrimeField, SquareRootField};
use core::marker::PhantomData;

/// Compile-time parameters describing a prime field.
pub trait FpParams:
    'static + Copy + Clone + Send + Sync + Eq + core::hash::Hash + core::fmt::Debug
{
    /// The prime modulus.
    const MODULUS: BigInt256;
    /// A small generator of the multiplicative group (hint; validated where
    /// it matters).
    const GENERATOR: u64;
    /// Largest `s` with `2^s | MODULUS - 1`.
    const TWO_ADICITY: u32;

    /// Montgomery constant `R = 2^256 mod p` (derived — do not override).
    const R: BigInt256 = mont_r(&Self::MODULUS);
    /// Montgomery constant `R² mod p` (derived — do not override).
    const R2: BigInt256 = mont_r2(&Self::MODULUS);
    /// `-p⁻¹ mod 2^64` (derived — do not override).
    const INV: u64 = mont_inv64(&Self::MODULUS);
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Fp<P: FpParams>(BigInt256, PhantomData<P>);

impl<P: FpParams> Fp<P> {
    /// Montgomery multiplication via the compile-time-selected
    /// [`FieldBackend`] (see [`crate::backend`] for the kernel menu).
    #[inline]
    fn mul_repr(a: &BigInt256, b: &BigInt256) -> BigInt256 {
        ActiveBackend::mul_reduce::<P>(a, b)
    }

    /// Montgomery squaring via the selected backend.
    #[inline]
    fn square_repr(a: &BigInt256) -> BigInt256 {
        ActiveBackend::square_reduce::<P>(a)
    }

    /// Returns the canonical (non-Montgomery) representation.
    #[inline]
    fn to_canonical(self) -> BigInt256 {
        let mut t = [0u64; 8];
        t[..4].copy_from_slice(&(self.0).0);
        ActiveBackend::reduce_wide::<P>(t)
    }

    /// Number of bits in the modulus.
    pub const fn modulus_bits() -> u32 {
        P::MODULUS.num_bits()
    }

    /// Halves the element (multiplies by 2⁻¹).
    pub fn halve(&self) -> Self {
        let mut r = self.0;
        let mut carry = 0u64;
        if r.is_odd() {
            let (s, c) = r.add_with_carry(&P::MODULUS);
            r = s;
            carry = c;
        }
        let mut out = r.shr(1);
        if carry == 1 {
            out.0[3] |= 1 << 63;
        }
        Self(out, PhantomData)
    }
}

impl<P: FpParams> Default for Fp<P> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<P: FpParams> core::fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp({})", self.to_canonical())
    }
}

impl<P: FpParams> core::fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_canonical())
    }
}

impl<P: FpParams> core::ops::Add for Fp<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let (mut sum, carry) = self.0.add_with_carry(&rhs.0);
        if carry == 1 || sum.const_cmp(&P::MODULUS) >= 0 {
            sum = sum.sub_with_borrow(&P::MODULUS).0;
        }
        Self(sum, PhantomData)
    }
}

impl<P: FpParams> core::ops::Sub for Fp<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.sub_with_borrow(&rhs.0);
        if borrow == 1 {
            Self(diff.add_with_carry(&P::MODULUS).0, PhantomData)
        } else {
            Self(diff, PhantomData)
        }
    }
}

impl<P: FpParams> core::ops::Mul for Fp<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(Self::mul_repr(&self.0, &rhs.0), PhantomData)
    }
}

impl<P: FpParams> core::ops::Neg for Fp<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0.is_zero() {
            self
        } else {
            Self(P::MODULUS.sub_with_borrow(&self.0).0, PhantomData)
        }
    }
}

impl<P: FpParams> core::ops::AddAssign for Fp<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<P: FpParams> core::ops::SubAssign for Fp<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<P: FpParams> core::ops::MulAssign for Fp<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<P: FpParams> Field for Fp<P> {
    #[inline]
    fn zero() -> Self {
        Self(BigInt256::ZERO, PhantomData)
    }

    #[inline]
    fn one() -> Self {
        Self(P::R, PhantomData)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    #[inline]
    fn square(&self) -> Self {
        Self(Self::square_repr(&self.0), PhantomData)
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // Fermat: a^(p-2). Adequate for our workloads; hot paths batch.
        let exp = P::MODULUS.sub_with_borrow(&BigInt256::from_u64(2)).0;
        let inv = self.pow(&exp.0);
        debug_assert!((inv * *self).is_one());
        Some(inv)
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let bits = P::MODULUS.num_bits();
        let top_mask = if bits % 64 == 0 {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut limbs = [0u64; 4];
            for l in limbs.iter_mut() {
                *l = rng.gen();
            }
            let top_limb = (bits.div_ceil(64) - 1) as usize;
            limbs[top_limb] &= top_mask;
            for l in limbs.iter_mut().skip(top_limb + 1) {
                *l = 0;
            }
            let candidate = BigInt256(limbs);
            if candidate.const_cmp(&P::MODULUS) < 0 {
                // Interpret the sample directly as a Montgomery representation;
                // the map x ↦ x·R⁻¹ is a bijection so uniformity is preserved.
                return Self(candidate, PhantomData);
            }
        }
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Self(Self::mul_repr(&BigInt256::from_u64(v), &P::R2), PhantomData)
    }
}

impl<P: FpParams> PartialOrd for Fp<P> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: FpParams> Ord for Fp<P> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.to_canonical().cmp(&other.to_canonical())
    }
}

impl<P: FpParams> PrimeField for Fp<P> {
    const MODULUS: BigInt256 = P::MODULUS;
    const MODULUS_BIT_SIZE: u32 = P::MODULUS.num_bits();
    const TWO_ADICITY: u32 = P::TWO_ADICITY;

    fn from_bigint(v: BigInt256) -> Option<Self> {
        if v.const_cmp(&P::MODULUS) >= 0 {
            None
        } else {
            Some(Self(Self::mul_repr(&v, &P::R2), PhantomData))
        }
    }

    fn into_bigint(self) -> BigInt256 {
        self.to_canonical()
    }

    fn multiplicative_generator() -> Self {
        // Validate the hint: we need a quadratic non-residue so the derived
        // 2^s-th root of unity is primitive. Fall back to a search if the
        // hint is a residue (cheap, happens once per call site).
        let half = P::MODULUS.sub_with_borrow(&BigInt256::ONE).0.shr(1);
        let mut g = P::GENERATOR;
        loop {
            let cand = Self::from_u64(g);
            if !cand.is_zero() && !cand.pow(&half.0).is_one() {
                return cand;
            }
            g += 1;
        }
    }
}

impl<P: FpParams> SquareRootField for Fp<P> {
    fn sqrt(&self) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        assert!(
            P::MODULUS.0[0] & 3 == 3,
            "sqrt is implemented only for p ≡ 3 (mod 4)"
        );
        // candidate = a^((p+1)/4)
        let exp = P::MODULUS.add_with_carry(&BigInt256::ONE).0.shr(2);
        let cand = self.pow(&exp.0);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A small-prime field for targeted unit tests: p = 2^61 - 1 won't work
    // (not ≡ 3 mod 4 requirements aside, we want realistic 4-limb flows), so
    // use the BN254 base field modulus directly via the crate's Fq params in
    // integration tests; here we test the reduction path with a tiny prime.
    #[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
    struct P23;
    impl FpParams for P23 {
        const MODULUS: BigInt256 = BigInt256([23, 0, 0, 0]);
        const GENERATOR: u64 = 5;
        const TWO_ADICITY: u32 = 1;
    }
    type F23 = Fp<P23>;

    #[test]
    fn small_field_table() {
        for a in 0..23u64 {
            for b in 0..23u64 {
                let fa = F23::from_u64(a);
                let fb = F23::from_u64(b);
                assert_eq!((fa + fb).into_bigint().0[0], (a + b) % 23);
                assert_eq!((fa * fb).into_bigint().0[0], (a * b) % 23);
                assert_eq!((fa - fb).into_bigint().0[0], (a + 23 - b) % 23);
            }
        }
    }

    #[test]
    fn small_field_inverse() {
        for a in 1..23u64 {
            let fa = F23::from_u64(a);
            let inv = fa.inverse().unwrap();
            assert!((fa * inv).is_one());
        }
        assert!(F23::zero().inverse().is_none());
    }

    #[test]
    fn small_field_sqrt() {
        // 23 ≡ 3 mod 4
        let mut roots = 0;
        for a in 0..23u64 {
            if let Some(r) = F23::from_u64(a).sqrt() {
                assert_eq!(r.square(), F23::from_u64(a));
                roots += 1;
            }
        }
        // 0 plus (p-1)/2 quadratic residues
        assert_eq!(roots, 1 + 11);
    }

    #[test]
    fn halve_matches_inverse_of_two() {
        let two_inv = F23::from_u64(2).inverse().unwrap();
        for a in 0..23u64 {
            let fa = F23::from_u64(a);
            assert_eq!(fa.halve(), fa * two_inv);
        }
    }
}
