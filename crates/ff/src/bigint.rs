//! Fixed-width 256-bit little-endian unsigned integers.
//!
//! [`BigInt256`] is the backing representation for the BN254 prime fields.
//! All helper arithmetic is written as `const fn` so that Montgomery
//! constants (`R`, `R²`, `-p⁻¹ mod 2⁶⁴`) can be *derived* from the modulus at
//! compile time instead of being transcribed by hand.

/// Add with carry: returns `(sum, carry_out)` for `a + b + carry`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let tmp = (a as u128) + (b as u128) + (carry as u128);
    (tmp as u64, (tmp >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow_out)` for `a - b - borrow`.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let tmp = (a as u128).wrapping_sub((b as u128) + (borrow as u128));
    (tmp as u64, ((tmp >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(lo, hi)` of `a + b * c + carry`.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let tmp = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (tmp as u64, (tmp >> 64) as u64)
}

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
///
/// This is a plain fixed-width integer (no modular semantics); the modular
/// arithmetic lives in [`crate::fp::Fp`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct BigInt256(pub [u64; 4]);

impl BigInt256 {
    /// The integer 0.
    pub const ZERO: Self = Self([0; 4]);
    /// The integer 1.
    pub const ONE: Self = Self([1, 0, 0, 0]);

    /// Creates a `BigInt256` from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        Self([v, 0, 0, 0])
    }

    /// Returns true if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns true if the value is odd.
    #[inline]
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns bit `i` (little-endian numbering). Bits ≥ 256 are zero.
    #[inline]
    pub const fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for the value 0).
    pub const fn num_bits(&self) -> u32 {
        let mut i = 3;
        loop {
            if self.0[i] != 0 {
                return 64 * (i as u32) + (64 - self.0[i].leading_zeros());
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Constant-friendly comparison: returns -1, 0, or 1.
    pub const fn const_cmp(&self, other: &Self) -> i8 {
        let mut i = 3;
        loop {
            if self.0[i] < other.0[i] {
                return -1;
            }
            if self.0[i] > other.0[i] {
                return 1;
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Wrapping addition, returning `(result, carry_out)`.
    pub const fn add_with_carry(&self, other: &Self) -> (Self, u64) {
        let (l0, c) = adc(self.0[0], other.0[0], 0);
        let (l1, c) = adc(self.0[1], other.0[1], c);
        let (l2, c) = adc(self.0[2], other.0[2], c);
        let (l3, c) = adc(self.0[3], other.0[3], c);
        (Self([l0, l1, l2, l3]), c)
    }

    /// Wrapping subtraction, returning `(result, borrow_out)`.
    pub const fn sub_with_borrow(&self, other: &Self) -> (Self, u64) {
        let (l0, b) = sbb(self.0[0], other.0[0], 0);
        let (l1, b) = sbb(self.0[1], other.0[1], b);
        let (l2, b) = sbb(self.0[2], other.0[2], b);
        let (l3, b) = sbb(self.0[3], other.0[3], b);
        (Self([l0, l1, l2, l3]), b)
    }

    /// Shift left by one bit, returning `(result, carry_out)`.
    pub const fn shl1(&self) -> (Self, u64) {
        let carry = self.0[3] >> 63;
        let l3 = (self.0[3] << 1) | (self.0[2] >> 63);
        let l2 = (self.0[2] << 1) | (self.0[1] >> 63);
        let l1 = (self.0[1] << 1) | (self.0[0] >> 63);
        let l0 = self.0[0] << 1;
        (Self([l0, l1, l2, l3]), carry)
    }

    /// Logical shift right by `n` bits (`n` < 256).
    pub const fn shr(&self, n: u32) -> Self {
        if n == 0 {
            return *self;
        }
        let limbs = (n / 64) as usize;
        let bits = n % 64;
        let mut out = [0u64; 4];
        let mut i = 0;
        while i + limbs < 4 {
            let mut v = self.0[i + limbs] >> bits;
            if bits > 0 && i + limbs + 1 < 4 {
                v |= self.0[i + limbs + 1] << (64 - bits);
            }
            out[i] = v;
            i += 1;
        }
        Self(out)
    }

    /// Full 256×256 → 512-bit schoolbook multiplication.
    pub const fn mul_wide(&self, other: &Self) -> [u64; 8] {
        let mut t = [0u64; 8];
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let (lo, hi) = mac(t[i + j], self.0[i], other.0[j], carry);
                t[i + j] = lo;
                carry = hi;
                j += 1;
            }
            t[i + 4] = carry;
            i += 1;
        }
        t
    }

    /// Full 256-bit → 512-bit squaring: off-diagonal partial products are
    /// computed once and doubled (10 word multiplications instead of the
    /// 16 a general [`Self::mul_wide`] pays).
    pub const fn square_wide(&self) -> [u64; 8] {
        let a = self.0;
        let mut t = [0u64; 8];
        // off-diagonal products a_i·a_j (i < j) accumulated at limb i+j
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u64;
            let mut j = i + 1;
            while j < 4 {
                let (lo, hi) = mac(t[i + j], a[i], a[j], carry);
                t[i + j] = lo;
                carry = hi;
                j += 1;
            }
            t[i + 4] = carry;
            i += 1;
        }
        // double the cross terms (left shift by one across the 512 bits;
        // t[0] holds no cross term and t[7] at most the shifted-in bit)
        t[7] = t[6] >> 63;
        let mut k = 6;
        while k > 1 {
            t[k] = (t[k] << 1) | (t[k - 1] >> 63);
            k -= 1;
        }
        t[1] <<= 1;
        // add the diagonal a_i² terms
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let (lo, hi) = mac(t[2 * i], a[i], a[i], carry);
            t[2 * i] = lo;
            let (lo, c) = adc(t[2 * i + 1], 0, hi);
            t[2 * i + 1] = lo;
            carry = c;
            i += 1;
        }
        t
    }

    /// Reads up to 64 bits starting at bit `shift` (little-endian). Bits at
    /// or beyond 256 read as zero. Shared by the windowed scalar recoders
    /// (Pippenger MSM, fixed-base keygen): `width ≤ 64`.
    #[inline]
    pub const fn bits64(&self, shift: usize, width: usize) -> u64 {
        if shift >= 256 {
            return 0;
        }
        let limb = shift / 64;
        let bit = shift % 64;
        let mut out = self.0[limb] >> bit;
        if bit + width > 64 && limb + 1 < 4 {
            out |= self.0[limb + 1] << (64 - bit);
        }
        if width >= 64 {
            out
        } else {
            out & ((1u64 << width) - 1)
        }
    }

    /// Little-endian byte encoding (32 bytes).
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Parses a little-endian 32-byte encoding.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *limb = u64::from_le_bytes(chunk);
        }
        Self(limbs)
    }
}

impl Ord for BigInt256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        match self.const_cmp(other) {
            -1 => core::cmp::Ordering::Less,
            0 => core::cmp::Ordering::Equal,
            _ => core::cmp::Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl core::fmt::Display for BigInt256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}",
            crate::biguint::BigUint::from_limbs(&self.0).to_decimal()
        )
    }
}

/// Doubles `v` modulo `modulus` (requires `v < modulus`).
pub const fn mod_double(v: BigInt256, modulus: &BigInt256) -> BigInt256 {
    let (d, carry) = v.shl1();
    if carry == 1 || d.const_cmp(modulus) >= 0 {
        d.sub_with_borrow(modulus).0
    } else {
        d
    }
}

/// Computes the Montgomery constant `R = 2^256 mod modulus`.
pub const fn mont_r(modulus: &BigInt256) -> BigInt256 {
    let mut r = BigInt256::ONE;
    let mut i = 0;
    while i < 256 {
        r = mod_double(r, modulus);
        i += 1;
    }
    r
}

/// Computes the Montgomery constant `R² = 2^512 mod modulus`.
pub const fn mont_r2(modulus: &BigInt256) -> BigInt256 {
    let mut r = mont_r(modulus);
    let mut i = 0;
    while i < 256 {
        r = mod_double(r, modulus);
        i += 1;
    }
    r
}

/// Computes `-modulus⁻¹ mod 2^64` (requires an odd modulus).
pub const fn mont_inv64(modulus: &BigInt256) -> u64 {
    // Newton iteration doubles the number of correct bits each round.
    let m0 = modulus.0[0];
    let mut inv = 1u64;
    let mut i = 0;
    while i < 63 {
        inv = inv.wrapping_mul(inv);
        inv = inv.wrapping_mul(m0);
        i += 1;
    }
    inv.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = BigInt256([u64::MAX, 5, 0, 123]);
        let b = BigInt256([17, u64::MAX, 42, 9]);
        let (sum, carry) = a.add_with_carry(&b);
        assert_eq!(carry, 0);
        let (diff, borrow) = sum.sub_with_borrow(&b);
        assert_eq!(borrow, 0);
        assert_eq!(diff, a);
    }

    #[test]
    fn sub_underflow_borrows() {
        let (r, borrow) = BigInt256::ZERO.sub_with_borrow(&BigInt256::ONE);
        assert_eq!(borrow, 1);
        assert_eq!(r, BigInt256([u64::MAX; 4]));
    }

    #[test]
    fn shl1_carries_across_limbs() {
        let v = BigInt256([1 << 63, 0, 0, 1 << 63]);
        let (r, carry) = v.shl1();
        assert_eq!(carry, 1);
        assert_eq!(r, BigInt256([0, 1, 0, 0]));
    }

    #[test]
    fn shr_across_limbs() {
        let v = BigInt256([0, 2, 0, 0]); // 2^65
        assert_eq!(v.shr(1), BigInt256([0, 1, 0, 0]));
        assert_eq!(v.shr(2), BigInt256([1 << 63, 0, 0, 0]));
        assert_eq!(v.shr(65), BigInt256::ONE);
        assert_eq!(v.shr(66), BigInt256::ZERO);
    }

    #[test]
    fn num_bits_examples() {
        assert_eq!(BigInt256::ZERO.num_bits(), 0);
        assert_eq!(BigInt256::ONE.num_bits(), 1);
        assert_eq!(BigInt256([0, 1, 0, 0]).num_bits(), 65);
        assert_eq!(BigInt256([0, 0, 0, 1 << 63]).num_bits(), 256);
    }

    #[test]
    fn ordering_is_big_endian_on_limbs() {
        let lo = BigInt256([u64::MAX, 0, 0, 0]);
        let hi = BigInt256([0, 1, 0, 0]);
        assert!(lo < hi);
        assert!(hi > lo);
        assert_eq!(hi.cmp(&hi), core::cmp::Ordering::Equal);
    }

    #[test]
    fn mul_wide_small_values() {
        let a = BigInt256::from_u64(u64::MAX);
        let t = a.mul_wide(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(t[0], 1);
        assert_eq!(t[1], u64::MAX - 1);
        assert_eq!(t[2], 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigInt256([1, 2, 3, 4]);
        assert_eq!(BigInt256::from_le_bytes(&v.to_le_bytes()), v);
    }

    #[test]
    fn mont_inv64_is_negative_inverse() {
        let m = BigInt256([0x3c208c16d87cfd47, 0, 0, 0]);
        let inv = mont_inv64(&m);
        assert_eq!(m.0[0].wrapping_mul(inv), u64::MAX /* -1 mod 2^64 */);
        assert_eq!(m.0[0].wrapping_mul(inv).wrapping_add(1), 0);
    }
}
