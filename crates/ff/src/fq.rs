//! The BN254 base field `Fq`.
//!
//! `q = 21888242871839275222246405745257275088696311157297823662689037894645226208583`
//!
//! This is the field over which the curve `E: y² = x³ + 3` (a.k.a. BN128 /
//! alt_bn128, the curve used by libsnark in the paper) is defined.

use crate::bigint::BigInt256;
use crate::fp::{Fp, FpParams};

/// Parameters of the BN254 base field.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct FqParams;

impl FpParams for FqParams {
    /// 0x30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47
    const MODULUS: BigInt256 = BigInt256([
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ]);
    const GENERATOR: u64 = 3;
    // q - 1 = 2 · odd
    const TWO_ADICITY: u32 = 1;
}

/// An element of the BN254 base field.
pub type Fq = Fp<FqParams>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biguint::BigUint;
    use crate::traits::{Field, PrimeField, SquareRootField};
    use rand::SeedableRng;

    const Q_DEC: &str =
        "21888242871839275222246405745257275088696311157297823662689037894645226208583";

    #[test]
    fn modulus_matches_published_decimal() {
        let q = BigUint::from_limbs(&FqParams::MODULUS.0);
        assert_eq!(q.to_decimal(), Q_DEC);
    }

    #[test]
    fn modulus_is_3_mod_4() {
        assert_eq!(FqParams::MODULUS.0[0] & 3, 3);
    }

    #[test]
    fn r_and_r2_are_consistent() {
        // R  = 2^256 mod q, and from_u64(1) stores R; one() must round-trip.
        assert_eq!(Fq::one().into_bigint(), BigInt256::ONE);
        let two = Fq::from_u64(2);
        assert_eq!(two.into_bigint(), BigInt256::from_u64(2));
    }

    #[test]
    fn field_axioms_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            let c = Fq::random(&mut rng);
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a - a, Fq::zero());
            assert_eq!(a + (-a), Fq::zero());
            assert_eq!((a * b) * c, a * (b * c));
        }
    }

    #[test]
    fn inverse_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fq::one());
        }
    }

    #[test]
    fn sqrt_of_square_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            let sq = a.square();
            let r = sq.sqrt().expect("square must have a root");
            assert!(r == a || r == -a);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Fq::random(&mut rng);
        let q_min_1 = FqParams::MODULUS.sub_with_borrow(&BigInt256::ONE).0;
        assert_eq!(a.pow(&q_min_1.0), Fq::one());
    }

    #[test]
    fn to_from_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Fq::random(&mut rng);
        assert_eq!(Fq::from_le_bytes(&a.to_le_bytes()), Some(a));
        // modulus itself must be rejected
        assert_eq!(Fq::from_le_bytes(&FqParams::MODULUS.to_le_bytes()), None);
    }

    #[test]
    fn signed_embedding_roundtrip() {
        for v in [-5i128, -1, 0, 1, 7, 1 << 40, -(1 << 90)] {
            assert_eq!(Fq::from_i128(v).to_i128(), Some(v));
        }
    }
}
