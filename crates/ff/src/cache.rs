//! A portable once-cell: caches derived constants under `std`, recomputes
//! them per call under `no_std`.
//!
//! Several derived constants in the tower (Frobenius coefficients, the G2
//! generator, the ate-loop NAF) are computed at runtime from the modulus
//! and were cached in `std::sync::OnceLock` statics. `no_std` targets have
//! no blocking primitive to guarantee single initialisation, so there
//! [`Cached::get_or_init`] simply recomputes: every derivation in this
//! workspace is a pure function of compile-time constants, so the result
//! is identical on every call and the only cost is time — acceptable on
//! the verification-only `no_std` path, invisible under `std`.

#[cfg(not(feature = "std"))]
use core::marker::PhantomData;

/// A lazily derived constant. See the module docs for the `std`/`no_std`
/// behaviour split.
pub struct Cached<T> {
    #[cfg(feature = "std")]
    cell: std::sync::OnceLock<T>,
    #[cfg(not(feature = "std"))]
    _marker: PhantomData<fn() -> T>,
}

impl<T: Clone> Cached<T> {
    /// Creates an empty cache (usable in `static` items).
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "std")]
            cell: std::sync::OnceLock::new(),
            #[cfg(not(feature = "std"))]
            _marker: PhantomData,
        }
    }

    /// Returns the cached value, deriving it with `f` on first use
    /// (`std`) or on every call (`no_std`). `f` must be deterministic.
    #[cfg(feature = "std")]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> T {
        self.cell.get_or_init(f).clone()
    }

    /// Returns the cached value, deriving it with `f` on first use
    /// (`std`) or on every call (`no_std`). `f` must be deterministic.
    #[cfg(not(feature = "std"))]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> T {
        f()
    }
}

impl<T: Clone> Default for Cached<T> {
    fn default() -> Self {
        Self::new()
    }
}
