//! Minimal arbitrary-precision unsigned integers.
//!
//! Used only at setup time and in tests: deriving Frobenius exponents such as
//! `(p − 1)/6`, cross-checking the hard-coded moduli against their decimal
//! forms, and computing the naive final-exponentiation exponent
//! `(p⁴ − p² + 1)/r` that validates the fast pairing path. None of this code
//! is on a hot path, so clarity is preferred over speed.

use alloc::format;
use alloc::string::{String, ToString};
use alloc::vec;
use alloc::vec::Vec;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0 (empty limb vector).
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Creates a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut s = Self { limbs: vec![v] };
        s.normalize();
        s
    }

    /// Creates a value from little-endian limbs.
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut s = Self {
            limbs: limbs.to_vec(),
        };
        s.normalize();
        s
    }

    /// Parses a base-10 string. Panics on non-digit characters.
    pub fn from_decimal(s: &str) -> Self {
        let mut out = Self::zero();
        for ch in s.chars() {
            let d = ch
                .to_digit(10)
                .unwrap_or_else(|| panic!("invalid decimal digit {ch:?}"));
            out = out.mul_u64(10).add(&Self::from_u64(d as u64));
        }
        out
    }

    /// Renders the value in base 10.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        // 10^19 is the largest power of ten below 2^64.
        const BASE: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(BASE);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        s
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Copies the value into a fixed-size little-endian limb array.
    ///
    /// # Panics
    /// Panics if the value does not fit in `N` limbs.
    pub fn to_limbs<const N: usize>(&self) -> [u64; N] {
        assert!(self.limbs.len() <= N, "value does not fit in {N} limbs");
        let mut out = [0u64; N];
        out[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn num_bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() as u64) * 64 - u64::from(top.leading_zeros()),
        }
    }

    /// Returns bit `i` (little-endian numbering).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn set_bit(&mut self, i: u64) {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = crate::bigint::adc(a, b, carry);
            out.push(s);
            carry = c;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d, bo) = crate::bigint::sbb(a, b, borrow);
            out.push(d);
            borrow = bo;
        }
        assert_eq!(borrow, 0);
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let (lo, hi) = crate::bigint::mac(out[i + j], a, b, carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + other.limbs.len()] = carry;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication by a `u64`.
    pub fn mul_u64(&self, v: u64) -> Self {
        self.mul(&Self::from_u64(v))
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: u64) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: u64) -> Self {
        let limb_shift = (n / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < self.limbs.len() {
                v |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(v);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        let shift = self.num_bits() - divisor.num_bits();
        let mut rem = self.clone();
        let mut quot = Self::zero();
        let mut shifted = divisor.shl(shift);
        let mut i = shift as i64;
        while i >= 0 {
            if rem >= shifted {
                rem = rem.sub(&shifted);
                quot.set_bit(i as u64);
            }
            shifted = shifted.shr(1);
            i -= 1;
        }
        (quot, rem)
    }

    /// Division by a `u64`, returning `(quotient, remainder)`.
    pub fn div_rem_u64(&self, divisor: u64) -> (Self, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = Self { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Modular exponentiation `self^exp mod m` (schoolbook; test use only).
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero());
        let mut base = self.div_rem(m).1;
        let mut result = Self::one().div_rem(m).1;
        let bits = exp.num_bits();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.mul(&base).div_rem(m).1;
            }
            base = base.mul(&base).div_rem(m).1;
        }
        result
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                core::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl core::fmt::Display for BigUint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        ];
        for c in cases {
            assert_eq!(BigUint::from_decimal(c).to_decimal(), c);
        }
    }

    #[test]
    fn add_sub() {
        let a = BigUint::from_decimal("340282366920938463463374607431768211456"); // 2^128
        let b = BigUint::from_u64(1);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    fn mul_matches_decimal() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        assert_eq!(sq.to_decimal(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn div_rem_basic() {
        let a = BigUint::from_decimal("1000000000000000000000000000000000000007");
        let d = BigUint::from_decimal("1000000007");
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn div_rem_u64_matches_div_rem() {
        let a = BigUint::from_decimal("123456789012345678901234567890123456789");
        let (q1, r1) = a.div_rem_u64(97);
        let (q2, r2) = a.div_rem(&BigUint::from_u64(97));
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }

    #[test]
    fn shifts_are_inverse() {
        let a = BigUint::from_decimal("987654321987654321987654321");
        assert_eq!(a.shl(77).shr(77), a);
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) = 1 mod p for prime p
        let p = BigUint::from_u64(1_000_000_007);
        let e = BigUint::from_u64(1_000_000_006);
        assert_eq!(BigUint::from_u64(2).modpow(&e, &p), BigUint::one());
    }
}
