//! Quadratic extension `Fq12 = Fq6[w] / (w² − v)` — the pairing target field.

use crate::fq2::Fq2;
use crate::fq6::Fq6;
use crate::frobenius;
use crate::traits::Field;

/// An element `c0 + c1·w` of `Fq12`, where `w² = v`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fq12 {
    /// Coefficient of 1.
    pub c0: Fq6,
    /// Coefficient of `w`.
    pub c1: Fq6,
}

impl Fq12 {
    /// Creates the element `c0 + c1·w`.
    #[inline]
    pub const fn new(c0: Fq6, c1: Fq6) -> Self {
        Self { c0, c1 }
    }

    /// Conjugation `c0 − c1·w`; for elements of the cyclotomic subgroup this
    /// equals inversion (used heavily by the final exponentiation).
    #[inline]
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// Applies the Frobenius endomorphism `x ↦ x^(q^power)`.
    pub fn frobenius_map(&self, power: usize) -> Self {
        let mut r = *self;
        for _ in 0..power {
            r = Self::new(
                r.c0.frobenius_map(1),
                r.c1.frobenius_map(1).mul_by_fq2(frobenius::fq12_c1()),
            );
        }
        r
    }

    /// Squaring specialised to the cyclotomic subgroup. We currently use the
    /// generic squaring, which is always correct; the specialised Granger–
    /// Scott formula is a future optimisation hook.
    #[inline]
    pub fn cyclotomic_square(&self) -> Self {
        self.square()
    }

    /// Exponentiation by a `u64`, staying in the cyclotomic subgroup.
    pub fn cyclotomic_exp(&self, exp: u64) -> Self {
        let mut res = Self::one();
        let mut started = false;
        for i in (0..64).rev() {
            if started {
                res = res.cyclotomic_square();
            }
            if (exp >> i) & 1 == 1 {
                res *= *self;
                started = true;
            }
        }
        res
    }

    /// Multiplication by the sparse line element
    /// `g = g0 + (g3·w + g4·v·w)` produced by D-twist line evaluations
    /// (coefficients at positions 0, 3 and 4 of the Fq2-basis).
    pub fn mul_by_034(&self, g0: Fq2, g3: Fq2, g4: Fq2) -> Self {
        let sparse = Self::new(
            Fq6::new(g0, Fq2::zero(), Fq2::zero()),
            Fq6::new(g3, g4, Fq2::zero()),
        );
        *self * sparse
    }
}

impl core::ops::Add for Fq12 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}

impl core::ops::Sub for Fq12 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}

impl core::ops::Mul for Fq12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba with w² = v:
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let c0 = v0 + v1.mul_by_nonresidue();
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}

impl core::ops::Neg for Fq12 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}

impl core::ops::AddAssign for Fq12 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fq12 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fq12 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl core::fmt::Debug for Fq12 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fq12({:?}, {:?})", self.c0, self.c1)
    }
}

impl core::fmt::Display for Fq12 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}) + ({})*w", self.c0, self.c1)
    }
}

impl Field for Fq12 {
    #[inline]
    fn zero() -> Self {
        Self::new(Fq6::zero(), Fq6::zero())
    }
    #[inline]
    fn one() -> Self {
        Self::new(Fq6::one(), Fq6::zero())
    }
    #[inline]
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    #[inline]
    fn square(&self) -> Self {
        // Complex squaring: (a + bw)² = (a² + v b²) + 2ab w
        let v0 = self.c0 * self.c1;
        let c0 = (self.c0 + self.c1) * (self.c0 + self.c1.mul_by_nonresidue())
            - v0
            - v0.mul_by_nonresidue();
        Self::new(c0, v0.double())
    }

    fn inverse(&self) -> Option<Self> {
        // (a + bw)⁻¹ = (a − bw)/(a² − v b²)
        let denom = self.c0.square() - self.c1.square().mul_by_nonresidue();
        let inv = denom.inverse()?;
        Some(Self::new(self.c0 * inv, -(self.c1 * inv)))
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq6::random(rng), Fq6::random(rng))
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Self::new(Fq6::from_u64(v), Fq6::zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn w_squared_is_v() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let v = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
        assert_eq!(w.square(), v);
    }

    #[test]
    fn field_axioms_and_inverse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let a = Fq12::random(&mut rng);
            let b = Fq12::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq12::one());
            }
        }
    }

    #[test]
    fn frobenius_is_q_power() {
        use crate::fp::FpParams;
        use crate::fq::FqParams;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Fq12::random(&mut rng);
        assert_eq!(a.frobenius_map(1), a.pow(&FqParams::MODULUS.0));
        assert_eq!(a.frobenius_map(12), a);
    }

    #[test]
    fn mul_by_034_matches_dense_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let a = Fq12::random(&mut rng);
        let g0 = Fq2::random(&mut rng);
        let g3 = Fq2::random(&mut rng);
        let g4 = Fq2::random(&mut rng);
        let dense = Fq12::new(
            Fq6::new(g0, Fq2::zero(), Fq2::zero()),
            Fq6::new(g3, g4, Fq2::zero()),
        );
        assert_eq!(a.mul_by_034(g0, g3, g4), a * dense);
    }

    #[test]
    fn cyclotomic_exp_matches_pow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let a = Fq12::random(&mut rng);
        let e = 0xdead_beef_cafe_u64;
        assert_eq!(a.cyclotomic_exp(e), a.pow(&[e]));
    }

    #[test]
    fn conjugate_inverts_cyclotomic_elements() {
        // r = f^(q^6 - 1) lies in the subgroup where conjugation = inversion.
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let f = Fq12::random(&mut rng);
        let r = f.frobenius_map(6) * f.inverse().unwrap();
        assert_eq!(r.conjugate() * r, Fq12::one());
    }
}
