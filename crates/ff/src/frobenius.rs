//! Frobenius-endomorphism coefficients for the BN254 tower, derived at
//! runtime from the modulus (no hand-transcribed curve constants).
//!
//! All coefficients are powers of the sextic non-residue `ξ = 9 + u`:
//!
//! * `fq6_c1  = ξ^((q−1)/3)` — scales the `v` coefficient of `Fq6`
//! * `fq6_c2  = ξ^(2(q−1)/3)` — scales the `v²` coefficient of `Fq6`
//! * `fq12_c1 = ξ^((q−1)/6)` — scales the `w` coefficient of `Fq12`
//! * `twist_x = ξ^((q−1)/3)`, `twist_y = ξ^((q−1)/2)` — the
//!   untwist-Frobenius-twist endomorphism on the G2 twist, used by the
//!   pairing Miller loop.

use crate::biguint::BigUint;
use crate::cache::Cached;
use crate::fp::FpParams;
use crate::fq::FqParams;
use crate::fq2::Fq2;
use crate::traits::Field;

/// Returns `(q − 1)/k` as fixed limbs. Panics if `k` does not divide `q − 1`.
fn q_minus_1_over(k: u64) -> [u64; 4] {
    let q = BigUint::from_limbs(&FqParams::MODULUS.0);
    let (quot, rem) = q.sub(&BigUint::one()).div_rem_u64(k);
    assert_eq!(rem, 0, "{k} does not divide q - 1");
    quot.to_limbs::<4>()
}

/// `ξ^((q−1)/3)`.
pub fn fq6_c1() -> Fq2 {
    static C: Cached<Fq2> = Cached::new();
    C.get_or_init(|| Fq2::xi().pow(&q_minus_1_over(3)))
}

/// `ξ^(2(q−1)/3)`.
pub fn fq6_c2() -> Fq2 {
    static C: Cached<Fq2> = Cached::new();
    C.get_or_init(|| fq6_c1().square())
}

/// `ξ^((q−1)/6)`.
pub fn fq12_c1() -> Fq2 {
    static C: Cached<Fq2> = Cached::new();
    C.get_or_init(|| Fq2::xi().pow(&q_minus_1_over(6)))
}

/// `ξ^((q−1)/3)` — x-coordinate coefficient of the G2 Frobenius.
pub fn twist_mul_by_q_x() -> Fq2 {
    fq6_c1()
}

/// `ξ^((q−1)/2)` — y-coordinate coefficient of the G2 Frobenius.
pub fn twist_mul_by_q_y() -> Fq2 {
    static C: Cached<Fq2> = Cached::new();
    C.get_or_init(|| Fq2::xi().pow(&q_minus_1_over(2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_consistent() {
        // fq12_c1² = fq6_c1, fq12_c1³ = twist_y
        assert_eq!(fq12_c1().square(), fq6_c1());
        assert_eq!(fq12_c1() * fq6_c1(), twist_mul_by_q_y());
        assert_eq!(fq6_c1().square(), fq6_c2());
    }

    #[test]
    fn sixth_power_is_xi_to_q_minus_1() {
        // (ξ^((q−1)/6))^6 = ξ^(q−1) = frobenius(ξ)/ξ
        let lhs = fq12_c1().pow(&[6]);
        let rhs = Fq2::xi().frobenius_map(1) * Fq2::xi().inverse().unwrap();
        assert_eq!(lhs, rhs);
    }
}
