//! Pins the two Montgomery backends bit-identical under proptest.
//!
//! Since a fully reduced Montgomery representative is unique per residue
//! class, every conforming [`FieldBackend`] must agree byte-for-byte with
//! the schoolbook reference on every input — including the raw
//! (not-necessarily-canonical) representatives this test drives directly
//! through the backend entry points. On x86-64 this also exercises the
//! runtime-detected MULX/ADX kernel against the portable path.

use proptest::prelude::*;
use zkrownn_ff::fq::FqParams;
use zkrownn_ff::fr::FrParams;
use zkrownn_ff::{BigInt256, FieldBackend, FpParams, SchoolbookBackend, UnrolledBackend};

/// Any representative in `[0, p)`: four arbitrary limbs folded below the
/// modulus by masking the top limb and retry-free conditional subtract.
fn arb_repr<P: FpParams>(limbs: [u64; 4]) -> BigInt256 {
    let mut v = BigInt256(limbs);
    // Clamp into [0, 2^254) then subtract p at most twice — keeps the
    // distribution dense across the full range without rejection loops.
    v.0[3] &= (1 << 62) - 1;
    while v.const_cmp(&P::MODULUS) >= 0 {
        v = v.sub_with_borrow(&P::MODULUS).0;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn mul_reduce_bit_identical_fq(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let (a, b) = (arb_repr::<FqParams>(a), arb_repr::<FqParams>(b));
        prop_assert_eq!(
            SchoolbookBackend::mul_reduce::<FqParams>(&a, &b),
            UnrolledBackend::mul_reduce::<FqParams>(&a, &b)
        );
    }

    #[test]
    fn mul_reduce_bit_identical_fr(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let (a, b) = (arb_repr::<FrParams>(a), arb_repr::<FrParams>(b));
        prop_assert_eq!(
            SchoolbookBackend::mul_reduce::<FrParams>(&a, &b),
            UnrolledBackend::mul_reduce::<FrParams>(&a, &b)
        );
    }

    #[test]
    fn square_reduce_bit_identical(a in any::<[u64; 4]>()) {
        let a = arb_repr::<FqParams>(a);
        prop_assert_eq!(
            SchoolbookBackend::square_reduce::<FqParams>(&a),
            UnrolledBackend::square_reduce::<FqParams>(&a)
        );
        prop_assert_eq!(
            SchoolbookBackend::square_reduce::<FqParams>(&a),
            SchoolbookBackend::mul_reduce::<FqParams>(&a, &a)
        );
    }

    #[test]
    fn reduce_wide_bit_identical(lo in any::<[u64; 4]>(), a in any::<[u64; 4]>()) {
        // t = lo + repr·2^256 with repr < p keeps t < p·R as required.
        let hi = arb_repr::<FqParams>(a);
        let mut t = [0u64; 8];
        t[..4].copy_from_slice(&lo);
        t[4..].copy_from_slice(&hi.0);
        prop_assert_eq!(
            SchoolbookBackend::reduce_wide::<FqParams>(t),
            UnrolledBackend::reduce_wide::<FqParams>(t)
        );
    }
}
