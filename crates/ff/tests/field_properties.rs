//! Property-based tests of the field axioms and encodings, across the full
//! tower (`Fq`, `Fr`, `Fq2`, `Fq6`, `Fq12`).

use proptest::prelude::*;
use zkrownn_ff::{BigInt256, Field, Fq, Fq12, Fq2, Fq6, Fr, PrimeField, SquareRootField};

/// Strategy: a field element from four arbitrary limbs (reduced mod p by
/// multiplication in the field — `from_u64` products spread over the range).
fn arb_fq() -> impl Strategy<Value = Fq> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| {
        Fq::from_u64(a) * Fq::from_u64(b) + Fq::from_u64(c) * Fq::from_u64(d) + Fq::from_u64(1)
    })
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| {
        Fr::from_u64(a) * Fr::from_u64(b) + Fr::from_u64(c) * Fr::from_u64(d)
    })
}

fn arb_fq2() -> impl Strategy<Value = Fq2> {
    (arb_fq(), arb_fq()).prop_map(|(c0, c1)| Fq2::new(c0, c1))
}

fn arb_fq6() -> impl Strategy<Value = Fq6> {
    (arb_fq2(), arb_fq2(), arb_fq2()).prop_map(|(c0, c1, c2)| Fq6::new(c0, c1, c2))
}

fn arb_fq12() -> impl Strategy<Value = Fq12> {
    (arb_fq6(), arb_fq6()).prop_map(|(c0, c1)| Fq12::new(c0, c1))
}

macro_rules! field_axioms {
    ($name:ident, $strat:expr, $ty:ty) => {
        proptest! {
            #[test]
            fn $name((a, b, c) in ($strat, $strat, $strat)) {
                // additive/multiplicative commutativity & associativity
                prop_assert_eq!(a + b, b + a);
                prop_assert_eq!(a * b, b * a);
                prop_assert_eq!((a + b) + c, a + (b + c));
                prop_assert_eq!((a * b) * c, a * (b * c));
                // distributivity
                prop_assert_eq!(a * (b + c), a * b + a * c);
                // identities & inverses
                prop_assert_eq!(a + <$ty>::zero(), a);
                prop_assert_eq!(a * <$ty>::one(), a);
                prop_assert_eq!(a - a, <$ty>::zero());
                prop_assert_eq!(a + (-a), <$ty>::zero());
                if !a.is_zero() {
                    prop_assert_eq!(a * a.inverse().unwrap(), <$ty>::one());
                }
                // squaring consistency
                prop_assert_eq!(a.square(), a * a);
                prop_assert_eq!(a.double(), a + a);
            }
        }
    };
}

field_axioms!(fq_axioms, arb_fq(), Fq);
field_axioms!(fr_axioms, arb_fr(), Fr);
field_axioms!(fq2_axioms, arb_fq2(), Fq2);
field_axioms!(fq6_axioms, arb_fq6(), Fq6);
field_axioms!(fq12_axioms, arb_fq12(), Fq12);

proptest! {
    #[test]
    fn fq_bytes_roundtrip(a in arb_fq()) {
        prop_assert_eq!(Fq::from_le_bytes(&a.to_le_bytes()), Some(a));
    }

    #[test]
    fn fr_bigint_roundtrip(a in arb_fr()) {
        prop_assert_eq!(Fr::from_bigint(a.into_bigint()), Some(a));
    }

    #[test]
    fn fr_signed_embedding_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(Fr::from_i128(v as i128).to_i128(), Some(v as i128));
    }

    #[test]
    fn fq_sqrt_of_square(a in arb_fq()) {
        let r = a.square().sqrt().expect("squares have roots");
        prop_assert!(r == a || r == -a);
    }

    #[test]
    fn fq2_sqrt_of_square(a in arb_fq2()) {
        let sq = a.square();
        let r = sq.sqrt().expect("squares have roots");
        prop_assert_eq!(r.square(), sq);
    }

    #[test]
    fn fq12_frobenius_additivity(a in arb_fq12(), b in arb_fq12()) {
        // Frobenius is a field homomorphism
        prop_assert_eq!((a + b).frobenius_map(1), a.frobenius_map(1) + b.frobenius_map(1));
        prop_assert_eq!((a * b).frobenius_map(1), a.frobenius_map(1) * b.frobenius_map(1));
    }

    #[test]
    fn fr_pow_addition_law(a in arb_fr(), x in any::<u32>(), y in any::<u32>()) {
        // a^x · a^y = a^(x+y)
        let lhs = a.pow(&[x as u64]) * a.pow(&[y as u64]);
        let rhs = a.pow(&[x as u64 + y as u64]);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bigint_add_sub_roundtrip(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let x = BigInt256(a);
        let y = BigInt256(b);
        let (sum, carry) = x.add_with_carry(&y);
        let (back, borrow) = sum.sub_with_borrow(&y);
        prop_assert_eq!(back, x);
        prop_assert_eq!(carry, borrow);
    }

    #[test]
    fn halve_is_inverse_of_double(a in arb_fr()) {
        prop_assert_eq!(a.double().halve(), a);
        prop_assert_eq!(a.halve().double(), a);
    }
}
