//! Raw multiplication throughput probe (manual harness):
//! `cargo test --release -p zkrownn-ff --test mul_throughput -- --ignored --nocapture`

use std::time::Instant;
use zkrownn_ff::{Field, Fq, Fr};

#[test]
#[ignore]
fn mul_throughput() {
    let mut x = Fq::from_u64(0x1234_5678_9abc_def1).pow(&[0xfeed_beef]);
    let y = Fq::from_u64(3).pow(&[0x1357_9bdf]);
    let n = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..n {
        x *= y;
    }
    let dt = t.elapsed();
    println!("Fq mul: {:.2} ns/op ({x})", dt.as_nanos() as f64 / n as f64);

    let mut z = Fr::from_u64(0x1234_5678_9abc_def1).pow(&[0xfeed_beef]);
    let t = Instant::now();
    for _ in 0..n {
        z = z.square();
    }
    let dt = t.elapsed();
    println!(
        "Fr square: {:.2} ns/op ({z})",
        dt.as_nanos() as f64 / n as f64
    );
}
