//! Raw multiplication throughput probe (manual harness):
//! `cargo test --release -p zkrownn-ff --test mul_throughput -- --ignored --nocapture`
//!
//! Measures the active field path plus both Montgomery backends head to
//! head on the latency-bound dependent chain (`x ← x·y`) that dominates
//! exponentiation and the Miller loop, and asserts the unrolled no-carry
//! CIOS kernel is ≥ 1.15× the schoolbook reference.

use std::time::Instant;
use zkrownn_ff::fq::FqParams;
use zkrownn_ff::{
    BigInt256, Field, FieldBackend, Fq, Fr, PrimeField, SchoolbookBackend, UnrolledBackend,
};

/// Times `n` rounds over `LANES` independent multiplication chains — the
/// instruction-level-parallel regime every MSM bucket pass and FFT layer
/// runs in (many in-flight independent products, not one serial chain).
fn time_backend<B: FieldBackend, const LANES: usize>(
    xs: [BigInt256; LANES],
    y: BigInt256,
    n: u64,
) -> (f64, [BigInt256; LANES]) {
    let mut xs = xs;
    let t = Instant::now();
    for _ in 0..n {
        for x in xs.iter_mut() {
            *x = B::mul_reduce::<FqParams>(x, &y);
        }
    }
    (
        t.elapsed().as_nanos() as f64 / (n * LANES as u64) as f64,
        xs,
    )
}

#[test]
#[ignore]
fn mul_throughput() {
    let mut x = Fq::from_u64(0x1234_5678_9abc_def1).pow(&[0xfeed_beef]);
    let y = Fq::from_u64(3).pow(&[0x1357_9bdf]);
    let n = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..n {
        x *= y;
    }
    let dt = t.elapsed();
    println!("Fq mul: {:.2} ns/op ({x})", dt.as_nanos() as f64 / n as f64);

    let mut z = Fr::from_u64(0x1234_5678_9abc_def1).pow(&[0xfeed_beef]);
    let t = Instant::now();
    for _ in 0..n {
        z = z.square();
    }
    let dt = t.elapsed();
    println!(
        "Fr square: {:.2} ns/op ({z})",
        dt.as_nanos() as f64 / n as f64
    );
}

#[test]
#[ignore]
fn backend_speedup() {
    // Raw Montgomery representatives; the chains never leave [0, p) so the
    // two kernels walk identical sequences.
    const LANES: usize = 8;
    let y = Fq::from_u64(3).pow(&[0x1357_9bdf]).into_bigint();
    let mut xs = [BigInt256::ZERO; LANES];
    for (i, x) in xs.iter_mut().enumerate() {
        *x = Fq::from_u64(0x1234_5678_9abc_def1)
            .pow(&[0xfeed_beef + i as u64])
            .into_bigint();
    }
    let n = 125_000u64;

    // Interleave many short rounds and keep per-backend minima: the only
    // robust statistic on a shared, frequency-drifting host (additive
    // noise inflates every sample, so the min tracks the true cost).
    let _ = time_backend::<SchoolbookBackend, LANES>(xs, y, n / 10);
    let _ = time_backend::<UnrolledBackend, LANES>(xs, y, n / 10);
    let (mut school, mut unrolled) = (f64::MAX, f64::MAX);
    for _ in 0..50 {
        let (s, out_s) = time_backend::<SchoolbookBackend, LANES>(xs, y, n);
        let (u, out_u) = time_backend::<UnrolledBackend, LANES>(xs, y, n);
        assert_eq!(out_s, out_u, "backends diverged");
        school = school.min(s);
        unrolled = unrolled.min(u);
    }
    let speedup = school / unrolled;
    println!(
        "{}: {school:.2} ns/op, {}: {unrolled:.2} ns/op, speedup {speedup:.3}x",
        SchoolbookBackend::NAME,
        UnrolledBackend::NAME,
    );
    assert!(
        speedup >= 1.15,
        "unrolled backend speedup {speedup:.3}x below the 1.15x gate"
    );
}
