//! # zkrownn-faults — deterministic fault injection for storage and sockets
//!
//! Robustness claims need an adversarial *machine*, not just adversarial
//! bytes. This crate scripts one: a [`FaultPlan`] lists faults pinned to
//! byte offsets — fail outright, tear the stream short, stall, or reset
//! the connection — and an armed plan ([`ArmedFaults`]) wraps any
//! `Read`/`Write` pair (socket halves, cursors) plus the store crate's
//! two trait seams ([`zkrownn_store::StoreMedium`] for writes,
//! [`zkrownn_store::ReadAt`] for positioned reads), so the exact same
//! fault fires at the exact same byte on every run.
//!
//! Plans are either built explicitly (`fail_write_at`, `torn_write_at`,
//! …) or derived from a seed ([`FaultPlan::from_seed`]) for chaos suites
//! that sweep many seeds and print the failing one. Determinism is the
//! point: a chaos failure in CI reproduces locally from its seed alone.
//!
//! Fault semantics, per channel:
//!
//! * **`Fail`** — the operation covering the offset fails with an
//!   injected I/O error; the channel stays broken afterwards.
//! * **`Torn`** — on a write stream, exactly `offset` bytes reach the
//!   underlying writer, then every write fails (a torn write). On a read
//!   stream, the reader sees `offset` bytes then clean end-of-stream (a
//!   short read).
//! * **`Delay`** — the operation covering the offset stalls for a fixed
//!   number of milliseconds, then proceeds; the channel is undamaged.
//! * **`Reset`** — like `Fail`, with `ConnectionReset` (a peer-vanished
//!   socket).
//!
//! Offsets count cumulative bytes through the wrapper (its stream
//! position); for the positioned-read seam they are absolute file
//! offsets. Every fault is one-shot.

#![warn(missing_docs)]

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkrownn_store::{ReadAt, StoreMedium};

/// What happens when an operation crosses a planned fault's byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the covering operation; the channel stays broken.
    Fail,
    /// Deliver/accept bytes strictly before the offset, then break: short
    /// read (clean EOF) on a read stream, torn write on a write stream.
    Torn,
    /// Stall the covering operation for this many milliseconds, then
    /// proceed undamaged.
    Delay(u64),
    /// Fail the covering operation with `ConnectionReset`; the channel
    /// stays broken.
    Reset,
}

/// Which direction of a stream a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// The read side (bytes flowing in).
    Read,
    /// The write side (bytes flowing out).
    Write,
}

/// A deterministic, scriptable schedule of I/O faults.
///
/// Build one explicitly with the `*_at` methods or derive one from a seed
/// with [`Self::from_seed`], then [`Self::arm`] it to get wrappers that
/// share the plan's state. [`Self::label`] names the plan in test output
/// so a failing chaos run is reproducible.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    read: Vec<(u64, FaultKind)>,
    write: Vec<(u64, FaultKind)>,
    label: String,
}

impl FaultPlan {
    /// An empty plan (no faults — wrappers become transparent).
    pub fn new() -> Self {
        Self {
            label: "none".into(),
            ..Self::default()
        }
    }

    /// Derives a small fault schedule from `seed`, with offsets spread
    /// over `[0, extent)` — the deterministic generator chaos suites
    /// sweep. The same `(seed, extent)` always yields the same plan.
    pub fn from_seed(seed: u64, extent: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_1a7e_5eed_0001);
        let mut plan = Self {
            label: format!("seed={seed}"),
            ..Self::default()
        };
        let faults = rng.gen_range(1usize..=3);
        for _ in 0..faults {
            let offset = rng.gen_range(0..extent.max(1));
            let kind = match rng.gen_range(0u32..4) {
                0 => FaultKind::Fail,
                1 => FaultKind::Torn,
                2 => FaultKind::Delay(rng.gen_range(1u64..=5)),
                _ => FaultKind::Reset,
            };
            let channel = if rng.gen_range(0u32..2) == 0 {
                Channel::Read
            } else {
                Channel::Write
            };
            plan.push(channel, offset, kind);
        }
        plan
    }

    /// Human-readable identity of this plan (e.g. `seed=7`), for test
    /// failure messages.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Names the plan (overrides the constructor's label).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Adds a fault on `channel` at byte `offset`.
    pub fn push(&mut self, channel: Channel, offset: u64, kind: FaultKind) {
        let list = match channel {
            Channel::Read => &mut self.read,
            Channel::Write => &mut self.write,
        };
        list.push((offset, kind));
        list.sort_by_key(|&(off, _)| off);
    }

    /// Fails the read covering byte `offset`.
    pub fn fail_read_at(mut self, offset: u64) -> Self {
        self.push(Channel::Read, offset, FaultKind::Fail);
        self
    }

    /// Fails the write covering byte `offset`.
    pub fn fail_write_at(mut self, offset: u64) -> Self {
        self.push(Channel::Write, offset, FaultKind::Fail);
        self
    }

    /// Ends the read stream cleanly after exactly `offset` bytes.
    pub fn short_read_at(mut self, offset: u64) -> Self {
        self.push(Channel::Read, offset, FaultKind::Torn);
        self
    }

    /// Tears the write stream after exactly `offset` bytes reach the
    /// underlying writer.
    pub fn torn_write_at(mut self, offset: u64) -> Self {
        self.push(Channel::Write, offset, FaultKind::Torn);
        self
    }

    /// Stalls the read covering byte `offset` for `millis` milliseconds.
    pub fn delay_read_at(mut self, offset: u64, millis: u64) -> Self {
        self.push(Channel::Read, offset, FaultKind::Delay(millis));
        self
    }

    /// Stalls the write covering byte `offset` for `millis` milliseconds.
    pub fn delay_write_at(mut self, offset: u64, millis: u64) -> Self {
        self.push(Channel::Write, offset, FaultKind::Delay(millis));
        self
    }

    /// Resets the connection at read byte `offset`.
    pub fn reset_read_at(mut self, offset: u64) -> Self {
        self.push(Channel::Read, offset, FaultKind::Reset);
        self
    }

    /// Resets the connection at write byte `offset`.
    pub fn reset_write_at(mut self, offset: u64) -> Self {
        self.push(Channel::Write, offset, FaultKind::Reset);
        self
    }

    /// Arms the plan: allocates the shared per-channel state the wrappers
    /// consume faults from. Arm once per simulated run; wrappers created
    /// from the same [`ArmedFaults`] share byte cursors and fault lists
    /// (e.g. a socket's read and write halves).
    pub fn arm(&self) -> ArmedFaults {
        ArmedFaults {
            read: Arc::new(Mutex::new(ChannelState::new(&self.read))),
            write: Arc::new(Mutex::new(ChannelState::new(&self.write))),
            label: self.label.clone(),
        }
    }
}

/// Shared state of one armed stream direction.
struct ChannelState {
    pos: u64,
    pending: Vec<(u64, FaultKind)>,
    /// Set once a `Fail`/`Torn`/`Reset` fired: every later op fails so.
    dead: Option<io::ErrorKind>,
    /// Set by a read-side `Torn`: the stream ended cleanly.
    eof: bool,
    fired: u64,
}

impl ChannelState {
    fn new(faults: &[(u64, FaultKind)]) -> Self {
        Self {
            pos: 0,
            pending: faults.to_vec(),
            dead: None,
            eof: false,
            fired: 0,
        }
    }

    fn dead_error(kind: io::ErrorKind) -> io::Error {
        io::Error::new(kind, "injected fault: channel broken")
    }

    /// The first pending fault whose offset precedes `pos + len`, if any.
    fn first_in(&self, len: usize) -> Option<(u64, FaultKind)> {
        self.pending
            .first()
            .copied()
            .filter(|&(off, _)| off < self.pos + len.max(1) as u64)
    }

    fn consume_first(&mut self) -> (u64, FaultKind) {
        self.fired += 1;
        self.pending.remove(0)
    }
}

/// An armed [`FaultPlan`]: the factory for fault-injecting wrappers that
/// share its byte cursors and one-shot fault lists.
#[derive(Clone)]
pub struct ArmedFaults {
    read: Arc<Mutex<ChannelState>>,
    write: Arc<Mutex<ChannelState>>,
    label: String,
}

impl ArmedFaults {
    /// The originating plan's label (for failure messages).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Wraps a reader; faults on the plan's read channel fire at their
    /// cumulative byte offsets.
    pub fn read<R: Read>(&self, inner: R) -> FaultyRead<R> {
        FaultyRead {
            inner,
            chan: Arc::clone(&self.read),
        }
    }

    /// Wraps a writer; faults on the plan's write channel fire at their
    /// cumulative byte offsets.
    pub fn write<W: Write>(&self, inner: W) -> FaultyWrite<W> {
        FaultyWrite {
            inner,
            chan: Arc::clone(&self.write),
        }
    }

    /// Wraps a positioned reader ([`ReadAt`]) for the store's buffered
    /// backend; read-channel fault offsets are absolute file offsets.
    pub fn read_at<F: ReadAt>(&self, inner: F) -> FaultyReadAt<F> {
        FaultyReadAt {
            inner,
            chan: Arc::clone(&self.read),
        }
    }

    /// Wraps a [`StoreMedium`] (write-channel faults on cumulative bytes
    /// written) — plug into `StoreWriter::create_with`.
    pub fn medium<M: StoreMedium>(&self, inner: M) -> FaultyMedium<M> {
        FaultyMedium {
            write: self.write(inner),
        }
    }

    /// Total faults fired so far across both channels.
    pub fn fired(&self) -> u64 {
        let r = self.read.lock().expect("fault channel poisoned").fired;
        let w = self.write.lock().expect("fault channel poisoned").fired;
        r + w
    }
}

/// How far the current operation may proceed, per the channel's plan.
enum Admit {
    /// Up to this many bytes (possibly the whole request) pass through.
    Allow(usize),
    /// The operation fails now with this error.
    Deny(io::Error),
    /// The read stream ended cleanly (short-read fault).
    Eof,
}

/// Decides the fate of an operation of `len` bytes at the channel cursor,
/// sleeping out any delay faults first (with the lock released).
fn admit(chan: &Mutex<ChannelState>, len: usize, is_read: bool) -> Admit {
    loop {
        let action = {
            let mut state = chan.lock().expect("fault channel poisoned");
            if let Some(kind) = state.dead {
                return Admit::Deny(ChannelState::dead_error(kind));
            }
            if state.eof {
                return if is_read {
                    Admit::Eof
                } else {
                    Admit::Deny(ChannelState::dead_error(io::ErrorKind::BrokenPipe))
                };
            }
            match state.first_in(len) {
                None => return Admit::Allow(len),
                Some((off, kind)) => {
                    let keep = (off - state.pos) as usize;
                    if keep > 0 {
                        // the fault boundary is inside this op: let bytes
                        // up to it through; the fault fires on a later op
                        return Admit::Allow(keep);
                    }
                    let (_, kind2) = state.consume_first();
                    debug_assert_eq!(kind, kind2);
                    match kind {
                        FaultKind::Delay(ms) => Some(ms), // sleep unlocked
                        FaultKind::Fail => {
                            state.dead = Some(io::ErrorKind::Other);
                            return Admit::Deny(io::Error::other("injected fault: I/O failure"));
                        }
                        FaultKind::Reset => {
                            state.dead = Some(io::ErrorKind::ConnectionReset);
                            return Admit::Deny(io::Error::new(
                                io::ErrorKind::ConnectionReset,
                                "injected fault: connection reset",
                            ));
                        }
                        FaultKind::Torn => {
                            if is_read {
                                state.eof = true;
                                return Admit::Eof;
                            }
                            state.dead = Some(io::ErrorKind::BrokenPipe);
                            return Admit::Deny(io::Error::new(
                                io::ErrorKind::BrokenPipe,
                                "injected fault: torn write",
                            ));
                        }
                    }
                }
            }
        };
        if let Some(ms) = action {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// A fault-injecting [`Read`] wrapper. Reads are truncated at the next
/// fault boundary so each fault fires at exactly its planned byte.
pub struct FaultyRead<R> {
    inner: R,
    chan: Arc<Mutex<ChannelState>>,
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allowed = match admit(&self.chan, buf.len(), true) {
            Admit::Allow(n) => n.min(buf.len()),
            Admit::Deny(e) => return Err(e),
            Admit::Eof => return Ok(0),
        };
        let n = self.inner.read(&mut buf[..allowed])?;
        self.chan.lock().expect("fault channel poisoned").pos += n as u64;
        Ok(n)
    }
}

/// A fault-injecting [`Write`] wrapper. Writes are truncated at the next
/// fault boundary, so a torn write commits exactly the planned prefix to
/// the underlying writer before breaking.
pub struct FaultyWrite<W> {
    inner: W,
    chan: Arc<Mutex<ChannelState>>,
}

impl<W> FaultyWrite<W> {
    /// The wrapped writer (e.g. to inspect an underlying buffer).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let allowed = match admit(&self.chan, buf.len(), false) {
            Admit::Allow(n) => n.min(buf.len()),
            Admit::Deny(e) => return Err(e),
            Admit::Eof => unreachable!("write channels do not EOF"),
        };
        let n = self.inner.write(&buf[..allowed])?;
        self.chan.lock().expect("fault channel poisoned").pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(kind) = self.chan.lock().expect("fault channel poisoned").dead {
            return Err(ChannelState::dead_error(kind));
        }
        self.inner.flush()
    }
}

impl<W: Write + Seek> Seek for FaultyWrite<W> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        // seeking moves the file cursor, not the fault cursor: fault
        // offsets count cumulative bytes *written* through the wrapper
        self.inner.seek(pos)
    }
}

impl<M: StoreMedium> StoreMedium for FaultyWrite<M> {
    fn sync_all(&mut self) -> io::Result<()> {
        if let Some(kind) = self.chan.lock().expect("fault channel poisoned").dead {
            return Err(ChannelState::dead_error(kind));
        }
        self.inner.sync_all()
    }
}

/// A fault-injecting [`StoreMedium`]: what `StoreWriter::create_with`
/// receives to put every store write (and `sync_all`) under the plan.
pub struct FaultyMedium<M> {
    write: FaultyWrite<M>,
}

impl<M: StoreMedium> Write for FaultyMedium<M> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.write.flush()
    }
}

impl<M: StoreMedium> Seek for FaultyMedium<M> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.write.seek(pos)
    }
}

impl<M: StoreMedium> StoreMedium for FaultyMedium<M> {
    fn sync_all(&mut self) -> io::Result<()> {
        self.write.sync_all()
    }
}

/// A fault-injecting positioned reader for the store's buffered backend.
/// Read-channel fault offsets are interpreted as absolute file offsets;
/// `read_exact_at` is all-or-nothing, so a `Torn` fault inside the span
/// surfaces as an `UnexpectedEof` failure rather than a silent prefix.
pub struct FaultyReadAt<F> {
    inner: F,
    chan: Arc<Mutex<ChannelState>>,
}

impl<F: ReadAt> ReadAt for FaultyReadAt<F> {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        loop {
            let action = {
                let mut state = self.chan.lock().expect("fault channel poisoned");
                if let Some(kind) = state.dead {
                    return Err(ChannelState::dead_error(kind));
                }
                let span = buf.len() as u64;
                let hit = state
                    .pending
                    .iter()
                    .position(|&(off, _)| off >= offset && off < offset + span.max(1));
                match hit {
                    None => None,
                    Some(i) => {
                        state.fired += 1;
                        let (_, kind) = state.pending.remove(i);
                        match kind {
                            FaultKind::Delay(ms) => Some(ms),
                            FaultKind::Fail => {
                                state.dead = Some(io::ErrorKind::Other);
                                return Err(io::Error::other(
                                    "injected fault: positioned read failure",
                                ));
                            }
                            FaultKind::Reset => {
                                state.dead = Some(io::ErrorKind::ConnectionReset);
                                return Err(io::Error::new(
                                    io::ErrorKind::ConnectionReset,
                                    "injected fault: connection reset",
                                ));
                            }
                            FaultKind::Torn => {
                                state.dead = Some(io::ErrorKind::UnexpectedEof);
                                return Err(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "injected fault: short positioned read",
                                ));
                            }
                        }
                    }
                }
            };
            match action {
                Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
                None => return self.inner.read_exact_at(buf, offset),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn plans_from_the_same_seed_are_identical() {
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed, 1000);
            let b = FaultPlan::from_seed(seed, 1000);
            assert_eq!(a.read, b.read, "seed={seed}");
            assert_eq!(a.write, b.write, "seed={seed}");
            assert!(!a.read.is_empty() || !a.write.is_empty(), "seed={seed}");
        }
    }

    #[test]
    fn torn_write_commits_exactly_the_planned_prefix() {
        let armed = FaultPlan::new().torn_write_at(10).arm();
        let mut w = armed.write(Vec::new());
        // write_all loops over partial writes, so the tear lands mid-call
        let err = w.write_all(&[0xAB; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.get_ref().len(), 10);
        // the channel stays broken
        assert!(w.write_all(&[1]).is_err());
        assert_eq!(armed.fired(), 1);
    }

    #[test]
    fn short_read_delivers_prefix_then_clean_eof() {
        let armed = FaultPlan::new().short_read_at(5).arm();
        let mut r = armed.read(Cursor::new(vec![7u8; 100]));
        let mut out = Vec::new();
        let n = r.read_to_end(&mut out).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, vec![7u8; 5]);
    }

    #[test]
    fn fail_and_reset_break_the_channel_at_the_byte() {
        let armed = FaultPlan::new().fail_read_at(3).arm();
        let mut r = armed.read(Cursor::new(vec![1u8; 10]));
        let mut buf = [0u8; 10];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert!(r.read(&mut buf).is_err());
        assert!(r.read(&mut buf).is_err());

        let armed = FaultPlan::new().reset_write_at(0).arm();
        let mut w = armed.write(Vec::new());
        let err = w.write(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn delay_is_transparent_to_the_byte_stream() {
        let armed = FaultPlan::new().delay_read_at(2, 1).arm();
        let mut r = armed.read(Cursor::new(vec![9u8; 8]));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![9u8; 8]);
        assert_eq!(armed.fired(), 1);
    }

    #[test]
    fn positioned_reads_trigger_on_absolute_offsets() {
        let path = std::env::temp_dir().join(format!("faults-pread-{}.bin", std::process::id()));
        std::fs::write(&path, vec![3u8; 64]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let armed = FaultPlan::new().fail_read_at(40).arm();
        let wrapped = armed.read_at(file);
        let mut buf = [0u8; 16];
        // [0, 16) misses the fault
        wrapped.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [3u8; 16]);
        // [32, 48) covers offset 40
        assert!(wrapped.read_exact_at(&mut buf, 32).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
