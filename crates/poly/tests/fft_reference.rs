//! Property tests pinning the twiddle-table (and, above the size
//! threshold, multi-threaded) FFT to an independent serial reference.
//!
//! The reference is the pre-table textbook kernel: per-layer `omega.pow`
//! for `w_m` and the serial `w *= w_m` chain inside every block — exactly
//! the code the production path replaced, kept here so a table-indexing or
//! work-splitting bug cannot hide behind a self-consistent fast path.

use proptest::prelude::*;
use zkrownn_ff::{Field, Fr};
use zkrownn_poly::{Radix2Domain, PARALLEL_FFT_MIN};

/// The original serial Cooley-Tukey kernel (decimation in time).
fn reference_fft(a: &mut [Fr], omega: Fr) {
    let n = a.len();
    assert!(n.is_power_of_two());
    if n == 1 {
        return;
    }
    let log_n = n.trailing_zeros();
    for k in 0..n as u64 {
        let rk = k.reverse_bits() >> (64 - log_n);
        if k < rk {
            a.swap(k as usize, rk as usize);
        }
    }
    let mut m = 1usize;
    for _ in 0..log_n {
        let w_m = omega.pow(&[(n / (2 * m)) as u64]);
        let mut k = 0;
        while k < n {
            let mut w = Fr::one();
            for j in 0..m {
                let t = w * a[k + j + m];
                a[k + j + m] = a[k + j] - t;
                a[k + j] += t;
                w *= w_m;
            }
            k += 2 * m;
        }
        m *= 2;
    }
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    (any::<u64>(), any::<u64>())
        .prop_map(|(a, b)| Fr::from_u64(a) * Fr::from_u64(b) + Fr::from_u64(b))
}

fn check_against_reference(coeffs: &[Fr]) {
    let domain = Radix2Domain::<Fr>::new(coeffs.len().max(1)).unwrap();
    let mut expected = coeffs.to_vec();
    expected.resize(domain.size, Fr::zero());
    reference_fft(&mut expected, domain.group_gen);
    assert_eq!(domain.fft(coeffs), expected, "forward FFT diverges");

    // inverse: reference kernel with ω⁻¹ plus the 1/m scale
    let mut inv = coeffs.to_vec();
    inv.resize(domain.size, Fr::zero());
    reference_fft(&mut inv, domain.group_gen_inv);
    for v in inv.iter_mut() {
        *v *= domain.size_inv;
    }
    assert_eq!(domain.ifft(coeffs), inv, "inverse FFT diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn table_fft_matches_reference(
        coeffs in prop::collection::vec(arb_fr(), 1..257),
    ) {
        check_against_reference(&coeffs);
    }

    #[test]
    fn coset_roundtrip_is_identity(
        coeffs in prop::collection::vec(arb_fr(), 1..129),
    ) {
        let domain = Radix2Domain::<Fr>::new(coeffs.len()).unwrap();
        let mut v = coeffs.clone();
        v.resize(domain.size, Fr::zero());
        let original = v.clone();
        domain.coset_fft_in_place(&mut v);
        domain.coset_ifft_in_place(&mut v);
        prop_assert_eq!(v, original);
    }

    #[test]
    fn elements_iterator_agrees_with_powers(size_log in 0u32..8) {
        let domain = Radix2Domain::<Fr>::new(1 << size_log).unwrap();
        let mut cur = Fr::one();
        for (i, e) in domain.elements().enumerate() {
            prop_assert_eq!(e, cur, "index {}", i);
            cur *= domain.group_gen;
        }
        prop_assert_eq!(domain.elements().len(), domain.size);
    }
}

/// One deterministic case big enough to cross [`PARALLEL_FFT_MIN`], so the
/// multi-threaded two-phase split is exercised against the serial reference
/// on machines with more than one core (and the table path everywhere).
#[test]
fn parallel_sized_fft_matches_reference() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xff7);
    let n = PARALLEL_FFT_MIN * 2;
    let coeffs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    check_against_reference(&coeffs);

    // and the coset round-trip at the same size
    let domain = Radix2Domain::<Fr>::new(n).unwrap();
    let mut v = coeffs.clone();
    domain.coset_fft_in_place(&mut v);
    domain.coset_ifft_in_place(&mut v);
    assert_eq!(v, coeffs);
}
