//! # zkrownn-poly — FFT domains and polynomials over BN254 Fr
//!
//! Radix-2 evaluation domains ([`Radix2Domain`]) with plain and coset
//! FFT/IFFT, Lagrange-coefficient evaluation (used by the Groth16 trusted
//! setup), and dense polynomials ([`DensePolynomial`]).
//!
//! ```
//! use zkrownn_poly::Radix2Domain;
//! use zkrownn_ff::{Field, Fr};
//! let domain = Radix2Domain::<Fr>::new(4).unwrap();
//! let coeffs = vec![Fr::from_u64(3), Fr::one()]; // p(x) = 3 + x
//! let evals = domain.fft(&coeffs);
//! assert_eq!(evals[0], Fr::from_u64(4)); // p(1)
//! assert_eq!(domain.ifft(&evals)[..2], coeffs[..]);
//! ```

#![warn(missing_docs)]

pub mod dense;
pub mod domain;

pub use dense::DensePolynomial;
pub use domain::{geometric_series, Elements, Radix2Domain, PARALLEL_FFT_MIN};
