//! Dense univariate polynomials (coefficient form).

use crate::domain::Radix2Domain;
use zkrownn_ff::PrimeField;

/// A dense polynomial `Σ coeffs[i]·xⁱ` with trailing zeros trimmed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DensePolynomial<F: PrimeField> {
    coeffs: Vec<F>,
}

impl<F: PrimeField> DensePolynomial<F> {
    /// Creates a polynomial from coefficients (low degree first).
    pub fn from_coefficients(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// Returns true for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficients (low degree first, no trailing zeros).
    pub fn coefficients(&self) -> &[F] {
        &self.coeffs
    }

    /// Degree (0 for constants; 0 for the zero polynomial by convention).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Horner evaluation.
    pub fn evaluate(&self, x: F) -> F {
        self.coeffs
            .iter()
            .rev()
            .fold(F::zero(), |acc, &c| acc * x + c)
    }

    /// Samples a random polynomial of the given degree.
    pub fn random<R: rand::Rng + ?Sized>(degree: usize, rng: &mut R) -> Self {
        Self::from_coefficients((0..=degree).map(|_| F::random(rng)).collect())
    }

    /// Product via FFT over a sufficiently large domain.
    ///
    /// # Panics
    /// Panics if the product degree exceeds the field's 2-adic FFT capacity.
    pub fn mul_via_fft(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let result_len = self.coeffs.len() + other.coeffs.len() - 1;
        let domain =
            Radix2Domain::<F>::new(result_len).expect("product degree exceeds FFT capacity");
        let mut a = self.coeffs.clone();
        let mut b = other.coeffs.clone();
        domain.fft_in_place(&mut a);
        domain.fft_in_place(&mut b);
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x *= *y;
        }
        domain.ifft_in_place(&mut a);
        a.truncate(result_len);
        Self::from_coefficients(a)
    }

    /// Schoolbook product (reference implementation for tests).
    pub fn mul_naive(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![F::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Self::from_coefficients(out)
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or_else(F::zero);
            let b = other.coeffs.get(i).copied().unwrap_or_else(F::zero);
            out.push(a + b);
        }
        Self::from_coefficients(out)
    }

    /// Divides by the vanishing polynomial `x^m − 1`, returning
    /// `(quotient, remainder)`.
    pub fn divide_by_vanishing_poly(&self, m: usize) -> (Self, Self) {
        if self.coeffs.len() <= m {
            return (Self::zero(), self.clone());
        }
        // synthetic division: x^m ≡ 1 (mod x^m - 1) folding
        let mut rem = self.coeffs.clone();
        let mut quot = vec![F::zero(); self.coeffs.len() - m];
        for i in (m..self.coeffs.len()).rev() {
            let c = rem[i];
            quot[i - m] += c;
            rem[i - m] += c;
            rem[i] = F::zero();
        }
        rem.truncate(m);
        (Self::from_coefficients(quot), Self::from_coefficients(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_ff::{Field, Fr};

    #[test]
    fn mul_fft_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        for (da, db) in [(0usize, 0usize), (3, 5), (16, 1), (31, 33)] {
            let a = DensePolynomial::<Fr>::random(da, &mut rng);
            let b = DensePolynomial::<Fr>::random(db, &mut rng);
            assert_eq!(a.mul_via_fft(&b), a.mul_naive(&b));
        }
    }

    #[test]
    fn evaluate_distributes_over_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(112);
        let a = DensePolynomial::<Fr>::random(7, &mut rng);
        let b = DensePolynomial::<Fr>::random(4, &mut rng);
        let x = Fr::random(&mut rng);
        assert_eq!(a.mul_via_fft(&b).evaluate(x), a.evaluate(x) * b.evaluate(x));
    }

    #[test]
    fn divide_by_vanishing_poly_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        let m = 8usize;
        let h = DensePolynomial::<Fr>::random(5, &mut rng);
        // p = h · (x^m − 1)
        let mut z = vec![Fr::zero(); m + 1];
        z[0] = -Fr::one();
        z[m] = Fr::one();
        let zpoly = DensePolynomial::from_coefficients(z);
        let p = h.mul_naive(&zpoly);
        let (q, r) = p.divide_by_vanishing_poly(m);
        assert_eq!(q, h);
        assert!(r.is_zero());
    }

    #[test]
    fn divide_by_vanishing_poly_with_remainder() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(114);
        let m = 4usize;
        let p = DensePolynomial::<Fr>::random(9, &mut rng);
        let (q, r) = p.divide_by_vanishing_poly(m);
        assert!(r.degree() < m);
        // reconstruct: q·(x^m − 1) + r == p
        let mut z = vec![Fr::zero(); m + 1];
        z[0] = -Fr::one();
        z[m] = Fr::one();
        let zpoly = DensePolynomial::from_coefficients(z);
        assert_eq!(q.mul_naive(&zpoly).add(&r), p);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p =
            DensePolynomial::<Fr>::from_coefficients(vec![Fr::from_u64(1), Fr::zero(), Fr::zero()]);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.coefficients().len(), 1);
    }
}
