//! The registry the service actually serves from: the concurrent
//! [`ShardedKeyRegistry`] for verification, composed with the append-only
//! [`Ledger`] recording every `(circuit, statement)` registration.
//!
//! Key verification and ledger queries have different concurrency shapes,
//! so they keep their own synchronization: claim verification goes through
//! the sharded per-circuit locks untouched (the coalescer holds an `Arc`
//! to the inner [`ShardedKeyRegistry`]), while the ledger — appended to
//! rarely, queried cheaply — sits behind one `RwLock` together with the
//! leaf→index map that answers `PROVE_MEMBER` lookups.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use zkrownn::{CircuitId, ShardedKeyRegistry, VerifierKit};
use zkrownn_groth16::VerifyingKey;

use crate::accumulator::Ledger;
use crate::wire::{ConsistencyProof, LedgerLeaf, LedgerRoot, MembershipProof};

/// What one [`LedgeredRegistry::register`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Registration {
    /// Whether the circuit's key was newly prepared (pairing
    /// precomputation ran) rather than already cached.
    pub newly_prepared: bool,
    /// The ledger index the `(circuit, statement)` leaf was appended at,
    /// or `None` when that exact pair was already in the ledger.
    pub appended_at: Option<u64>,
}

struct LedgerState {
    ledger: Ledger,
    /// Canonical leaf encoding → index of its (first) appearance.
    index: HashMap<[u8; 64], u64>,
}

impl LedgerState {
    /// Appends `leaf` unless that exact encoding is already in the
    /// ledger; returns the new index, or `None` on a duplicate.
    fn append_unique(&mut self, leaf: [u8; 64]) -> Option<u64> {
        if self.index.contains_key(&leaf) {
            return None;
        }
        let at = self.ledger.append(&leaf);
        self.index.insert(leaf, at);
        Some(at)
    }
}

/// A [`ShardedKeyRegistry`] that additionally commits every registration
/// to an append-only Merkle ledger.
///
/// Registration is idempotent on both layers: a repeated circuit skips the
/// pairing precomputation, and a repeated `(circuit, statement)` pair
/// appends no duplicate leaf. The same circuit registered for a *new*
/// statement does append — the ledger records registered disputes, not
/// just key material.
pub struct LedgeredRegistry {
    keys: Arc<ShardedKeyRegistry>,
    state: RwLock<LedgerState>,
}

impl Default for LedgeredRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LedgeredRegistry {
    /// An empty registry over an empty ledger.
    pub fn new() -> Self {
        Self {
            keys: Arc::new(ShardedKeyRegistry::new()),
            state: RwLock::new(LedgerState {
                ledger: Ledger::new(),
                index: HashMap::new(),
            }),
        }
    }

    /// The inner key registry — what the verification hot path (and the
    /// service's coalescer) uses; cloning the `Arc` never touches the
    /// ledger lock.
    pub fn keys(&self) -> &Arc<ShardedKeyRegistry> {
        &self.keys
    }

    /// Registers a verifying key for `(id, statement_digest)`: prepares
    /// and caches the key if the circuit is new, and appends the pair's
    /// leaf to the ledger if the pair is new.
    pub fn register(
        &self,
        id: CircuitId,
        statement_digest: [u8; 32],
        vk: &VerifyingKey,
    ) -> Registration {
        let newly_prepared = self.keys.register(id, vk);
        let leaf = LedgerLeaf {
            circuit_id: id,
            statement_digest,
        }
        .to_bytes();
        let appended_at = self
            .state
            .write()
            .expect("ledger lock poisoned")
            .append_unique(leaf);
        Registration {
            newly_prepared,
            appended_at,
        }
    }

    /// Registers a [`VerifierKit`]'s key under its circuit id and the
    /// statement digest it is bound to ([`VerifierKit::bind_statement`]);
    /// an unbound kit records an all-zero statement digest.
    pub fn register_kit(&self, kit: &VerifierKit) -> Registration {
        self.register(
            kit.circuit_id(),
            kit.expected_statement().unwrap_or([0u8; 32]),
            kit.verifying_key(),
        )
    }

    /// Number of registered circuits (distinct keys, not ledger leaves).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no circuit is registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of leaves in the ledger (distinct registered pairs).
    pub fn ledger_size(&self) -> u64 {
        self.state
            .read()
            .expect("ledger lock poisoned")
            .ledger
            .size()
    }

    /// The current signed-off head: size and root, ready to serve.
    pub fn current_root(&self) -> LedgerRoot {
        let state = self.state.read().expect("ledger lock poisoned");
        LedgerRoot {
            size: state.ledger.size(),
            root: state.ledger.root(),
        }
    }

    /// Membership proof for a registered leaf against the current root,
    /// or `None` when that exact `(circuit, statement)` pair was never
    /// registered.
    pub fn prove_member(&self, leaf: &LedgerLeaf) -> Option<MembershipProof> {
        let state = self.state.read().expect("ledger lock poisoned");
        let index = *state.index.get(&leaf.to_bytes())?;
        let path = state
            .ledger
            .prove_membership(index)
            .expect("indexed leaf is in range");
        Some(MembershipProof {
            index,
            size: state.ledger.size(),
            path,
        })
    }

    /// Consistency proof from the root at `old_size` to the current root,
    /// or `None` when `old_size` exceeds the ledger.
    pub fn prove_consistency(&self, old_size: u64) -> Option<ConsistencyProof> {
        let state = self.state.read().expect("ledger lock poisoned");
        let path = state.ledger.prove_consistency(old_size)?;
        Some(ConsistencyProof {
            old_size,
            new_size: state.ledger.size(),
            path,
        })
    }
}

// Shared across server workers exactly like the inner sharded registry.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LedgeredRegistry>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::verify_membership;
    use zkrownn::Artifact;

    fn dummy_leaf(i: u8) -> (CircuitId, [u8; 32]) {
        (CircuitId::from_bytes([i; 32]), [i ^ 0xff; 32])
    }

    /// Minting a structurally valid verifying key needs the full trusted
    /// setup, so this test drives the ledger half through the same
    /// `append_unique` path `register` uses; the key path is covered by
    /// the service e2e suite.
    #[test]
    fn ledger_side_dedup_and_proofs() {
        let registry = LedgeredRegistry::new();
        assert_eq!(registry.ledger_size(), 0);
        assert_eq!(registry.current_root().size, 0);

        let (id_a, stmt_a) = dummy_leaf(1);
        let (id_b, stmt_b) = dummy_leaf(2);
        {
            let mut state = registry.state.write().unwrap();
            for (i, (id, stmt)) in [(id_a, stmt_a), (id_b, stmt_b), (id_a, stmt_b)]
                .into_iter()
                .enumerate()
            {
                let leaf = LedgerLeaf {
                    circuit_id: id,
                    statement_digest: stmt,
                }
                .to_bytes();
                assert_eq!(state.append_unique(leaf), Some(i as u64));
                // the exact pair is deduplicated
                assert_eq!(state.append_unique(leaf), None);
            }
        }
        assert_eq!(registry.ledger_size(), 3);

        let root = registry.current_root();
        let member = LedgerLeaf {
            circuit_id: id_a,
            statement_digest: stmt_b,
        };
        let proof = registry.prove_member(&member).expect("registered pair");
        assert_eq!(proof.index, 2);
        verify_membership(&root.to_bytes(), &member.to_bytes(), &proof.to_bytes())
            .expect("proof verifies offline");

        let absent = LedgerLeaf {
            circuit_id: id_b,
            statement_digest: stmt_a,
        };
        assert!(registry.prove_member(&absent).is_none());

        let consistency = registry.prove_consistency(2).expect("2 <= 3");
        assert_eq!(consistency.old_size, 2);
        assert_eq!(consistency.new_size, 3);
        assert!(registry.prove_consistency(4).is_none());
    }
}
