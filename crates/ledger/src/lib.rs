//! # zkrownn-ledger — the authority's registry as a verifiable log
//!
//! ZKROWNN's dispute story so far assumes the authority is *online* for
//! every question about its registry. This crate removes that assumption:
//! every `(circuit, statement)` registration is committed to an
//! append-only Merkle accumulator, and two kinds of logarithmic proofs
//! make the registry auditable from a 40-byte commitment alone —
//!
//! * a **membership proof** shows a specific `(circuit, statement)` pair
//!   is in the registry a published root commits to;
//! * a **consistency proof** shows one published root is a strict prefix
//!   of a later one — the authority extended its registry and did not
//!   rewrite history.
//!
//! Both verify offline via [`verify_membership`] / [`verify_consistency`]
//! from raw bytes: no registry, no network, no key material — the shape a
//! third-party auditor needs (the accumulator-over-model-commitments
//! design A2-DIDM uses for registrar-free auditing).
//!
//! Module map:
//!
//! * [`accumulator`] — the RFC 6962-shaped history tree: domain-separated
//!   leaf/node hashing over [`zkrownn::artifact::Sha256`], binary-counter
//!   appends, peak bagging, proof generation, hash-level verification;
//! * [`wire`] — [`LedgerRoot`], [`MembershipProof`] and
//!   [`ConsistencyProof`] as standard [`Artifact`](zkrownn::Artifact)
//!   envelopes, plus the byte-level offline verifiers;
//! * [`registry`] — [`LedgeredRegistry`]: the service-facing composition
//!   of [`zkrownn::ShardedKeyRegistry`] and the ledger, appending one
//!   leaf per distinct registration.
//!
//! ```
//! use zkrownn::{Artifact, CircuitId};
//! use zkrownn_ledger::{verify_membership, Ledger, LedgerLeaf, LedgerRoot, MembershipProof};
//!
//! // the authority side: append registrations, publish the root
//! let leaf = LedgerLeaf {
//!     circuit_id: CircuitId::from_bytes([7; 32]),
//!     statement_digest: [9; 32],
//! };
//! let mut ledger = Ledger::new();
//! for i in 0..5u64 {
//!     ledger.append(&LedgerLeaf {
//!         circuit_id: CircuitId::from_bytes([i as u8; 32]),
//!         statement_digest: [0; 32],
//!     }.to_bytes());
//! }
//! let index = ledger.append(&leaf.to_bytes());
//! let root = LedgerRoot { size: ledger.size(), root: ledger.root() };
//! let proof = MembershipProof {
//!     index,
//!     size: ledger.size(),
//!     path: ledger.prove_membership(index).unwrap(),
//! };
//!
//! // the auditor side: bytes in, verdict out — the authority can be gone
//! verify_membership(&root.to_bytes(), &leaf.to_bytes(), &proof.to_bytes())
//!     .expect("the pair is in the committed registry");
//! ```

#![deny(missing_docs)]

pub mod accumulator;
pub mod registry;
pub mod wire;

pub use accumulator::{
    empty_root, leaf_hash, node_hash, verify_consistency_roots, verify_membership_hashes, Ledger,
    LEDGER_DOMAIN_TAG,
};
pub use registry::{LedgeredRegistry, Registration};
pub use wire::{
    verify_consistency, verify_membership, ConsistencyProof, LedgerError, LedgerLeaf, LedgerRoot,
    MembershipProof, LEAF_LEN,
};
