//! The accumulator itself: an RFC 6962-shaped Merkle *history tree* over
//! an append-only sequence of leaves.
//!
//! The tree over `n` leaves is defined recursively: the root of a range
//! splits it at `k`, the largest power of two strictly below its length,
//! hashes the two subranges, and combines them with a node-tagged hash.
//! This shape has two properties the registry needs:
//!
//! * **append-only**: the tree over the first `m` leaves is a function of
//!   those leaves alone, so the root history forms a verifiable chain —
//!   a *consistency proof* shows an old root is a prefix of a new one
//!   without replaying the leaves in between;
//! * **logarithmic proofs**: membership of leaf `i` and consistency of a
//!   prefix `m ⊆ n` are both `O(log n)` hashes to produce and verify.
//!
//! Storage is a table of complete-subtree hashes: `levels[k][i]` is the
//! hash of the complete subtree over leaves `[i·2ᵏ, (i+1)·2ᵏ)`. An append
//! pushes one leaf hash and merges completed pairs upward like a binary
//! counter — `O(1)` amortized, `O(log n)` worst case, and the incomplete
//! right spine (the *frontier*) is never materialized: roots of ragged
//! ranges are bagged on demand from at most `log n` stored peaks.
//!
//! Hashing is domain-separated SHA-256 ([`zkrownn::artifact::sha256`]'s
//! streaming sibling): every preimage opens with [`LEDGER_DOMAIN_TAG`] and
//! a role byte — `0x00` for leaves, `0x01` for interior nodes, `0x02` for
//! the empty root — so a leaf encoding can never be confused with an
//! interior node (the classic second-preimage trick against untagged
//! Merkle trees), and ledger hashes can never collide with the artifact
//! checksum or [`CircuitId`](zkrownn::CircuitId) domains.

use zkrownn::artifact::Sha256;

/// Domain separator opening every ledger hash preimage.
pub const LEDGER_DOMAIN_TAG: &[u8] = b"zkrownn.ledger.v1";

const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;
const EMPTY_TAG: u8 = 0x02;

/// Hashes a leaf encoding into its leaf-tagged digest.
pub fn leaf_hash(leaf_bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(LEDGER_DOMAIN_TAG);
    h.update(&[LEAF_TAG]);
    h.update(leaf_bytes);
    h.finalize()
}

/// Combines two child digests into their node-tagged parent.
pub fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(LEDGER_DOMAIN_TAG);
    h.update(&[NODE_TAG]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// The root of the empty ledger — a constant, distinct from every
/// leaf-tagged and node-tagged digest.
pub fn empty_root() -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(LEDGER_DOMAIN_TAG);
    h.update(&[EMPTY_TAG]);
    h.finalize()
}

/// Largest power of two strictly below `n` (the RFC 6962 split point).
/// Requires `n >= 2`.
fn split_point(n: u64) -> u64 {
    debug_assert!(n >= 2);
    1u64 << (63 - (n - 1).leading_zeros())
}

/// An append-only Merkle accumulator over opaque leaf encodings.
///
/// Appends are cheap ([`Ledger::append`]), the current root and any
/// historical prefix root are `O(log n)` ([`Ledger::root`],
/// [`Ledger::root_at`]), and the ledger produces the two proof kinds the
/// wire layer ships: [`Ledger::prove_membership`] and
/// [`Ledger::prove_consistency`]. Verification lives in the free
/// functions [`verify_membership_hashes`] and [`verify_consistency_roots`]
/// — they need only hashes, never the ledger.
#[derive(Default, Clone)]
pub struct Ledger {
    /// `levels[k][i]` = hash of the complete subtree over leaves
    /// `[i·2ᵏ, (i+1)·2ᵏ)`; `levels[0]` holds the leaf hashes themselves.
    levels: Vec<Vec<[u8; 32]>>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of leaves appended so far.
    pub fn size(&self) -> u64 {
        self.levels.first().map_or(0, |l| l.len() as u64)
    }

    /// Appends one leaf encoding; returns its index. Merges completed
    /// subtree pairs upward like a binary counter: `O(1)` amortized.
    pub fn append(&mut self, leaf_bytes: &[u8]) -> u64 {
        let hash = leaf_hash(leaf_bytes);
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(hash);
        let index = self.levels[0].len() as u64 - 1;
        let mut k = 0;
        loop {
            if self.levels.len() == k + 1 {
                self.levels.push(Vec::new());
            }
            let filled = self.levels[k + 1].len();
            if self.levels[k].len() < 2 * (filled + 1) {
                break;
            }
            let parent = node_hash(&self.levels[k][2 * filled], &self.levels[k][2 * filled + 1]);
            self.levels[k + 1].push(parent);
            k += 1;
        }
        index
    }

    /// The current root (the empty-root constant when no leaf exists).
    pub fn root(&self) -> [u8; 32] {
        self.root_at(self.size())
    }

    /// The historical root after the first `m` appends. Requires
    /// `m <= self.size()`; `m == 0` yields the empty root.
    pub fn root_at(&self, m: u64) -> [u8; 32] {
        assert!(m <= self.size(), "prefix {m} exceeds ledger size");
        if m == 0 {
            empty_root()
        } else {
            self.range_root(0, m)
        }
    }

    /// Root of the subtree over leaves `[lo, hi)` (`lo < hi <= size`).
    /// Complete aligned subtrees are table lookups; ragged ranges recurse
    /// on the right spine only, so this is `O(log (hi - lo))`.
    fn range_root(&self, lo: u64, hi: u64) -> [u8; 32] {
        let len = hi - lo;
        if len.is_power_of_two() && lo.is_multiple_of(len) {
            let k = len.trailing_zeros() as usize;
            return self.levels[k][(lo >> k) as usize];
        }
        let k = split_point(len);
        node_hash(&self.range_root(lo, lo + k), &self.range_root(lo + k, hi))
    }

    /// Audit path for leaf `index` against the current root: sibling
    /// subtree roots from the leaf upward. `None` when `index` is out of
    /// range. Verify with [`verify_membership_hashes`].
    pub fn prove_membership(&self, index: u64) -> Option<Vec<[u8; 32]>> {
        if index >= self.size() {
            return None;
        }
        let mut path = Vec::new();
        self.membership_path(index, 0, self.size(), &mut path);
        Some(path)
    }

    fn membership_path(&self, index: u64, lo: u64, hi: u64, out: &mut Vec<[u8; 32]>) {
        if hi - lo <= 1 {
            return;
        }
        let k = split_point(hi - lo);
        if index < lo + k {
            self.membership_path(index, lo, lo + k, out);
            out.push(self.range_root(lo + k, hi));
        } else {
            self.membership_path(index, lo + k, hi, out);
            out.push(self.range_root(lo, lo + k));
        }
    }

    /// Consistency path showing the root over the first `old_size` leaves
    /// is a prefix of the current tree. `None` when `old_size` exceeds the
    /// ledger (nothing to prove) — `old_size` of `0` or `size` yields the
    /// trivial empty path. Verify with [`verify_consistency_roots`].
    pub fn prove_consistency(&self, old_size: u64) -> Option<Vec<[u8; 32]>> {
        let n = self.size();
        if old_size > n {
            return None;
        }
        if old_size == 0 || old_size == n {
            return Some(Vec::new());
        }
        let mut path = Vec::new();
        self.consistency_subproof(old_size, 0, n, true, &mut path);
        Some(path)
    }

    /// RFC 6962 `SUBPROOF(m, D[lo:hi], complete)`: `complete` records
    /// whether the old tree's root is still derivable from the caller's
    /// context (true only while descending the left spine).
    fn consistency_subproof(
        &self,
        m: u64,
        lo: u64,
        hi: u64,
        complete: bool,
        out: &mut Vec<[u8; 32]>,
    ) {
        let n = hi - lo;
        if m == n {
            if !complete {
                out.push(self.range_root(lo, hi));
            }
            return;
        }
        let k = split_point(n);
        if m <= k {
            self.consistency_subproof(m, lo, lo + k, complete, out);
            out.push(self.range_root(lo + k, hi));
        } else {
            self.consistency_subproof(m - k, lo + k, hi, false, out);
            out.push(self.range_root(lo, lo + k));
        }
    }
}

/// Recomputes the root implied by a membership path (RFC 9162 §2.1.3.2's
/// iterative algorithm). Returns `None` when the path length does not
/// match the claimed `(index, size)` position.
pub fn membership_root(
    leaf: &[u8; 32],
    index: u64,
    size: u64,
    path: &[[u8; 32]],
) -> Option<[u8; 32]> {
    if index >= size {
        return None;
    }
    let mut fnode = index;
    let mut snode = size - 1;
    let mut acc = *leaf;
    for sibling in path {
        if snode == 0 {
            return None; // path longer than the position requires
        }
        if fnode & 1 == 1 || fnode == snode {
            acc = node_hash(sibling, &acc);
            if fnode & 1 == 0 {
                // skip levels where the accumulated node has no sibling
                while fnode & 1 == 0 && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            acc = node_hash(&acc, sibling);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    (snode == 0).then_some(acc)
}

/// Checks a membership path end to end: the path must place the leaf hash
/// at `index` in a tree of `size` leaves whose root is `root`.
pub fn verify_membership_hashes(
    root: &[u8; 32],
    leaf: &[u8; 32],
    index: u64,
    size: u64,
    path: &[[u8; 32]],
) -> bool {
    membership_root(leaf, index, size, path) == Some(*root)
}

/// Checks a consistency path (RFC 9162 §2.1.4.2's iterative algorithm):
/// the tree of `old_size` leaves with root `old_root` must be a prefix of
/// the tree of `new_size` leaves with root `new_root`.
///
/// The two degenerate prefixes need no path: `old_size == new_size`
/// requires equal roots, and `old_size == 0` requires `old_root` to be
/// the [`empty_root`] constant.
pub fn verify_consistency_roots(
    old_root: &[u8; 32],
    old_size: u64,
    new_root: &[u8; 32],
    new_size: u64,
    path: &[[u8; 32]],
) -> bool {
    if old_size > new_size {
        return false;
    }
    if old_size == new_size {
        return path.is_empty() && old_root == new_root;
    }
    if old_size == 0 {
        return path.is_empty() && *old_root == empty_root();
    }
    // when the old tree is a complete (power-of-two) subtree its root is a
    // node of the new tree and the prover omits it; reconstitute it here
    let mut steps = path.iter();
    let first = if old_size.is_power_of_two() {
        old_root
    } else {
        match steps.next() {
            Some(h) => h,
            None => return false,
        }
    };
    let mut old_acc = *first;
    let mut new_acc = *first;
    let mut fnode = old_size - 1;
    let mut snode = new_size - 1;
    while fnode & 1 == 1 {
        fnode >>= 1;
        snode >>= 1;
    }
    for sibling in steps {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            old_acc = node_hash(sibling, &old_acc);
            new_acc = node_hash(sibling, &new_acc);
            if fnode & 1 == 0 {
                while fnode & 1 == 0 && fnode != 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            new_acc = node_hash(&new_acc, sibling);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && old_acc == *old_root && new_acc == *new_root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(i: u64) -> Vec<u8> {
        let mut out = vec![0u8; 64];
        out[..8].copy_from_slice(&i.to_le_bytes());
        out
    }

    fn build(n: u64) -> Ledger {
        let mut ledger = Ledger::new();
        for i in 0..n {
            assert_eq!(ledger.append(&leaf(i)), i);
        }
        ledger
    }

    /// Reference root: the textbook recursion over the raw leaf list.
    fn naive_root(leaves: &[[u8; 32]]) -> [u8; 32] {
        match leaves.len() {
            0 => empty_root(),
            1 => leaves[0],
            n => {
                let k = split_point(n as u64) as usize;
                node_hash(&naive_root(&leaves[..k]), &naive_root(&leaves[k..]))
            }
        }
    }

    #[test]
    fn incremental_root_matches_the_naive_recursion() {
        let mut ledger = Ledger::new();
        let mut hashes = Vec::new();
        for i in 0..70u64 {
            ledger.append(&leaf(i));
            hashes.push(leaf_hash(&leaf(i)));
            assert_eq!(ledger.root(), naive_root(&hashes), "n = {}", i + 1);
        }
        // historical prefixes replay the same sequence of roots
        for m in 0..=70u64 {
            assert_eq!(ledger.root_at(m), naive_root(&hashes[..m as usize]));
        }
    }

    #[test]
    fn membership_paths_verify_at_every_position() {
        for n in [1u64, 2, 3, 7, 8, 13, 64, 65] {
            let ledger = build(n);
            let root = ledger.root();
            for i in 0..n {
                let path = ledger.prove_membership(i).expect("in range");
                assert!(
                    path.len() <= 64,
                    "path over-long at n={n} i={i}: {}",
                    path.len()
                );
                assert!(
                    verify_membership_hashes(&root, &leaf_hash(&leaf(i)), i, n, &path),
                    "n={n} i={i}"
                );
                // the same path pins the leaf to its position
                if n > 1 {
                    let other = (i + 1) % n;
                    assert!(!verify_membership_hashes(
                        &root,
                        &leaf_hash(&leaf(i)),
                        other,
                        n,
                        &path
                    ));
                }
            }
            assert!(ledger.prove_membership(n).is_none());
        }
    }

    #[test]
    fn consistency_paths_verify_for_every_prefix() {
        let n = 37u64;
        let ledger = build(n);
        let new_root = ledger.root();
        for m in 0..=n {
            let path = ledger.prove_consistency(m).expect("m <= n");
            let old_root = ledger.root_at(m);
            assert!(
                verify_consistency_roots(&old_root, m, &new_root, n, &path),
                "m={m}"
            );
        }
        assert!(ledger.prove_consistency(n + 1).is_none());
    }

    #[test]
    fn consistency_rejects_a_forked_history() {
        // two ledgers agreeing on 9 leaves, then diverging
        let honest = build(20);
        let mut forked = build(9);
        for i in 0..11u64 {
            forked.append(&leaf(1000 + i));
        }
        let path = honest.prove_consistency(9).unwrap();
        assert!(verify_consistency_roots(
            &honest.root_at(9),
            9,
            &honest.root(),
            20,
            &path
        ));
        // the forked tip is not an extension of the honest prefix
        assert!(!verify_consistency_roots(
            &honest.root_at(9),
            9,
            &forked.root(),
            20,
            &path
        ));
        // and the honest tip does not extend a fabricated prefix
        assert!(!verify_consistency_roots(
            &forked.root(),
            9,
            &honest.root(),
            20,
            &path
        ));
    }

    #[test]
    fn domain_tags_separate_leaves_nodes_and_empty() {
        let l = leaf_hash(&[0u8; 64]);
        let n = node_hash(&[0u8; 32], &[0u8; 32]);
        assert_ne!(l, n);
        assert_ne!(l, empty_root());
        assert_ne!(n, empty_root());
        // a node preimage presented as a leaf hashes differently
        let mut node_preimage = Vec::new();
        node_preimage.extend_from_slice(&[0u8; 64]);
        assert_ne!(leaf_hash(&node_preimage), n);
    }

    #[test]
    fn split_points() {
        assert_eq!(split_point(2), 1);
        assert_eq!(split_point(3), 2);
        assert_eq!(split_point(4), 2);
        assert_eq!(split_point(5), 4);
        assert_eq!(split_point(1 << 40), 1 << 39);
        assert_eq!(split_point((1 << 40) + 1), 1 << 40);
    }
}
