//! Wire forms: the registry leaf encoding, the three ledger artifacts
//! ([`LedgerRoot`], [`MembershipProof`], [`ConsistencyProof`]) wrapped in
//! the standard [`Artifact`] envelope, and the standalone byte-level
//! verifiers [`verify_membership`] / [`verify_consistency`] — everything a
//! party needs to audit the registry with no registry, no network, and no
//! key material.

use zkrownn::{Artifact, ArtifactKind, CircuitId, WireError};

use crate::accumulator::{leaf_hash, verify_consistency_roots, verify_membership_hashes};

/// What the registry appends per registration: the circuit's synthesis-
/// trace digest plus the content digest of the statement it was registered
/// for. The canonical encoding is the fixed 64-byte concatenation — this
/// is the `leaf_bytes` argument of [`verify_membership`] and the payload
/// of the service's `PROVE_MEMBER` opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerLeaf {
    /// The registered circuit.
    pub circuit_id: CircuitId,
    /// Content digest of the statement registered alongside it
    /// ([`zkrownn::OwnershipStatement::content_digest`]).
    pub statement_digest: [u8; 32],
}

/// Canonical leaf encoding length: two 32-byte digests.
pub const LEAF_LEN: usize = 64;

impl LedgerLeaf {
    /// The canonical 64-byte leaf encoding (what gets leaf-hashed).
    pub fn to_bytes(&self) -> [u8; LEAF_LEN] {
        let mut out = [0u8; LEAF_LEN];
        out[..32].copy_from_slice(self.circuit_id.as_bytes());
        out[32..].copy_from_slice(&self.statement_digest);
        out
    }

    /// Parses a canonical 64-byte leaf encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() != LEAF_LEN {
            return Err(WireError::LengthMismatch {
                expected: LEAF_LEN,
                got: bytes.len(),
            });
        }
        let mut id = [0u8; 32];
        id.copy_from_slice(&bytes[..32]);
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[32..]);
        Ok(Self {
            circuit_id: CircuitId::from_bytes(id),
            statement_digest: digest,
        })
    }
}

/// A signed-off ledger head: the tree size and the root digest at that
/// size. What the `ROOT` opcode serves and what both proof kinds verify
/// against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerRoot {
    /// Number of leaves the root commits to.
    pub size: u64,
    /// The accumulator root over those leaves.
    pub root: [u8; 32],
}

impl LedgerRoot {
    /// Full lowercase-hex rendering of the root digest.
    pub fn root_hex(&self) -> String {
        self.root.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl Artifact for LedgerRoot {
    const KIND: ArtifactKind = ArtifactKind::LedgerRoot;

    fn payload_size(&self) -> usize {
        8 + 32
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.root);
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() != 8 + 32 {
            return Err(WireError::LengthMismatch {
                expected: 8 + 32,
                got: payload.len(),
            });
        }
        let size = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let mut root = [0u8; 32];
        root.copy_from_slice(&payload[8..]);
        Ok(Self { size, root })
    }
}

/// Longest admissible membership path (a `u64`-sized tree is at most 64
/// levels deep).
const MAX_MEMBERSHIP_PATH: usize = 64;

/// Longest admissible consistency path (one stored peak per level of the
/// old and new trees).
const MAX_CONSISTENCY_PATH: usize = 129;

fn read_path(payload: &[u8], offset: usize, max: usize) -> Result<Vec<[u8; 32]>, WireError> {
    let declared = payload
        .get(offset..offset + 8)
        .ok_or(WireError::Truncated {
            needed: offset + 8,
            got: payload.len(),
        })?;
    let len = u64::from_le_bytes(declared.try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| WireError::Malformed("path length overflow"))?;
    if len > max {
        return Err(WireError::Malformed("proof path is impossibly long"));
    }
    let body = offset + 8;
    let expected = body + 32 * len;
    if payload.len() != expected {
        return Err(WireError::LengthMismatch {
            expected,
            got: payload.len(),
        });
    }
    Ok((0..len)
        .map(|i| {
            let mut h = [0u8; 32];
            h.copy_from_slice(&payload[body + 32 * i..body + 32 * (i + 1)]);
            h
        })
        .collect())
}

fn write_path(path: &[[u8; 32]], out: &mut Vec<u8>) {
    out.extend_from_slice(&(path.len() as u64).to_le_bytes());
    for h in path {
        out.extend_from_slice(h);
    }
}

/// Proof that one leaf sits at a specific index of the tree a
/// [`LedgerRoot`] commits to: the audit path of sibling subtree roots.
/// The leaf encoding itself is deliberately *not* embedded — the verifier
/// hashes the leaf bytes it cares about, so a proof can never smuggle in a
/// different leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipProof {
    /// The leaf's position in the tree.
    pub index: u64,
    /// Size of the tree the proof targets (must match the root's).
    pub size: u64,
    /// Sibling subtree roots, leaf-to-root order.
    pub path: Vec<[u8; 32]>,
}

impl Artifact for MembershipProof {
    const KIND: ArtifactKind = ArtifactKind::MembershipProof;

    fn payload_size(&self) -> usize {
        8 + 8 + 8 + 32 * self.path.len()
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        write_path(&self.path, out);
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < 24 {
            return Err(WireError::Truncated {
                needed: 24,
                got: payload.len(),
            });
        }
        let index = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let size = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let path = read_path(payload, 16, MAX_MEMBERSHIP_PATH)?;
        Ok(Self { index, size, path })
    }
}

/// Proof that the tree at `old_size` is a prefix of the tree at
/// `new_size`: the RFC 6962 consistency path between the two roots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// Size of the earlier tree.
    pub old_size: u64,
    /// Size of the later tree (must match the new root's).
    pub new_size: u64,
    /// Consistency path hashes, deepest-first.
    pub path: Vec<[u8; 32]>,
}

impl Artifact for ConsistencyProof {
    const KIND: ArtifactKind = ArtifactKind::ConsistencyProof;

    fn payload_size(&self) -> usize {
        8 + 8 + 8 + 32 * self.path.len()
    }

    fn write_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.old_size.to_le_bytes());
        out.extend_from_slice(&self.new_size.to_le_bytes());
        write_path(&self.path, out);
    }

    fn read_payload(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() < 24 {
            return Err(WireError::Truncated {
                needed: 24,
                got: payload.len(),
            });
        }
        let old_size = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let new_size = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let path = read_path(payload, 16, MAX_CONSISTENCY_PATH)?;
        Ok(Self {
            old_size,
            new_size,
            path,
        })
    }
}

/// Why an offline ledger verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A root or proof artifact failed to decode.
    Wire(WireError),
    /// The proof and the root disagree about the tree size it targets.
    SizeMismatch {
        /// Size named by the proof.
        proof: u64,
        /// Size committed by the root.
        root: u64,
    },
    /// The sizes line up but the path does not place the leaf under the
    /// root — the leaf is not in the committed tree (at that index).
    NotInTree,
    /// The sizes line up but the path does not connect the two roots —
    /// the old root is not a prefix of the new one.
    NotAPrefix,
}

impl core::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "ledger artifact failed to decode: {e}"),
            Self::SizeMismatch { proof, root } => {
                write!(
                    f,
                    "proof targets a tree of {proof} leaves, root commits to {root}"
                )
            }
            Self::NotInTree => write!(f, "membership path does not reach the committed root"),
            Self::NotAPrefix => write!(f, "old root is not a prefix of the new root"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<WireError> for LedgerError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Verifies a membership proof from bytes alone: no registry, no network,
/// no key material. `root_bytes` is a [`LedgerRoot`] artifact,
/// `leaf_bytes` the raw leaf encoding the caller cares about (64 bytes
/// for registry leaves — see [`LedgerLeaf::to_bytes`]), `proof_bytes` a
/// [`MembershipProof`] artifact.
///
/// ```
/// use zkrownn::{Artifact, CircuitId};
/// use zkrownn_ledger::{verify_membership, Ledger, LedgerLeaf, LedgerRoot, MembershipProof};
///
/// let leaf = LedgerLeaf {
///     circuit_id: CircuitId::from_bytes([7; 32]),
///     statement_digest: [9; 32],
/// };
/// let mut ledger = Ledger::new();
/// let index = ledger.append(&leaf.to_bytes());
/// let root = LedgerRoot { size: ledger.size(), root: ledger.root() };
/// let proof = MembershipProof {
///     index,
///     size: ledger.size(),
///     path: ledger.prove_membership(index).unwrap(),
/// };
/// verify_membership(&root.to_bytes(), &leaf.to_bytes(), &proof.to_bytes()).unwrap();
///
/// // a different leaf is *not* under this root
/// let other = LedgerLeaf { circuit_id: CircuitId::from_bytes([8; 32]), statement_digest: [9; 32] };
/// assert!(verify_membership(&root.to_bytes(), &other.to_bytes(), &proof.to_bytes()).is_err());
/// ```
pub fn verify_membership(
    root_bytes: &[u8],
    leaf_bytes: &[u8],
    proof_bytes: &[u8],
) -> Result<(), LedgerError> {
    let root = LedgerRoot::from_bytes(root_bytes)?;
    let proof = MembershipProof::from_bytes(proof_bytes)?;
    if proof.size != root.size {
        return Err(LedgerError::SizeMismatch {
            proof: proof.size,
            root: root.size,
        });
    }
    if verify_membership_hashes(
        &root.root,
        &leaf_hash(leaf_bytes),
        proof.index,
        proof.size,
        &proof.path,
    ) {
        Ok(())
    } else {
        Err(LedgerError::NotInTree)
    }
}

/// Verifies a root-transition consistency proof from bytes alone: the
/// ledger committed by `old_root_bytes` is a prefix of the one committed
/// by `new_root_bytes`. Both roots are [`LedgerRoot`] artifacts,
/// `proof_bytes` a [`ConsistencyProof`] artifact.
pub fn verify_consistency(
    old_root_bytes: &[u8],
    new_root_bytes: &[u8],
    proof_bytes: &[u8],
) -> Result<(), LedgerError> {
    let old = LedgerRoot::from_bytes(old_root_bytes)?;
    let new = LedgerRoot::from_bytes(new_root_bytes)?;
    let proof = ConsistencyProof::from_bytes(proof_bytes)?;
    if proof.old_size != old.size {
        return Err(LedgerError::SizeMismatch {
            proof: proof.old_size,
            root: old.size,
        });
    }
    if proof.new_size != new.size {
        return Err(LedgerError::SizeMismatch {
            proof: proof.new_size,
            root: new.size,
        });
    }
    if verify_consistency_roots(&old.root, old.size, &new.root, new.size, &proof.path) {
        Ok(())
    } else {
        Err(LedgerError::NotAPrefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::Ledger;

    fn test_leaf(i: u64) -> LedgerLeaf {
        LedgerLeaf {
            circuit_id: CircuitId::from_bytes([i as u8; 32]),
            statement_digest: [(i + 1) as u8; 32],
        }
    }

    #[test]
    fn leaf_encoding_round_trips_and_rejects_bad_lengths() {
        let leaf = test_leaf(5);
        let bytes = leaf.to_bytes();
        assert_eq!(LedgerLeaf::from_bytes(&bytes).unwrap(), leaf);
        assert!(LedgerLeaf::from_bytes(&bytes[..63]).is_err());
        assert!(LedgerLeaf::from_bytes(&[0u8; 65]).is_err());
    }

    #[test]
    fn offline_verification_from_bytes_alone() {
        let mut ledger = Ledger::new();
        for i in 0..10 {
            ledger.append(&test_leaf(i).to_bytes());
        }
        let root = LedgerRoot {
            size: ledger.size(),
            root: ledger.root(),
        };
        let proof = MembershipProof {
            index: 7,
            size: ledger.size(),
            path: ledger.prove_membership(7).unwrap(),
        };
        let root_bytes = root.to_bytes();
        let proof_bytes = proof.to_bytes();
        verify_membership(&root_bytes, &test_leaf(7).to_bytes(), &proof_bytes)
            .expect("honest proof verifies");
        // a different leaf under the same proof fails
        assert_eq!(
            verify_membership(&root_bytes, &test_leaf(8).to_bytes(), &proof_bytes),
            Err(LedgerError::NotInTree)
        );
        // a proof for a different tree size is rejected before hashing
        let mut wrong = proof.clone();
        wrong.size = 11;
        assert_eq!(
            verify_membership(&root_bytes, &test_leaf(7).to_bytes(), &wrong.to_bytes()),
            Err(LedgerError::SizeMismatch {
                proof: 11,
                root: 10
            })
        );
    }

    #[test]
    fn consistency_verification_from_bytes_alone() {
        let mut ledger = Ledger::new();
        for i in 0..6 {
            ledger.append(&test_leaf(i).to_bytes());
        }
        let old = LedgerRoot {
            size: 6,
            root: ledger.root(),
        };
        for i in 6..21 {
            ledger.append(&test_leaf(i).to_bytes());
        }
        let new = LedgerRoot {
            size: 21,
            root: ledger.root(),
        };
        let proof = ConsistencyProof {
            old_size: 6,
            new_size: 21,
            path: ledger.prove_consistency(6).unwrap(),
        };
        verify_consistency(&old.to_bytes(), &new.to_bytes(), &proof.to_bytes())
            .expect("honest consistency proof verifies");
        // swapping the roots is not a valid transition
        assert!(verify_consistency(&new.to_bytes(), &old.to_bytes(), &proof.to_bytes()).is_err());
    }

    #[test]
    fn path_length_bounds_are_enforced() {
        let proof = MembershipProof {
            index: 0,
            size: 1,
            path: vec![[0u8; 32]; MAX_MEMBERSHIP_PATH + 1],
        };
        let bytes = proof.to_bytes();
        assert!(matches!(
            MembershipProof::from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
