//! Accumulator properties over random ledgers: every leaf of every tree
//! has a verifying membership proof, every prefix has a verifying
//! consistency proof, and single-bit tampering with the leaf, the path, or
//! either root is always rejected.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use zkrownn_ledger::{leaf_hash, verify_consistency_roots, verify_membership_hashes, Ledger};

/// Builds a ledger of `n` pseudo-random 64-byte leaves, returning the
/// ledger plus the raw leaf encodings.
fn random_ledger(seed: u64, n: u64) -> (Ledger, Vec<[u8; 64]>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ledger = Ledger::new();
    let mut leaves = Vec::with_capacity(n as usize);
    for i in 0..n {
        let mut leaf = [0u8; 64];
        for b in leaf.iter_mut() {
            *b = rng.gen();
        }
        assert_eq!(ledger.append(&leaf), i);
        leaves.push(leaf);
    }
    (ledger, leaves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every leaf of a random ledger has a membership proof that verifies
    /// against the current root — and against no other position.
    #[test]
    fn every_leaf_has_a_verifying_membership_proof(seed in any::<u64>(), n in 1u64..=1024) {
        let (ledger, leaves) = random_ledger(seed, n);
        let root = ledger.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let i = i as u64;
            let path = ledger.prove_membership(i).expect("index is in range");
            prop_assert!(
                verify_membership_hashes(&root, &leaf_hash(leaf), i, n, &path),
                "leaf {i} of {n} must verify"
            );
            // the proof pins the position: the same path at a shifted
            // index must not verify
            let other = (i + 1) % n;
            if other != i {
                prop_assert!(
                    !verify_membership_hashes(&root, &leaf_hash(leaf), other, n, &path),
                    "leaf {i} of {n} must not verify at index {other}"
                );
            }
        }
        // out-of-range indices have no proof at all
        prop_assert!(ledger.prove_membership(n).is_none());
    }

    /// Every prefix size of a random ledger has a consistency proof tying
    /// the prefix root to the final root.
    #[test]
    fn every_prefix_has_a_verifying_consistency_proof(seed in any::<u64>(), n in 1u64..=1024) {
        let (ledger, _) = random_ledger(seed, n);
        let new_root = ledger.root();
        for m in 0..=n {
            let old_root = ledger.root_at(m);
            let path = ledger.prove_consistency(m).expect("prefix is in range");
            prop_assert!(
                verify_consistency_roots(&old_root, m, &new_root, n, &path),
                "prefix {m} of {n} must verify"
            );
        }
        // a "prefix" beyond the tree has no proof
        prop_assert!(ledger.prove_consistency(n + 1).is_none());
    }

    /// Flipping any single bit of the leaf bytes kills its membership
    /// proof.
    #[test]
    fn membership_rejects_a_tampered_leaf(
        seed in any::<u64>(),
        n in 1u64..=256,
        pick in any::<u64>(),
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let (ledger, leaves) = random_ledger(seed, n);
        let root = ledger.root();
        let i = pick % n;
        let path = ledger.prove_membership(i).unwrap();
        let mut tampered = leaves[i as usize];
        tampered[byte] ^= 1 << bit;
        prop_assert!(
            !verify_membership_hashes(&root, &leaf_hash(&tampered), i, n, &path),
            "a tampered leaf must not verify"
        );
    }

    /// Flipping any single bit of any path node kills the membership
    /// proof.
    #[test]
    fn membership_rejects_a_tampered_path(
        seed in any::<u64>(),
        n in 2u64..=256,
        pick in any::<u64>(),
        node_pick in any::<usize>(),
        byte in 0usize..32,
        bit in 0u8..8,
    ) {
        let (ledger, leaves) = random_ledger(seed, n);
        let root = ledger.root();
        let i = pick % n;
        let mut path = ledger.prove_membership(i).unwrap();
        // n ≥ 2 ⇒ every leaf has at least one sibling on its path
        prop_assert!(!path.is_empty());
        let node = node_pick % path.len();
        path[node][byte] ^= 1 << bit;
        prop_assert!(
            !verify_membership_hashes(&root, &leaf_hash(&leaves[i as usize]), i, n, &path),
            "a tampered path must not verify"
        );
    }

    /// Flipping any single bit of the root kills both proof kinds.
    #[test]
    fn proofs_reject_a_tampered_root(
        seed in any::<u64>(),
        n in 1u64..=256,
        pick in any::<u64>(),
        byte in 0usize..32,
        bit in 0u8..8,
    ) {
        let (ledger, leaves) = random_ledger(seed, n);
        let mut bad_root = ledger.root();
        bad_root[byte] ^= 1 << bit;

        let i = pick % n;
        let path = ledger.prove_membership(i).unwrap();
        prop_assert!(
            !verify_membership_hashes(&bad_root, &leaf_hash(&leaves[i as usize]), i, n, &path),
            "membership against a tampered root must not verify"
        );

        let m = pick % (n + 1);
        let old_root = ledger.root_at(m);
        let consistency = ledger.prove_consistency(m).unwrap();
        prop_assert!(
            !verify_consistency_roots(&old_root, m, &bad_root, n, &consistency),
            "consistency into a tampered new root must not verify"
        );
        if m > 0 {
            let mut bad_old = old_root;
            bad_old[byte] ^= 1 << bit;
            prop_assert!(
                !verify_consistency_roots(&bad_old, m, &ledger.root(), n, &consistency),
                "consistency from a tampered old root must not verify"
            );
        }
    }

    /// Consistency proofs tie *specific* sizes: the right path with the
    /// wrong claimed old size must not verify against honest roots.
    #[test]
    fn consistency_rejects_a_shifted_prefix(
        seed in any::<u64>(),
        n in 2u64..=256,
        pick in any::<u64>(),
    ) {
        let (ledger, _) = random_ledger(seed, n);
        let new_root = ledger.root();
        let m = 1 + pick % (n - 1); // 1..n, so m-1 and m are both valid sizes
        let path = ledger.prove_consistency(m).unwrap();
        prop_assert!(
            !verify_consistency_roots(&ledger.root_at(m - 1), m - 1, &new_root, n, &path),
            "a proof for prefix {m} must not verify as prefix {}", m - 1
        );
    }

    /// A forked history — same size, one divergent leaf — never verifies
    /// as a prefix.
    #[test]
    fn consistency_rejects_forked_histories(
        seed in any::<u64>(),
        n in 1u64..=128,
        extra in 1u64..=64,
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let (_, leaves) = random_ledger(seed, n);

        // honest chain: the first n leaves, then `extra` more
        let mut honest = Ledger::new();
        for leaf in &leaves {
            honest.append(leaf);
        }
        let old_root = honest.root();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..extra {
            let mut leaf = [0u8; 64];
            for b in leaf.iter_mut() {
                *b = rng.gen();
            }
            honest.append(&leaf);
        }
        let path = honest.prove_consistency(n).unwrap();
        prop_assert!(verify_consistency_roots(
            &old_root, n, &honest.root(), n + extra, &path
        ));

        // forked "old" registry: identical except one flipped bit in the
        // last leaf — its root must not pass as a prefix of the honest one
        let mut forked = Ledger::new();
        for leaf in &leaves[..n as usize - 1] {
            forked.append(leaf);
        }
        let mut divergent = leaves[n as usize - 1];
        divergent[byte] ^= 1 << bit;
        forked.append(&divergent);
        prop_assert!(
            !verify_consistency_roots(&forked.root(), n, &honest.root(), n + extra, &path),
            "a forked history must not verify as a prefix"
        );
    }
}
