//! Wire-format properties for the three ledger artifacts: round-trips are
//! bit-exact, sizes are self-consistent, any single corrupted byte is
//! rejected, and the byte-level offline verifiers track the hash-level
//! ones over random ledgers.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use zkrownn::{Artifact, ArtifactKind, CircuitId, WireError};
use zkrownn_ledger::{
    verify_consistency, verify_membership, ConsistencyProof, Ledger, LedgerError, LedgerLeaf,
    LedgerRoot, MembershipProof,
};

fn arb_path(max: usize) -> impl Strategy<Value = Vec<[u8; 32]>> {
    prop::collection::vec(any::<[u8; 32]>(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn leaf_roundtrips(id in any::<[u8; 32]>(), digest in any::<[u8; 32]>()) {
        let leaf = LedgerLeaf {
            circuit_id: CircuitId::from_bytes(id),
            statement_digest: digest,
        };
        let wire = leaf.to_bytes();
        let back = LedgerLeaf::from_bytes(&wire).unwrap();
        prop_assert_eq!(back.circuit_id, leaf.circuit_id);
        prop_assert_eq!(back.statement_digest, leaf.statement_digest);
    }

    #[test]
    fn root_roundtrips(size in any::<u64>(), root in any::<[u8; 32]>()) {
        let artifact = LedgerRoot { size, root };
        let wire = artifact.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&artifact));
        let back = LedgerRoot::from_bytes(&wire).unwrap();
        prop_assert_eq!(back.size, size);
        prop_assert_eq!(back.root, root);
    }

    #[test]
    fn membership_proof_roundtrips(
        index in any::<u64>(),
        size in any::<u64>(),
        path in arb_path(20),
    ) {
        let artifact = MembershipProof { index, size, path };
        let wire = artifact.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&artifact));
        let back = MembershipProof::from_bytes(&wire).unwrap();
        prop_assert_eq!(back.index, artifact.index);
        prop_assert_eq!(back.size, artifact.size);
        prop_assert_eq!(back.path, artifact.path);
    }

    #[test]
    fn consistency_proof_roundtrips(
        old_size in any::<u64>(),
        new_size in any::<u64>(),
        path in arb_path(20),
    ) {
        let artifact = ConsistencyProof { old_size, new_size, path };
        let wire = artifact.to_bytes();
        prop_assert_eq!(wire.len(), Artifact::serialized_size(&artifact));
        let back = ConsistencyProof::from_bytes(&wire).unwrap();
        prop_assert_eq!(back.old_size, artifact.old_size);
        prop_assert_eq!(back.new_size, artifact.new_size);
        prop_assert_eq!(back.path, artifact.path);
    }

    /// Byte-level verification over a real random ledger: membership and
    /// consistency both hold for honest bytes and fail once any byte of
    /// the proof is flipped.
    #[test]
    fn offline_verifiers_track_the_accumulator(
        seed in any::<u64>(),
        n in 2u64..=128,
        pick in any::<u64>(),
        flip_pos in any::<usize>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ledger = Ledger::new();
        let mut leaves = Vec::new();
        for _ in 0..n {
            let leaf = LedgerLeaf {
                circuit_id: CircuitId::from_bytes(rng.gen()),
                statement_digest: rng.gen(),
            };
            ledger.append(&leaf.to_bytes());
            leaves.push(leaf);
        }
        let old_size = pick % n; // a strict prefix
        let old_root_bytes = LedgerRoot { size: old_size, root: ledger.root_at(old_size) }.to_bytes();
        let root_bytes = LedgerRoot { size: n, root: ledger.root() }.to_bytes();

        let i = pick % n;
        let leaf_bytes = leaves[i as usize].to_bytes();
        let membership = MembershipProof {
            index: i,
            size: n,
            path: ledger.prove_membership(i).unwrap(),
        }.to_bytes();
        prop_assert!(verify_membership(&root_bytes, &leaf_bytes, &membership).is_ok());

        let consistency = ConsistencyProof {
            old_size,
            new_size: n,
            path: ledger.prove_consistency(old_size).unwrap(),
        }.to_bytes();
        prop_assert!(verify_consistency(&old_root_bytes, &root_bytes, &consistency).is_ok());

        // flipping any one byte of either proof makes it fail — either as
        // a wire error (checksum/envelope) or a clean verification miss
        let mut bad_membership = membership.clone();
        bad_membership[flip_pos % membership.len()] ^= 0x01;
        prop_assert!(verify_membership(&root_bytes, &leaf_bytes, &bad_membership).is_err());

        let mut bad_consistency = consistency.clone();
        bad_consistency[flip_pos % consistency.len()] ^= 0x01;
        prop_assert!(verify_consistency(&old_root_bytes, &root_bytes, &bad_consistency).is_err());
    }
}

/// Asserts that flipping any single byte of `wire` makes `A::from_bytes`
/// reject it. Unlike claims (where a flip may legally decode onto another
/// circuit), the ledger artifacts carry no interior escape hatch: the
/// envelope checksum and header validation must catch *every* flip.
fn assert_every_byte_flip_rejected<A: Artifact>(wire: &[u8]) {
    for i in 0..wire.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = wire.to_vec();
            corrupt[i] ^= flip;
            assert!(
                A::from_bytes(&corrupt).is_err(),
                "byte {i} flip {flip:#04x} slipped through undetected"
            );
        }
    }
}

#[test]
fn every_single_byte_flip_in_a_root_is_rejected() {
    let wire = LedgerRoot {
        size: 42,
        root: [0xAB; 32],
    }
    .to_bytes();
    assert_every_byte_flip_rejected::<LedgerRoot>(&wire);
}

#[test]
fn every_single_byte_flip_in_a_membership_proof_is_rejected() {
    let wire = MembershipProof {
        index: 5,
        size: 13,
        path: (0..4).map(|i| [i as u8; 32]).collect(),
    }
    .to_bytes();
    assert_every_byte_flip_rejected::<MembershipProof>(&wire);
}

#[test]
fn every_single_byte_flip_in_a_consistency_proof_is_rejected() {
    let wire = ConsistencyProof {
        old_size: 9,
        new_size: 21,
        path: (0..5).map(|i| [0x60 + i as u8; 32]).collect(),
    }
    .to_bytes();
    assert_every_byte_flip_rejected::<ConsistencyProof>(&wire);
}

#[test]
fn ledger_artifacts_do_not_cross_decode() {
    let root_wire = LedgerRoot {
        size: 7,
        root: [1; 32],
    }
    .to_bytes();
    assert_eq!(
        MembershipProof::from_bytes(&root_wire),
        Err(WireError::WrongKind {
            expected: ArtifactKind::MembershipProof,
            got: ArtifactKind::LedgerRoot,
        })
    );
    assert_eq!(
        ConsistencyProof::from_bytes(&root_wire),
        Err(WireError::WrongKind {
            expected: ArtifactKind::ConsistencyProof,
            got: ArtifactKind::LedgerRoot,
        })
    );
}

#[test]
fn size_mismatch_between_root_and_proof_is_typed() {
    let mut ledger = Ledger::new();
    let leaf = LedgerLeaf {
        circuit_id: CircuitId::from_bytes([3; 32]),
        statement_digest: [4; 32],
    };
    ledger.append(&leaf.to_bytes());
    ledger.append(&[0u8; 64]);

    let root = LedgerRoot {
        size: ledger.size(),
        root: ledger.root(),
    };
    // proof claims a different tree size than the root commits to
    let proof = MembershipProof {
        index: 0,
        size: 99,
        path: ledger.prove_membership(0).unwrap(),
    };
    assert!(matches!(
        verify_membership(&root.to_bytes(), &leaf.to_bytes(), &proof.to_bytes()),
        Err(LedgerError::SizeMismatch { proof: 99, root: 2 })
    ));
}
