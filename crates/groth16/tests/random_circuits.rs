//! Completeness and soundness checks over *randomly generated* R1CS
//! instances: any satisfiable system proves and verifies; mismatched
//! instances are rejected.

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_ff::{Field, Fr};
use zkrownn_groth16::{create_proof_from_cs, generate_parameters_from_matrices, verify_proof};
use zkrownn_r1cs::{ConstraintSystem, LinearCombination, ProvingSynthesizer, Variable};

/// Builds a random satisfiable circuit: a chain of multiply/add gates over
/// a mix of instance and witness variables.
fn random_circuit(seed: u64, gates: usize, publics: usize) -> ProvingSynthesizer<Fr> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let mut pool: Vec<Variable> = Vec::new();
    for _ in 0..publics {
        let v = Fr::from_u64(rng.gen_range(0..1000));
        pool.push(cs.alloc_instance(|| Ok(v)).unwrap());
    }
    for _ in 0..3 {
        let v = Fr::from_u64(rng.gen_range(0..1000));
        pool.push(cs.alloc_witness(|| Ok(v)).unwrap());
    }
    for _ in 0..gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let coeff = Fr::from_u64(rng.gen_range(1..50));
        let a_lc = LinearCombination::from(a).scale(coeff)
            + LinearCombination::constant(Fr::from_u64(rng.gen_range(0..10)));
        let b_lc: LinearCombination<Fr> = b.into();
        let product = cs.eval_lc(&a_lc) * cs.eval_lc(&b_lc);
        let out = cs.alloc_witness(|| Ok(product)).unwrap();
        cs.enforce(a_lc, b_lc, out.into());
        pool.push(out);
    }
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_satisfiable_circuits_prove_and_verify(
        seed in 0u64..1000,
        gates in 1usize..12,
        publics in 0usize..4,
    ) {
        let cs = random_circuit(seed, gates, publics);
        prop_assert!(cs.is_satisfied().is_ok());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
        let proof = create_proof_from_cs(&pk, &cs, &mut rng);
        let publics_vec: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
        prop_assert!(verify_proof(&pk.vk, &proof, &publics_vec).is_ok());
    }

    #[test]
    fn perturbed_public_inputs_are_rejected(seed in 0u64..1000) {
        let cs = random_circuit(seed, 4, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x1234);
        let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
        let proof = create_proof_from_cs(&pk, &cs, &mut rng);
        let mut publics: Vec<Fr> = cs.instance_assignment()[1..].to_vec();
        publics[0] += Fr::one();
        prop_assert!(verify_proof(&pk.vk, &proof, &publics).is_err());
    }

    #[test]
    fn proofs_do_not_transfer_between_circuits(seed in 0u64..500) {
        // a proof for circuit A must not verify under circuit B's key
        let cs_a = random_circuit(seed, 3, 1);
        let cs_b = random_circuit(seed + 1, 3, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x77);
        let pk_a = generate_parameters_from_matrices(&cs_a.to_matrices(), &mut rng);
        let pk_b = generate_parameters_from_matrices(&cs_b.to_matrices(), &mut rng);
        let proof_a = create_proof_from_cs(&pk_a, &cs_a, &mut rng);
        let publics_b: Vec<Fr> = cs_b.instance_assignment()[1..].to_vec();
        prop_assert!(verify_proof(&pk_b.vk, &proof_a, &publics_b).is_err());
    }
}
