//! Pins the parallel batch-affine keygen to a serial per-point reference:
//! under fixed toxic randomness, the proving key produced through the
//! `SetupContext` hot path (signed-digit fixed-base tables, batch-affine
//! accumulation, concurrent key families) must be *byte-identical* to keys
//! assembled one `scalar · G` double-and-add at a time. Mirrors
//! `prover_context.rs` on the prover side.

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_curves::{Affine, G1Affine, G1Projective, G2Affine, G2Projective, SwCurveConfig};
use zkrownn_ff::{Field, Fr};
use zkrownn_groth16::qap;
use zkrownn_groth16::{
    create_proof_with_context, generate_parameters_from_matrices_with, verify_proof, ProvingKey,
    SetupContext, ToxicWaste, VerifyingKey,
};
use zkrownn_r1cs::{ConstraintSystem, LinearCombination, ProvingSynthesizer, R1csMatrices};

/// A small but FFT-non-trivial system: a chain of `n` multiplications
/// `x_{i+1} = x_i · x_i + i`, with the last value public.
fn chain_system(n: usize, x0: u64) -> ProvingSynthesizer<Fr> {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let mut cur_val = Fr::from_u64(x0);
    let mut cur = cs.alloc_witness(|| Ok(cur_val)).unwrap();
    for i in 0..n {
        let next_val = cur_val * cur_val + Fr::from_u64(i as u64);
        let next = cs.alloc_witness(|| Ok(next_val)).unwrap();
        let rhs =
            LinearCombination::from(next) + LinearCombination::constant(-Fr::from_u64(i as u64));
        cs.enforce(cur.into(), cur.into(), rhs);
        cur = next;
        cur_val = next_val;
    }
    let out = cs.alloc_instance(|| Ok(cur_val)).unwrap();
    cs.enforce(
        cur.into(),
        LinearCombination::constant(Fr::one()),
        out.into(),
    );
    cs
}

fn toxic(seed: u64) -> ToxicWaste {
    ToxicWaste {
        alpha: Fr::from_u64(seed | 1),
        beta: Fr::from_u64(seed.wrapping_mul(3) | 1),
        gamma: Fr::from_u64(seed.wrapping_mul(5) | 1),
        delta: Fr::from_u64(seed.wrapping_mul(7) | 1),
        tau: Fr::from_u64(seed.wrapping_mul(11) | 1),
    }
}

/// One scalar at a time: generator double-and-add, per-point `into_affine`
/// — exactly the structure keygen had before the batch-affine overhaul.
fn serial_fixed_base<C: SwCurveConfig>(
    base: zkrownn_curves::Projective<C>,
    scalars: &[Fr],
) -> Vec<Affine<C>> {
    scalars
        .iter()
        .map(|s| base.mul_scalar(*s).into_affine())
        .collect()
}

/// The pre-overhaul serial keygen, reconstructed from the QAP definition.
fn reference_keygen(matrices: &R1csMatrices<Fr>, toxic: &ToxicWaste) -> ProvingKey {
    let domain = qap::qap_domain(matrices);
    let qap = qap::evaluate_qap_at(matrices, toxic.tau);
    let num_vars = matrices.num_instance + matrices.num_witness;
    let ninstance = matrices.num_instance;
    let gamma_inv = toxic.gamma.inverse().unwrap();
    let delta_inv = toxic.delta.inverse().unwrap();

    let mut gamma_abc_scalars = Vec::new();
    let mut l_scalars = Vec::new();
    for i in 0..num_vars {
        let combined = toxic.beta * qap.u[i] + toxic.alpha * qap.v[i] + qap.w[i];
        if i < ninstance {
            gamma_abc_scalars.push(combined * gamma_inv);
        } else {
            l_scalars.push(combined * delta_inv);
        }
    }
    let mut h_scalars = Vec::new();
    let mut cur = qap.zt * delta_inv;
    for _ in 0..domain.size - 1 {
        h_scalars.push(cur);
        cur *= toxic.tau;
    }

    let g1 = G1Projective::generator();
    let g2 = G2Projective::generator();
    let one_g1 = |s: Fr| -> G1Affine { g1.mul_scalar(s).into_affine() };
    let one_g2 = |s: Fr| -> G2Affine { g2.mul_scalar(s).into_affine() };

    ProvingKey {
        vk: VerifyingKey {
            alpha_g1: one_g1(toxic.alpha),
            beta_g2: one_g2(toxic.beta),
            gamma_g2: one_g2(toxic.gamma),
            delta_g2: one_g2(toxic.delta),
            gamma_abc_g1: serial_fixed_base(g1, &gamma_abc_scalars),
        },
        beta_g1: one_g1(toxic.beta),
        delta_g1: one_g1(toxic.delta),
        a_query: serial_fixed_base(g1, &qap.u),
        b_g1_query: serial_fixed_base(g1, &qap.v),
        b_g2_query: serial_fixed_base(g2, &qap.v),
        h_query: serial_fixed_base(g1, &h_scalars),
        l_query: serial_fixed_base(g1, &l_scalars),
    }
}

#[test]
fn batch_affine_keygen_is_byte_identical_to_serial() {
    let cs = chain_system(37, 3);
    assert!(cs.is_satisfied().is_ok());
    let matrices = cs.to_matrices();
    let reference = reference_keygen(&matrices, &toxic(0xdecade));
    let ctx = SetupContext::new(matrices);
    let fast = ctx.generate_with(&toxic(0xdecade));
    assert_eq!(
        fast.to_bytes(),
        reference.to_bytes(),
        "parallel batch-affine keygen diverged from the serial reference"
    );
}

#[test]
fn setup_context_feeds_both_keygen_and_prover() {
    // the shared-lowering handoff: one SetupContext generates the key and
    // then becomes the ProverContext, and a proof through that context
    // verifies under the key it generated alongside
    let cs = chain_system(25, 4);
    let sctx = SetupContext::new(cs.to_matrices());
    let pk = sctx.generate_with(&toxic(0xfeed));
    let ctx = sctx.into_prover_context();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let proof = create_proof_with_context(&pk, &ctx, &cs, &mut rng);
    let publics = cs.instance_assignment()[1..].to_vec();
    assert!(verify_proof(&pk.vk, &proof, &publics).is_ok());
}

#[test]
fn matrix_level_wrapper_matches_context_path() {
    let cs = chain_system(16, 7);
    let matrices = cs.to_matrices();
    let via_wrapper = generate_parameters_from_matrices_with(&matrices, &toxic(0xabba));
    let via_context = SetupContext::new(matrices).generate_with(&toxic(0xabba));
    assert_eq!(via_wrapper.to_bytes(), via_context.to_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn keygen_matches_serial_for_random_shapes(
        n in 1usize..40,
        x0 in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let cs = chain_system(n, x0);
        prop_assert!(cs.is_satisfied().is_ok());
        let matrices = cs.to_matrices();
        let tox = toxic(seed | 1);
        let reference = reference_keygen(&matrices, &tox);
        let fast = SetupContext::new(matrices).generate_with(&tox);
        prop_assert_eq!(fast.to_bytes(), reference.to_bytes());
    }
}
