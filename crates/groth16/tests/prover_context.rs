//! Pins the cached-[`ProverContext`] hot path to the uncached prover: under
//! fixed randomness the two must produce byte-identical proofs, and a
//! context reused across many proofs must keep doing so.

use proptest::prelude::*;
use rand::SeedableRng;
use zkrownn_ff::{Field, Fr};
use zkrownn_groth16::{
    create_proof_with_context_and_randomness, create_proof_with_randomness,
    generate_parameters_from_matrices_with, verify_proof, ProverContext, ToxicWaste,
};
use zkrownn_r1cs::{ConstraintSystem, ProvingSynthesizer};

/// A small but FFT-non-trivial system: a chain of `n` multiplications
/// `x_{i+1} = x_i · x_i + i`, with the last value public.
fn chain_system(n: usize, x0: u64) -> ProvingSynthesizer<Fr> {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    let mut cur_val = Fr::from_u64(x0);
    let mut cur = cs.alloc_witness(|| Ok(cur_val)).unwrap();
    for i in 0..n {
        let next_val = cur_val * cur_val + Fr::from_u64(i as u64);
        let next = cs.alloc_witness(|| Ok(next_val)).unwrap();
        use zkrownn_r1cs::LinearCombination;
        let rhs =
            LinearCombination::from(next) + LinearCombination::constant(-Fr::from_u64(i as u64));
        cs.enforce(cur.into(), cur.into(), rhs);
        cur = next;
        cur_val = next_val;
    }
    let out = cs.alloc_instance(|| Ok(cur_val)).unwrap();
    cs.enforce(
        cur.into(),
        zkrownn_r1cs::LinearCombination::constant(Fr::one()),
        out.into(),
    );
    cs
}

fn toxic(seed: u64) -> ToxicWaste {
    ToxicWaste {
        alpha: Fr::from_u64(seed | 1),
        beta: Fr::from_u64(seed.wrapping_mul(3) | 1),
        gamma: Fr::from_u64(seed.wrapping_mul(5) | 1),
        delta: Fr::from_u64(seed.wrapping_mul(7) | 1),
        tau: Fr::from_u64(seed.wrapping_mul(11) | 1),
    }
}

#[test]
fn cached_context_is_byte_identical_to_uncached() {
    let cs = chain_system(37, 3);
    assert!(cs.is_satisfied().is_ok());
    let matrices = cs.to_matrices();
    let pk = generate_parameters_from_matrices_with(&matrices, &toxic(0xc0ffee));
    let z = cs.full_assignment();
    let ctx = ProverContext::for_cs(&cs);

    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for round in 0..5 {
        let r = Fr::random(&mut rng);
        let s = Fr::random(&mut rng);
        let uncached = create_proof_with_randomness(&pk, &matrices, &z, r, s);
        let cached = create_proof_with_context_and_randomness(&pk, &ctx, &z, r, s);
        assert_eq!(
            uncached.to_bytes(),
            cached.to_bytes(),
            "round {round}: cached context diverged from the uncached prover"
        );
        let publics = cs.instance_assignment()[1..].to_vec();
        assert!(verify_proof(&pk.vk, &cached, &publics).is_ok());
    }
}

#[test]
fn context_accessors_describe_the_circuit() {
    let cs = chain_system(10, 2);
    let ctx = ProverContext::for_cs(&cs);
    assert_eq!(ctx.matrices().a.len(), cs.num_constraints());
    // domain covers constraints + instance padding rows
    assert!(ctx.domain().size >= cs.num_constraints() + cs.num_instance_variables());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_and_uncached_agree_for_random_shapes(
        n in 1usize..48,
        x0 in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let cs = chain_system(n, x0);
        prop_assert!(cs.is_satisfied().is_ok());
        let matrices = cs.to_matrices();
        let pk = generate_parameters_from_matrices_with(&matrices, &toxic(seed | 1));
        let z = cs.full_assignment();
        let ctx = ProverContext::for_cs(&cs);
        let r = Fr::from_u64(seed ^ 0xaaaa) + Fr::one();
        let s = Fr::from_u64(seed ^ 0x5555) + Fr::one();
        let uncached = create_proof_with_randomness(&pk, &matrices, &z, r, s);
        let cached = create_proof_with_context_and_randomness(&pk, &ctx, &z, r, s);
        prop_assert_eq!(uncached.to_bytes(), cached.to_bytes());
    }
}
