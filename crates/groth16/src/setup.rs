//! Groth16 trusted setup (circuit-specific CRS generation).
//!
//! In the paper's setting a trusted third party runs this once per circuit;
//! because the watermark-extraction circuit never changes, the cost is
//! amortized over the lifetime of the model (Section II-B of the paper).
//!
//! The entry points take an `impl Circuit<Fr>` and synthesize it with the
//! shape-only [`SetupSynthesizer`], so the party running setup never
//! evaluates a witness closure — it genuinely needs no witness, not even a
//! placeholder one.

use crate::keys::{ProvingKey, VerifyingKey};
use crate::qap;
use zkrownn_curves::{FixedBaseTable, G1Projective, G2Projective, Projective};
use zkrownn_ff::{Field, Fr};
use zkrownn_r1cs::{Circuit, R1csMatrices, SetupSynthesizer, SynthesisError};

/// The secret randomness ("toxic waste") behind a CRS. Exposed as a struct
/// so tests can run deterministic setups; real deployments sample it and
/// drop it immediately.
#[derive(Clone, Debug)]
pub struct ToxicWaste {
    /// α
    pub alpha: Fr,
    /// β
    pub beta: Fr,
    /// γ
    pub gamma: Fr,
    /// δ
    pub delta: Fr,
    /// τ — the evaluation point
    pub tau: Fr,
}

impl ToxicWaste {
    /// Samples fresh setup randomness.
    pub fn sample<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        // all values must be non-zero for the CRS to be well-formed
        let nonzero = |rng: &mut R| loop {
            let v = Fr::random(rng);
            if !v.is_zero() {
                return v;
            }
        };
        Self {
            alpha: nonzero(rng),
            beta: nonzero(rng),
            gamma: nonzero(rng),
            delta: nonzero(rng),
            tau: nonzero(rng),
        }
    }
}

/// Runs the Groth16 setup for a circuit, producing the proving key (which
/// embeds the verifying key).
///
/// Synthesizes `circuit` in setup mode: no value closure — witness *or*
/// instance — is ever evaluated, so this can run on a machine holding only
/// the circuit shape.
pub fn generate_parameters<C: Circuit<Fr>, R: rand::Rng + ?Sized>(
    circuit: &C,
    rng: &mut R,
) -> Result<ProvingKey, SynthesisError> {
    generate_parameters_with(circuit, &ToxicWaste::sample(rng))
}

/// Deterministic circuit setup from explicit toxic waste
/// (tests / reproducibility).
pub fn generate_parameters_with<C: Circuit<Fr>>(
    circuit: &C,
    toxic: &ToxicWaste,
) -> Result<ProvingKey, SynthesisError> {
    let mut cs = SetupSynthesizer::<Fr>::new();
    circuit.synthesize(&mut cs)?;
    Ok(generate_parameters_from_matrices_with(
        &cs.to_matrices(),
        toxic,
    ))
}

/// Low-level setup over pre-lowered matrices (the circuit entry points
/// reduce to this; also used by harnesses that already hold matrices).
pub fn generate_parameters_from_matrices<R: rand::Rng + ?Sized>(
    matrices: &R1csMatrices<Fr>,
    rng: &mut R,
) -> ProvingKey {
    generate_parameters_from_matrices_with(matrices, &ToxicWaste::sample(rng))
}

/// Deterministic matrix-level setup from explicit toxic waste.
pub fn generate_parameters_from_matrices_with(
    matrices: &R1csMatrices<Fr>,
    toxic: &ToxicWaste,
) -> ProvingKey {
    let qap = qap::evaluate_qap_at(matrices, toxic.tau);
    let num_vars = matrices.num_instance + matrices.num_witness;
    let ninstance = matrices.num_instance;
    debug_assert_eq!(qap.u.len(), num_vars);

    let gamma_inv = toxic.gamma.inverse().expect("gamma != 0");
    let delta_inv = toxic.delta.inverse().expect("delta != 0");

    // Scalar-side computations --------------------------------------------
    // gamma_abc (instance columns) and l_query (witness columns)
    let mut gamma_abc_scalars = Vec::with_capacity(ninstance);
    let mut l_scalars = Vec::with_capacity(matrices.num_witness);
    for i in 0..num_vars {
        let combined = toxic.beta * qap.u[i] + toxic.alpha * qap.v[i] + qap.w[i];
        if i < ninstance {
            gamma_abc_scalars.push(combined * gamma_inv);
        } else {
            l_scalars.push(combined * delta_inv);
        }
    }
    // h_query scalars: τ^i · Z(τ)/δ
    let zt_over_delta = qap.zt * delta_inv;
    let mut h_scalars = Vec::with_capacity(qap.domain.size - 1);
    let mut cur = zt_over_delta;
    for _ in 0..qap.domain.size - 1 {
        h_scalars.push(cur);
        cur *= toxic.tau;
    }

    // Group-side computations (fixed-base windowed tables) -----------------
    let g1 = G1Projective::generator();
    let g2 = G2Projective::generator();
    let total_g1_muls = 3 * num_vars + h_scalars.len();
    let w1 = FixedBaseTable::<zkrownn_curves::G1Config>::suggested_window(total_g1_muls);
    let w2 = FixedBaseTable::<zkrownn_curves::G2Config>::suggested_window(num_vars);
    let t1 = FixedBaseTable::new(g1, w1);
    let t2 = FixedBaseTable::new(g2, w2);

    let a_query = t1.mul_many(&qap.u);
    let b_g1_query = t1.mul_many(&qap.v);
    let b_g2_query = t2.mul_many(&qap.v);
    let h_query = t1.mul_many(&h_scalars);
    let l_query = t1.mul_many(&l_scalars);
    let gamma_abc_g1 = t1.mul_many(&gamma_abc_scalars);

    let vk = VerifyingKey {
        alpha_g1: t1.mul(toxic.alpha).into_affine(),
        beta_g2: t2.mul(toxic.beta).into_affine(),
        gamma_g2: t2.mul(toxic.gamma).into_affine(),
        delta_g2: t2.mul(toxic.delta).into_affine(),
        gamma_abc_g1,
    };

    ProvingKey {
        vk,
        beta_g1: t1.mul(toxic.beta).into_affine(),
        delta_g1: t1.mul(toxic.delta).into_affine(),
        a_query,
        b_g1_query,
        b_g2_query,
        h_query,
        l_query,
    }
}

/// Convenience: number of Jacobian points the setup will produce, used by
/// the bench harness for progress reporting.
pub fn setup_output_points(matrices: &R1csMatrices<Fr>) -> usize {
    let num_vars = matrices.num_instance + matrices.num_witness;
    let domain = qap::qap_domain(matrices);
    4 * num_vars + domain.size - 1
}

/// Helper trait re-export so callers can normalize without reaching into
/// `zkrownn-curves` directly.
pub trait IntoAffineExt {
    /// Affine form of the point.
    type Affine;
    /// Converts to affine coordinates.
    fn into_affine_pt(self) -> Self::Affine;
}

impl<C: zkrownn_curves::SwCurveConfig> IntoAffineExt for Projective<C> {
    type Affine = zkrownn_curves::Affine<C>;
    fn into_affine_pt(self) -> Self::Affine {
        self.into_affine()
    }
}
