//! Groth16 trusted setup (circuit-specific CRS generation).
//!
//! In the paper's setting a trusted third party runs this once per circuit;
//! because the watermark-extraction circuit never changes, the cost is
//! amortized over the lifetime of the model (Section II-B of the paper).
//! An authority standing up keys for a *fleet* of circuits pays this path
//! per circuit shape, so it is engineered like the prover's hot path:
//!
//! * a [`SetupContext`] caches the lowered matrices and the twiddle-table
//!   FFT domain, and converts into a [`ProverContext`]
//!   ([`SetupContext::into_prover_context`]) so one lowering feeds both key
//!   generation and the prover's cached compute state;
//! * the QAP polynomials are evaluated at `τ` through the domain's
//!   table-based Lagrange path, and the powers of `τ` for the H-query come
//!   from the same jump-then-recur `geometric_series` that builds twiddle
//!   tables;
//! * every group element is produced by the fixed-base tables'
//!   batch-affine [`FixedBaseTable::mul_many`] kernel — including the toxic
//!   elements `α, β, δ` (G1) and `β, γ, δ` (G2), which ride along in the
//!   instance-column and B-G2 batches, so keygen performs **no** per-point
//!   `into_affine` inversion anywhere;
//! * the independent key families (A-query, B-G1, B-G2, H-query, L-query,
//!   IC) run concurrently under `std::thread::scope`.
//!
//! The entry points take an `impl Circuit<Fr>` and synthesize it with the
//! shape-only [`SetupSynthesizer`], so the party running setup never
//! evaluates a witness closure — it genuinely needs no witness, not even a
//! placeholder one.

use crate::keys::{ProvingKey, VerifyingKey};
use crate::prover::ProverContext;
use crate::qap;
use std::time::{Duration, Instant};
use zkrownn_curves::serialize::uncompressed_size;
use zkrownn_curves::{
    FixedBaseTable, G1Affine, G1Config, G1Projective, G2Affine, G2Config, G2Projective,
    MemoryBudget,
};
use zkrownn_ff::{Field, Fr};
use zkrownn_poly::{geometric_series, Radix2Domain};
use zkrownn_r1cs::{Circuit, R1csMatrices, SetupSynthesizer, SynthesisError};

/// The secret randomness ("toxic waste") behind a CRS. Exposed as a struct
/// so tests can run deterministic setups; real deployments sample it and
/// drop it immediately.
#[derive(Clone, Debug)]
pub struct ToxicWaste {
    /// α
    pub alpha: Fr,
    /// β
    pub beta: Fr,
    /// γ
    pub gamma: Fr,
    /// δ
    pub delta: Fr,
    /// τ — the evaluation point
    pub tau: Fr,
}

impl ToxicWaste {
    /// Samples fresh setup randomness.
    pub fn sample<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        // all values must be non-zero for the CRS to be well-formed
        let nonzero = |rng: &mut R| loop {
            let v = Fr::random(rng);
            if !v.is_zero() {
                return v;
            }
        };
        Self {
            alpha: nonzero(rng),
            beta: nonzero(rng),
            gamma: nonzero(rng),
            delta: nonzero(rng),
            tau: nonzero(rng),
        }
    }
}

/// Wall-clock breakdown of one key generation (for benches and telemetry).
#[derive(Clone, Copy, Debug, Default)]
pub struct SetupTimings {
    /// Scalar side: Lagrange/QAP evaluation at `τ` plus the derived scalar
    /// vectors (`β·u + α·v + w` combinations, powers of `τ`).
    pub qap_eval: Duration,
    /// Group side: fixed-base table construction plus the batch-affine
    /// multiplications for every key family.
    pub commit: Duration,
    /// End-to-end key generation.
    pub total: Duration,
}

/// One of the six point-vector families making up a [`ProvingKey`].
///
/// Streaming key generation emits families one at a time in the order of
/// the variants below; sinks use the discriminant to tag their output
/// (the `zkrownn-store` segment table reuses these names).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyFamily {
    /// `gamma_abc_g1` — the instance (IC) columns, part of the verifying
    /// key.
    Ic,
    /// `a_query` — `uᵢ(τ)` in G1.
    AQuery,
    /// `b_g1_query` — `vᵢ(τ)` in G1.
    BG1Query,
    /// `b_g2_query` — `vᵢ(τ)` in G2 (the only G2 family).
    BG2Query,
    /// `h_query` — `τⁱ·Z(τ)/δ` in G1.
    HQuery,
    /// `l_query` — the witness columns over `δ⁻¹` in G1.
    LQuery,
}

impl KeyFamily {
    /// Every family, in the order streaming keygen emits them.
    pub const ALL: [KeyFamily; 6] = [
        KeyFamily::Ic,
        KeyFamily::AQuery,
        KeyFamily::BG1Query,
        KeyFamily::BG2Query,
        KeyFamily::HQuery,
        KeyFamily::LQuery,
    ];

    /// Human-readable family name (for diagnostics and store tooling).
    pub fn name(self) -> &'static str {
        match self {
            Self::Ic => "ic",
            Self::AQuery => "a_query",
            Self::BG1Query => "b_g1_query",
            Self::BG2Query => "b_g2_query",
            Self::HQuery => "h_query",
            Self::LQuery => "l_query",
        }
    }

    /// Whether this family's points live in G2 (only the B-G2 query does).
    pub fn is_g2(self) -> bool {
        matches!(self, Self::BG2Query)
    }
}

/// The six fixed group elements of a proving key — everything that is not
/// one of the [`KeyFamily`] vectors. Emitted once, first, by streaming key
/// generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyConstants {
    /// `α` in G1 (verifying key).
    pub alpha_g1: G1Affine,
    /// `β` in G1 (prover side).
    pub beta_g1: G1Affine,
    /// `δ` in G1 (prover side).
    pub delta_g1: G1Affine,
    /// `β` in G2 (verifying key).
    pub beta_g2: G2Affine,
    /// `γ` in G2 (verifying key).
    pub gamma_g2: G2Affine,
    /// `δ` in G2 (verifying key).
    pub delta_g2: G2Affine,
}

/// A consumer of streaming key generation
/// ([`SetupContext::generate_streaming_with`]).
///
/// The generator drives a sink through a fixed protocol: one
/// [`constants`](Self::constants) call, then for each family in
/// [`KeyFamily::ALL`] order a [`begin_family`](Self::begin_family) call
/// announcing the exact element count, one or more budget-sized point
/// chunks ([`g1_chunk`](Self::g1_chunk) or [`g2_chunk`](Self::g2_chunk),
/// matching [`KeyFamily::is_g2`]), and an [`end_family`](Self::end_family)
/// call. Chunks arrive in index order and concatenate to exactly the same
/// point vector the in-memory [`SetupContext::generate_with`] would
/// produce — affine coordinates are canonical, so a sink that serializes
/// chunks as they arrive writes a byte-identical key.
pub trait KeySink {
    /// The sink's failure type (e.g. an I/O error for on-disk sinks).
    type Error;

    /// Receives the six fixed key elements (called exactly once, first).
    fn constants(&mut self, constants: &KeyConstants) -> Result<(), Self::Error>;

    /// Announces the next family and its total element count.
    fn begin_family(&mut self, family: KeyFamily, len: usize) -> Result<(), Self::Error>;

    /// Receives the next chunk of a G1 family, in index order.
    fn g1_chunk(&mut self, points: &[G1Affine]) -> Result<(), Self::Error>;

    /// Receives the next chunk of the G2 family, in index order.
    fn g2_chunk(&mut self, points: &[G2Affine]) -> Result<(), Self::Error>;

    /// Marks the announced family complete.
    fn end_family(&mut self, family: KeyFamily) -> Result<(), Self::Error>;
}

/// Everything about a circuit the setup can compute once and reuse: the
/// lowered constraint matrices and the FFT domain with its twiddle tables.
///
/// One context serves key generation (any number of times — e.g. key
/// rotation for the same circuit shape) and then converts into the
/// prover's cached [`ProverContext`] without re-lowering the circuit or
/// rebuilding the domain tables ([`Self::into_prover_context`] — the
/// `zkrownn` `Authority::setup` uses exactly this handoff).
pub struct SetupContext {
    matrices: R1csMatrices<Fr>,
    domain: Radix2Domain<Fr>,
}

impl SetupContext {
    /// Builds a context from pre-lowered matrices.
    ///
    /// # Panics
    /// Panics if the circuit exceeds the field's 2-adic FFT capacity.
    pub fn new(matrices: R1csMatrices<Fr>) -> Self {
        let domain = qap::qap_domain(&matrices);
        Self { matrices, domain }
    }

    /// Builds a context by synthesizing `circuit` in (witness-free) setup
    /// mode.
    pub fn for_circuit<C: Circuit<Fr>>(circuit: &C) -> Result<Self, SynthesisError> {
        let mut cs = SetupSynthesizer::<Fr>::new();
        circuit.synthesize(&mut cs)?;
        Ok(Self::new(cs.to_matrices()))
    }

    /// The lowered constraint matrices.
    pub fn matrices(&self) -> &R1csMatrices<Fr> {
        &self.matrices
    }

    /// The cached evaluation domain (twiddle tables included).
    pub fn domain(&self) -> &Radix2Domain<Fr> {
        &self.domain
    }

    /// Runs key generation with fresh randomness from `rng`.
    pub fn generate<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ProvingKey {
        self.generate_with(&ToxicWaste::sample(rng))
    }

    /// Deterministic key generation from explicit toxic waste
    /// (tests / reproducibility).
    pub fn generate_with(&self, toxic: &ToxicWaste) -> ProvingKey {
        self.generate_timed(toxic).0
    }

    /// [`Self::generate_with`] returning the per-phase wall-clock breakdown
    /// (the bench harness's `setup_qap_s`/`setup_commit_s` source).
    pub fn generate_timed(&self, toxic: &ToxicWaste) -> (ProvingKey, SetupTimings) {
        generate_from_parts(&self.matrices, &self.domain, toxic)
    }

    /// Streaming key generation: drives `sink` through the protocol
    /// described on [`KeySink`], holding at most one `budget`-sized point
    /// chunk (plus the fixed-base tables and the 32 B/element scalar
    /// vectors) in memory at any time.
    ///
    /// Families are processed **serially** — the point of this path is a
    /// bounded peak footprint, not latency — but each chunk still runs
    /// through the same multi-core batch-affine [`FixedBaseTable::mul_many`]
    /// kernel as the in-memory path, and produces exactly the same points:
    /// a sink that collects every chunk reassembles a key byte-identical
    /// to [`Self::generate_with`] for the same toxic waste.
    pub fn generate_streaming_with<S: KeySink>(
        &self,
        toxic: &ToxicWaste,
        sink: &mut S,
        budget: MemoryBudget,
    ) -> Result<SetupTimings, S::Error> {
        generate_streaming_from_parts(&self.matrices, &self.domain, toxic, sink, budget)
    }

    /// Converts this context into the prover's cached compute state,
    /// reusing the lowered matrices and the domain tables (the only new
    /// work is one field inversion for the coset vanishing constant).
    pub fn into_prover_context(self) -> ProverContext {
        ProverContext::from_lowered(self.matrices, self.domain)
    }
}

/// Runs the Groth16 setup for a circuit, producing the proving key (which
/// embeds the verifying key).
///
/// Synthesizes `circuit` in setup mode: no value closure — witness *or*
/// instance — is ever evaluated, so this can run on a machine holding only
/// the circuit shape.
pub fn generate_parameters<C: Circuit<Fr>, R: rand::Rng + ?Sized>(
    circuit: &C,
    rng: &mut R,
) -> Result<ProvingKey, SynthesisError> {
    generate_parameters_with(circuit, &ToxicWaste::sample(rng))
}

/// Deterministic circuit setup from explicit toxic waste
/// (tests / reproducibility).
pub fn generate_parameters_with<C: Circuit<Fr>>(
    circuit: &C,
    toxic: &ToxicWaste,
) -> Result<ProvingKey, SynthesisError> {
    Ok(SetupContext::for_circuit(circuit)?.generate_with(toxic))
}

/// Low-level setup over pre-lowered matrices (the circuit entry points
/// reduce to this; also used by harnesses that already hold matrices).
/// Builds a throwaway domain — amortizing callers hold a [`SetupContext`].
pub fn generate_parameters_from_matrices<R: rand::Rng + ?Sized>(
    matrices: &R1csMatrices<Fr>,
    rng: &mut R,
) -> ProvingKey {
    generate_parameters_from_matrices_with(matrices, &ToxicWaste::sample(rng))
}

/// Deterministic matrix-level setup from explicit toxic waste.
pub fn generate_parameters_from_matrices_with(
    matrices: &R1csMatrices<Fr>,
    toxic: &ToxicWaste,
) -> ProvingKey {
    generate_from_parts(matrices, &qap::qap_domain(matrices), toxic).0
}

/// The scalar phase of key generation, shared by the in-memory and
/// streaming kernels: QAP evaluations at `τ` plus every derived scalar
/// vector, **without** the toxic-element tails (the in-memory path appends
/// those to its carrier batches; the streaming path emits the constants
/// separately).
struct KeygenScalars {
    /// `a_query` scalars — `uᵢ(τ)`.
    u: Vec<Fr>,
    /// `b_g1_query`/`b_g2_query` scalars — `vᵢ(τ)`.
    v: Vec<Fr>,
    /// `gamma_abc_g1` scalars — instance columns of `(β·u + α·v + w)·γ⁻¹`.
    ic: Vec<Fr>,
    /// `l_query` scalars — witness columns of `(β·u + α·v + w)·δ⁻¹`.
    l: Vec<Fr>,
    /// `h_query` scalars — `τⁱ·Z(τ)/δ`.
    h: Vec<Fr>,
}

fn keygen_scalars(
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    toxic: &ToxicWaste,
) -> KeygenScalars {
    let qap = qap::evaluate_qap_at_with(matrices, domain, toxic.tau);
    let num_vars = matrices.num_instance + matrices.num_witness;
    let ninstance = matrices.num_instance;
    debug_assert_eq!(qap.u.len(), num_vars);

    let gamma_inv = toxic.gamma.inverse().expect("gamma != 0");
    let delta_inv = toxic.delta.inverse().expect("delta != 0");

    // gamma_abc (instance columns) and l_query (witness columns)
    let mut ic = Vec::with_capacity(ninstance + 3);
    let mut l = Vec::with_capacity(matrices.num_witness);
    for i in 0..num_vars {
        let combined = toxic.beta * qap.u[i] + toxic.alpha * qap.v[i] + qap.w[i];
        if i < ninstance {
            ic.push(combined * gamma_inv);
        } else {
            l.push(combined * delta_inv);
        }
    }
    // h_query scalars: τ^i · Z(τ)/δ — jump-then-recur, chunk-parallel
    let h = geometric_series(qap.zt * delta_inv, toxic.tau, domain.size - 1);
    KeygenScalars {
        u: qap.u,
        v: qap.v,
        ic,
        l,
        h,
    }
}

/// The keygen kernel: QAP scalars at `τ`, then every key family through
/// the batch-affine fixed-base tables, families in parallel.
fn generate_from_parts(
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    toxic: &ToxicWaste,
) -> (ProvingKey, SetupTimings) {
    let start = Instant::now();

    // Scalar-side computations --------------------------------------------
    let scalars = keygen_scalars(matrices, domain, toxic);
    let num_vars = matrices.num_instance + matrices.num_witness;
    // the G1 toxic elements α, β, δ ride along at the tail of the instance
    // batch so they share its batch-affine normalization
    let mut ic_scalars = scalars.ic;
    ic_scalars.extend([toxic.alpha, toxic.beta, toxic.delta]);
    let h_scalars = scalars.h;
    let l_scalars = scalars.l;
    // B-G2 batch with the G2 toxic elements β, γ, δ at the tail
    let mut v_g2_scalars = Vec::with_capacity(num_vars + 3);
    v_g2_scalars.extend_from_slice(&scalars.v);
    v_g2_scalars.extend([toxic.beta, toxic.gamma, toxic.delta]);
    let qap_eval = start.elapsed();

    // Group-side computations (batch-affine fixed-base kernels) ------------
    let commit_start = Instant::now();
    let total_g1_muls = 3 * num_vars + h_scalars.len() + 3;
    let w1 = FixedBaseTable::<G1Config>::suggested_window(total_g1_muls);
    let w2 = FixedBaseTable::<G2Config>::suggested_window(v_g2_scalars.len());
    let mut t2_slot = None;
    let t1 = std::thread::scope(|scope| {
        scope.spawn(|| t2_slot = Some(FixedBaseTable::new(G2Projective::generator(), w2)));
        FixedBaseTable::new(G1Projective::generator(), w1)
    });
    let t2 = t2_slot.expect("scope joined the G2 table build");

    // the six independent key families, concurrently; each family's
    // `mul_many` additionally splits its scalars across cores
    let mut a_query = Vec::new();
    let mut b_g1_query = Vec::new();
    let mut b_g2_ext = Vec::new();
    let mut h_query = Vec::new();
    let mut l_query = Vec::new();
    let mut ic_ext = std::thread::scope(|scope| {
        scope.spawn(|| a_query = t1.mul_many(&scalars.u));
        scope.spawn(|| b_g1_query = t1.mul_many(&scalars.v));
        scope.spawn(|| b_g2_ext = t2.mul_many(&v_g2_scalars));
        scope.spawn(|| h_query = t1.mul_many(&h_scalars));
        scope.spawn(|| l_query = t1.mul_many(&l_scalars));
        t1.mul_many(&ic_scalars)
    });

    // peel the toxic elements back off their carrier batches
    let delta_g2 = b_g2_ext.pop().expect("delta tail");
    let gamma_g2 = b_g2_ext.pop().expect("gamma tail");
    let beta_g2 = b_g2_ext.pop().expect("beta tail");
    let b_g2_query = b_g2_ext;
    let delta_g1 = ic_ext.pop().expect("delta tail");
    let beta_g1 = ic_ext.pop().expect("beta tail");
    let alpha_g1 = ic_ext.pop().expect("alpha tail");
    let gamma_abc_g1 = ic_ext;
    let commit = commit_start.elapsed();

    let pk = ProvingKey {
        vk: VerifyingKey {
            alpha_g1,
            beta_g2,
            gamma_g2,
            delta_g2,
            gamma_abc_g1,
        },
        beta_g1,
        delta_g1,
        a_query,
        b_g1_query,
        b_g2_query,
        h_query,
        l_query,
    };
    let timings = SetupTimings {
        qap_eval,
        commit,
        total: start.elapsed(),
    };
    (pk, timings)
}

/// The streaming keygen kernel: same scalar phase and fixed-base tables as
/// [`generate_from_parts`], but families are walked serially in
/// budget-sized chunks that are handed to `sink` and dropped, so peak
/// memory is the tables + the scalar vectors + **one** chunk of points
/// instead of the whole key (plus its serialized copy).
fn generate_streaming_from_parts<S: KeySink>(
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    toxic: &ToxicWaste,
    sink: &mut S,
    budget: MemoryBudget,
) -> Result<SetupTimings, S::Error> {
    let start = Instant::now();
    let scalars = keygen_scalars(matrices, domain, toxic);
    let num_vars = matrices.num_instance + matrices.num_witness;
    let qap_eval = start.elapsed();

    let commit_start = Instant::now();
    // same window choices as the in-memory kernel, so per-chunk `mul_many`
    // cost matches the monolithic path point-for-point
    let total_g1_muls = 3 * num_vars + scalars.h.len() + 3;
    let w1 = FixedBaseTable::<G1Config>::suggested_window(total_g1_muls);
    let w2 = FixedBaseTable::<G2Config>::suggested_window(scalars.v.len() + 3);
    let mut t2_slot = None;
    let t1 = std::thread::scope(|scope| {
        scope.spawn(|| t2_slot = Some(FixedBaseTable::new(G2Projective::generator(), w2)));
        FixedBaseTable::new(G1Projective::generator(), w1)
    });
    let t2 = t2_slot.expect("scope joined the G2 table build");

    // the fixed elements first — single-scalar muls normalize to the same
    // canonical affine coordinates the batch kernel produces
    sink.constants(&KeyConstants {
        alpha_g1: t1.mul(toxic.alpha).into_affine(),
        beta_g1: t1.mul(toxic.beta).into_affine(),
        delta_g1: t1.mul(toxic.delta).into_affine(),
        beta_g2: t2.mul(toxic.beta).into_affine(),
        gamma_g2: t2.mul(toxic.gamma).into_affine(),
        delta_g2: t2.mul(toxic.delta).into_affine(),
    })?;

    let g1_chunk = budget.chunk_len(uncompressed_size::<G1Config>());
    let g2_chunk = budget.chunk_len(uncompressed_size::<G2Config>());
    for family in KeyFamily::ALL {
        let family_scalars: &[Fr] = match family {
            KeyFamily::Ic => &scalars.ic,
            KeyFamily::AQuery => &scalars.u,
            KeyFamily::BG1Query => &scalars.v,
            KeyFamily::BG2Query => &scalars.v,
            KeyFamily::HQuery => &scalars.h,
            KeyFamily::LQuery => &scalars.l,
        };
        sink.begin_family(family, family_scalars.len())?;
        if family.is_g2() {
            for chunk in family_scalars.chunks(g2_chunk) {
                sink.g2_chunk(&t2.mul_many(chunk))?;
            }
        } else {
            for chunk in family_scalars.chunks(g1_chunk) {
                sink.g1_chunk(&t1.mul_many(chunk))?;
            }
        }
        sink.end_family(family)?;
    }
    let commit = commit_start.elapsed();
    Ok(SetupTimings {
        qap_eval,
        commit,
        total: start.elapsed(),
    })
}

/// Convenience: number of affine points the setup will produce, used by
/// the bench harness for progress reporting.
pub fn setup_output_points(matrices: &R1csMatrices<Fr>) -> usize {
    let num_vars = matrices.num_instance + matrices.num_witness;
    let domain = qap::qap_domain(matrices);
    4 * num_vars + domain.size - 1
}
