//! Groth16 key and proof types, with binary serialization.
//!
//! Sizes mirror the paper's Table I metrics: proofs are three compressed
//! points (`G1 ‖ G2 ‖ G1` = 128 bytes), the verifying key grows linearly in
//! the number of public inputs, and the proving key grows linearly in the
//! number of variables/constraints.

use zkrownn_curves::serialize as ser;
use zkrownn_curves::{G1Affine, G1Config, G2Affine, G2Config};
use zkrownn_ff::Fq12;
use zkrownn_pairing::{pairing, G2Prepared};

/// A Groth16 proof `(A, B, C)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    /// `A ∈ G1`.
    pub a: G1Affine,
    /// `B ∈ G2`.
    pub b: G2Affine,
    /// `C ∈ G1`.
    pub c: G1Affine,
}

impl Proof {
    /// Compressed size in bytes (constant: 32 + 64 + 32).
    pub const SIZE: usize = 128;

    /// Serializes the proof (compressed, 128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SIZE);
        ser::write_compressed(&self.a, &mut out);
        ser::write_compressed(&self.b, &mut out);
        ser::write_compressed(&self.c, &mut out);
        debug_assert_eq!(out.len(), Self::SIZE);
        out
    }

    /// Deserializes and validates a proof.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        Some(Self {
            a: ser::read_compressed::<G1Config>(&bytes[0..32])?,
            b: ser::read_compressed::<G2Config>(&bytes[32..96])?,
            c: ser::read_compressed::<G1Config>(&bytes[96..128])?,
        })
    }
}

/// The public verifying key.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyingKey {
    /// `α·G1`.
    pub alpha_g1: G1Affine,
    /// `β·G2`.
    pub beta_g2: G2Affine,
    /// `γ·G2`.
    pub gamma_g2: G2Affine,
    /// `δ·G2`.
    pub delta_g2: G2Affine,
    /// `{(β·uᵢ(τ) + α·vᵢ(τ) + wᵢ(τ))/γ · G1}` for each instance column
    /// (including the constant-1 column).
    pub gamma_abc_g1: Vec<G1Affine>,
}

impl VerifyingKey {
    /// Serialized size in bytes (compressed points).
    pub fn serialized_size(&self) -> usize {
        8 + 32 + 3 * 64 + 32 * self.gamma_abc_g1.len()
    }

    /// Serializes the key (compressed points, length-prefixed vector).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        out.extend_from_slice(&(self.gamma_abc_g1.len() as u64).to_le_bytes());
        ser::write_compressed(&self.alpha_g1, &mut out);
        ser::write_compressed(&self.beta_g2, &mut out);
        ser::write_compressed(&self.gamma_g2, &mut out);
        ser::write_compressed(&self.delta_g2, &mut out);
        for p in &self.gamma_abc_g1 {
            ser::write_compressed(p, &mut out);
        }
        out
    }

    /// Deserializes and validates a verifying key.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let expected = 8 + 32 + 3 * 64 + 32 * n;
        if bytes.len() != expected {
            return None;
        }
        let mut off = 8;
        let alpha_g1 = ser::read_compressed::<G1Config>(&bytes[off..off + 32])?;
        off += 32;
        let beta_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64])?;
        off += 64;
        let gamma_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64])?;
        off += 64;
        let delta_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64])?;
        off += 64;
        let mut gamma_abc_g1 = Vec::with_capacity(n);
        for _ in 0..n {
            gamma_abc_g1.push(ser::read_compressed::<G1Config>(&bytes[off..off + 32])?);
            off += 32;
        }
        Some(Self {
            alpha_g1,
            beta_g2,
            gamma_g2,
            delta_g2,
            gamma_abc_g1,
        })
    }

    /// Precomputes the pairing-side constants for fast verification.
    pub fn prepare(&self) -> PreparedVerifyingKey {
        PreparedVerifyingKey {
            alpha_beta: pairing(&self.alpha_g1, &self.beta_g2),
            gamma_prepared: G2Prepared::from(self.gamma_g2),
            delta_prepared: G2Prepared::from(self.delta_g2),
            gamma_abc_g1: self.gamma_abc_g1.clone(),
        }
    }
}

/// A verifying key with pairing precomputation applied.
#[derive(Clone, Debug)]
pub struct PreparedVerifyingKey {
    /// `e(α·G1, β·G2)`.
    pub alpha_beta: Fq12,
    /// Prepared `γ·G2`.
    pub gamma_prepared: G2Prepared,
    /// Prepared `δ·G2`.
    pub delta_prepared: G2Prepared,
    /// Same instance-commitment bases as [`VerifyingKey::gamma_abc_g1`].
    pub gamma_abc_g1: Vec<G1Affine>,
}

/// The proving key.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvingKey {
    /// A copy of the verifying key (the prover needs `delta_g2`/`beta_g2`).
    pub vk: VerifyingKey,
    /// `β·G1`.
    pub beta_g1: G1Affine,
    /// `δ·G1`.
    pub delta_g1: G1Affine,
    /// `{uᵢ(τ)·G1}` for every column of `z`.
    pub a_query: Vec<G1Affine>,
    /// `{vᵢ(τ)·G1}` for every column of `z`.
    pub b_g1_query: Vec<G1Affine>,
    /// `{vᵢ(τ)·G2}` for every column of `z`.
    pub b_g2_query: Vec<G2Affine>,
    /// `{τⁱ·Z(τ)/δ · G1}` for `i < m − 1`.
    pub h_query: Vec<G1Affine>,
    /// `{(β·uᵢ(τ) + α·vᵢ(τ) + wᵢ(τ))/δ · G1}` for witness columns.
    pub l_query: Vec<G1Affine>,
}

impl ProvingKey {
    /// Serialized size in bytes (uncompressed points, like libsnark's
    /// in-memory representation — this is the "PK size" metric of Table I).
    pub fn serialized_size(&self) -> usize {
        let g1 = 64;
        let g2 = 128;
        5 * 8
            + self.vk.serialized_size()
            + 2 * g1
            + g1 * (self.a_query.len()
                + self.b_g1_query.len()
                + self.h_query.len()
                + self.l_query.len())
            + g2 * self.b_g2_query.len()
    }

    /// Serializes the proving key (uncompressed points for fast loading).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        for len in [
            self.a_query.len(),
            self.b_g1_query.len(),
            self.b_g2_query.len(),
            self.h_query.len(),
            self.l_query.len(),
        ] {
            out.extend_from_slice(&(len as u64).to_le_bytes());
        }
        let vk_bytes = self.vk.to_bytes();
        out.extend_from_slice(&vk_bytes);
        ser::write_uncompressed(&self.beta_g1, &mut out);
        ser::write_uncompressed(&self.delta_g1, &mut out);
        for p in &self.a_query {
            ser::write_uncompressed(p, &mut out);
        }
        for p in &self.b_g1_query {
            ser::write_uncompressed(p, &mut out);
        }
        for p in &self.b_g2_query {
            ser::write_uncompressed(p, &mut out);
        }
        for p in &self.h_query {
            ser::write_uncompressed(p, &mut out);
        }
        for p in &self.l_query {
            ser::write_uncompressed(p, &mut out);
        }
        out
    }

    /// Deserializes and validates a proving key.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 40 {
            return None;
        }
        let mut lens = [0usize; 5];
        for (i, l) in lens.iter_mut().enumerate() {
            *l = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().ok()?) as usize;
        }
        let mut off = 40;
        // VK: need its size first
        if bytes.len() < off + 8 {
            return None;
        }
        let n_abc = u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?) as usize;
        let vk_size = 8 + 32 + 3 * 64 + 32 * n_abc;
        let vk = VerifyingKey::from_bytes(bytes.get(off..off + vk_size)?)?;
        off += vk_size;
        let read_g1 = |off: &mut usize| -> Option<G1Affine> {
            let p = ser::read_uncompressed::<G1Config>(bytes.get(*off..*off + 64)?)?;
            *off += 64;
            Some(p)
        };
        let read_g2 = |off: &mut usize| -> Option<G2Affine> {
            let p = ser::read_uncompressed::<G2Config>(bytes.get(*off..*off + 128)?)?;
            *off += 128;
            Some(p)
        };
        let beta_g1 = read_g1(&mut off)?;
        let delta_g1 = read_g1(&mut off)?;
        let mut a_query = Vec::with_capacity(lens[0]);
        for _ in 0..lens[0] {
            a_query.push(read_g1(&mut off)?);
        }
        let mut b_g1_query = Vec::with_capacity(lens[1]);
        for _ in 0..lens[1] {
            b_g1_query.push(read_g1(&mut off)?);
        }
        let mut b_g2_query = Vec::with_capacity(lens[2]);
        for _ in 0..lens[2] {
            b_g2_query.push(read_g2(&mut off)?);
        }
        let mut h_query = Vec::with_capacity(lens[3]);
        for _ in 0..lens[3] {
            h_query.push(read_g1(&mut off)?);
        }
        let mut l_query = Vec::with_capacity(lens[4]);
        for _ in 0..lens[4] {
            l_query.push(read_g1(&mut off)?);
        }
        if off != bytes.len() {
            return None;
        }
        Some(Self {
            vk,
            beta_g1,
            delta_g1,
            a_query,
            b_g1_query,
            b_g2_query,
            h_query,
            l_query,
        })
    }
}
