//! Groth16 key and proof types, with binary serialization.
//!
//! Sizes mirror the paper's Table I metrics: proofs are three compressed
//! points (`G1 ‖ G2 ‖ G1` = 128 bytes), the verifying key grows linearly in
//! the number of public inputs, and the proving key grows linearly in the
//! number of variables/constraints.

use alloc::vec::Vec;
use zkrownn_curves::serialize as ser;
use zkrownn_curves::{G1Affine, G1Config, G2Affine, G2Config, PointDecodeError};
use zkrownn_ff::Fq12;
use zkrownn_pairing::{pairing, G2Prepared};

/// Why a byte string failed to decode as a key or proof.
///
/// Each variant pins down the rejection: a length problem names the exact
/// byte counts, and a bad curve point carries its byte offset plus the
/// point-level cause (truncated, non-canonical coordinate, off-curve, wrong
/// subgroup) from [`PointDecodeError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ends before the structure it claims to hold.
    Truncated {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The total length disagrees with the (fixed or self-described) size.
    LengthMismatch {
        /// Length the encoding requires.
        expected: usize,
        /// Length supplied.
        got: usize,
    },
    /// A curve point failed validation.
    Point {
        /// Byte offset of the offending point.
        offset: usize,
        /// The point-level failure.
        source: PointDecodeError,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(f, "truncated encoding: need {needed} bytes, have {got}")
            }
            Self::LengthMismatch { expected, got } => {
                write!(f, "encoding is {got} bytes, expected {expected}")
            }
            Self::Point { offset, source } => {
                write!(f, "invalid point at byte {offset}: {source}")
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for DecodeError {}

/// Maps a point-decode failure at the given byte offset into a
/// [`DecodeError::Point`].
fn at(offset: usize) -> impl Fn(PointDecodeError) -> DecodeError {
    move |source| DecodeError::Point { offset, source }
}

/// A Groth16 proof `(A, B, C)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Proof {
    /// `A ∈ G1`.
    pub a: G1Affine,
    /// `B ∈ G2`.
    pub b: G2Affine,
    /// `C ∈ G1`.
    pub c: G1Affine,
}

impl Proof {
    /// Compressed size in bytes (constant: 32 + 64 + 32).
    pub const SIZE: usize = 128;

    /// Serialized size in bytes (constant; mirrors the key types' API).
    pub fn serialized_size(&self) -> usize {
        Self::SIZE
    }

    /// Serializes the proof (compressed, 128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SIZE);
        ser::write_compressed(&self.a, &mut out);
        ser::write_compressed(&self.b, &mut out);
        ser::write_compressed(&self.c, &mut out);
        debug_assert_eq!(out.len(), Self::SIZE);
        out
    }

    /// Deserializes and validates a proof.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() != Self::SIZE {
            return Err(DecodeError::LengthMismatch {
                expected: Self::SIZE,
                got: bytes.len(),
            });
        }
        Ok(Self {
            a: ser::read_compressed::<G1Config>(&bytes[0..32]).map_err(at(0))?,
            b: ser::read_compressed::<G2Config>(&bytes[32..96]).map_err(at(32))?,
            c: ser::read_compressed::<G1Config>(&bytes[96..128]).map_err(at(96))?,
        })
    }
}

/// The public verifying key.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyingKey {
    /// `α·G1`.
    pub alpha_g1: G1Affine,
    /// `β·G2`.
    pub beta_g2: G2Affine,
    /// `γ·G2`.
    pub gamma_g2: G2Affine,
    /// `δ·G2`.
    pub delta_g2: G2Affine,
    /// `{(β·uᵢ(τ) + α·vᵢ(τ) + wᵢ(τ))/γ · G1}` for each instance column
    /// (including the constant-1 column).
    pub gamma_abc_g1: Vec<G1Affine>,
}

impl VerifyingKey {
    /// Serialized size in bytes (compressed points).
    pub fn serialized_size(&self) -> usize {
        8 + 32 + 3 * 64 + 32 * self.gamma_abc_g1.len()
    }

    /// Serializes the key (compressed points, length-prefixed vector).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        self.write_bytes(&mut out);
        out
    }

    /// Appends the serialized key to an existing buffer (avoids a second
    /// allocation when embedding the key in a larger envelope).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.gamma_abc_g1.len() as u64).to_le_bytes());
        ser::write_compressed(&self.alpha_g1, out);
        ser::write_compressed(&self.beta_g2, out);
        ser::write_compressed(&self.gamma_g2, out);
        ser::write_compressed(&self.delta_g2, out);
        for p in &self.gamma_abc_g1 {
            ser::write_compressed(p, out);
        }
    }

    /// Deserializes and validates a verifying key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                needed: 8,
                got: bytes.len(),
            });
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        // saturating throughout: a hostile length must yield an error, not
        // an overflow panic — a saturated `expected` can never equal a real
        // buffer length (allocations are capped at isize::MAX)
        let expected = 32usize.saturating_mul(n).saturating_add(8 + 32 + 3 * 64);
        if bytes.len() != expected {
            return Err(DecodeError::LengthMismatch {
                expected,
                got: bytes.len(),
            });
        }
        let mut off = 8;
        let alpha_g1 = ser::read_compressed::<G1Config>(&bytes[off..off + 32]).map_err(at(off))?;
        off += 32;
        let beta_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64]).map_err(at(off))?;
        off += 64;
        let gamma_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64]).map_err(at(off))?;
        off += 64;
        let delta_g2 = ser::read_compressed::<G2Config>(&bytes[off..off + 64]).map_err(at(off))?;
        off += 64;
        let mut gamma_abc_g1 = Vec::with_capacity(n);
        for _ in 0..n {
            gamma_abc_g1
                .push(ser::read_compressed::<G1Config>(&bytes[off..off + 32]).map_err(at(off))?);
            off += 32;
        }
        Ok(Self {
            alpha_g1,
            beta_g2,
            gamma_g2,
            delta_g2,
            gamma_abc_g1,
        })
    }

    /// Precomputes the pairing-side constants for fast verification.
    pub fn prepare(&self) -> PreparedVerifyingKey {
        PreparedVerifyingKey {
            alpha_beta: pairing(&self.alpha_g1, &self.beta_g2),
            gamma_prepared: G2Prepared::from(self.gamma_g2),
            delta_prepared: G2Prepared::from(self.delta_g2),
            gamma_abc_g1: self.gamma_abc_g1.clone(),
        }
    }
}

/// A verifying key with pairing precomputation applied.
#[derive(Clone, Debug)]
pub struct PreparedVerifyingKey {
    /// `e(α·G1, β·G2)`.
    pub alpha_beta: Fq12,
    /// Prepared `γ·G2`.
    pub gamma_prepared: G2Prepared,
    /// Prepared `δ·G2`.
    pub delta_prepared: G2Prepared,
    /// Same instance-commitment bases as [`VerifyingKey::gamma_abc_g1`].
    pub gamma_abc_g1: Vec<G1Affine>,
}

/// The proving key.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvingKey {
    /// A copy of the verifying key (the prover needs `delta_g2`/`beta_g2`).
    pub vk: VerifyingKey,
    /// `β·G1`.
    pub beta_g1: G1Affine,
    /// `δ·G1`.
    pub delta_g1: G1Affine,
    /// `{uᵢ(τ)·G1}` for every column of `z`.
    pub a_query: Vec<G1Affine>,
    /// `{vᵢ(τ)·G1}` for every column of `z`.
    pub b_g1_query: Vec<G1Affine>,
    /// `{vᵢ(τ)·G2}` for every column of `z`.
    pub b_g2_query: Vec<G2Affine>,
    /// `{τⁱ·Z(τ)/δ · G1}` for `i < m − 1`.
    pub h_query: Vec<G1Affine>,
    /// `{(β·uᵢ(τ) + α·vᵢ(τ) + wᵢ(τ))/δ · G1}` for witness columns.
    pub l_query: Vec<G1Affine>,
}

impl ProvingKey {
    /// Serialized size in bytes (uncompressed points, like libsnark's
    /// in-memory representation — this is the "PK size" metric of Table I).
    pub fn serialized_size(&self) -> usize {
        let g1 = 64;
        let g2 = 128;
        5 * 8
            + self.vk.serialized_size()
            + 2 * g1
            + g1 * (self.a_query.len()
                + self.b_g1_query.len()
                + self.h_query.len()
                + self.l_query.len())
            + g2 * self.b_g2_query.len()
    }

    /// Serializes the proving key (uncompressed points for fast loading).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        self.write_bytes(&mut out);
        out
    }

    /// Appends the serialized key to an existing buffer (avoids a second
    /// multi-megabyte allocation when embedding the key in an envelope).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        for len in [
            self.a_query.len(),
            self.b_g1_query.len(),
            self.b_g2_query.len(),
            self.h_query.len(),
            self.l_query.len(),
        ] {
            out.extend_from_slice(&(len as u64).to_le_bytes());
        }
        self.vk.write_bytes(out);
        ser::write_uncompressed(&self.beta_g1, out);
        ser::write_uncompressed(&self.delta_g1, out);
        for p in &self.a_query {
            ser::write_uncompressed(p, out);
        }
        for p in &self.b_g1_query {
            ser::write_uncompressed(p, out);
        }
        for p in &self.b_g2_query {
            ser::write_uncompressed(p, out);
        }
        for p in &self.h_query {
            ser::write_uncompressed(p, out);
        }
        for p in &self.l_query {
            ser::write_uncompressed(p, out);
        }
    }

    /// Deserializes and validates a proving key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < 40 {
            return Err(DecodeError::Truncated {
                needed: 40,
                got: bytes.len(),
            });
        }
        let mut lens = [0usize; 5];
        for (i, l) in lens.iter_mut().enumerate() {
            *l = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap()) as usize;
        }
        let mut off = 40;
        // VK: need its size first
        if bytes.len() < off + 8 {
            return Err(DecodeError::Truncated {
                needed: off + 8,
                got: bytes.len(),
            });
        }
        let n_abc = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        let vk_size = 32usize
            .saturating_mul(n_abc)
            .saturating_add(8 + 32 + 3 * 64);
        let vk_bytes =
            bytes
                .get(off..off.saturating_add(vk_size))
                .ok_or(DecodeError::Truncated {
                    needed: off.saturating_add(vk_size),
                    got: bytes.len(),
                })?;
        let vk = VerifyingKey::from_bytes(vk_bytes).map_err(|e| match e {
            // re-anchor point offsets to the enclosing buffer
            DecodeError::Point { offset, source } => DecodeError::Point {
                offset: offset + off,
                source,
            },
            other => other,
        })?;
        off += vk_size;
        let read_g1 = |off: &mut usize| -> Result<G1Affine, DecodeError> {
            let slice = bytes.get(*off..*off + 64).ok_or(DecodeError::Truncated {
                needed: *off + 64,
                got: bytes.len(),
            })?;
            let p = ser::read_uncompressed::<G1Config>(slice).map_err(at(*off))?;
            *off += 64;
            Ok(p)
        };
        let read_g2 = |off: &mut usize| -> Result<G2Affine, DecodeError> {
            let slice = bytes.get(*off..*off + 128).ok_or(DecodeError::Truncated {
                needed: *off + 128,
                got: bytes.len(),
            })?;
            let p = ser::read_uncompressed::<G2Config>(slice).map_err(at(*off))?;
            *off += 128;
            Ok(p)
        };
        let beta_g1 = read_g1(&mut off)?;
        let delta_g1 = read_g1(&mut off)?;
        // hostile lens must not drive Vec::with_capacity into an allocation
        // abort — cap every preallocation by what the buffer could hold;
        // oversized counts then fail with Truncated on the first short read
        let cap = |len: usize| len.min(bytes.len() / 64 + 1);
        let mut a_query = Vec::with_capacity(cap(lens[0]));
        for _ in 0..lens[0] {
            a_query.push(read_g1(&mut off)?);
        }
        let mut b_g1_query = Vec::with_capacity(cap(lens[1]));
        for _ in 0..lens[1] {
            b_g1_query.push(read_g1(&mut off)?);
        }
        let mut b_g2_query = Vec::with_capacity(cap(lens[2]));
        for _ in 0..lens[2] {
            b_g2_query.push(read_g2(&mut off)?);
        }
        let mut h_query = Vec::with_capacity(cap(lens[3]));
        for _ in 0..lens[3] {
            h_query.push(read_g1(&mut off)?);
        }
        let mut l_query = Vec::with_capacity(cap(lens[4]));
        for _ in 0..lens[4] {
            l_query.push(read_g1(&mut off)?);
        }
        if off != bytes.len() {
            return Err(DecodeError::LengthMismatch {
                expected: off,
                got: bytes.len(),
            });
        }
        Ok(Self {
            vk,
            beta_g1,
            delta_g1,
            a_query,
            b_g1_query,
            b_g2_query,
            h_query,
            l_query,
        })
    }
}
