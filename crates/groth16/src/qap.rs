//! R1CS → QAP reduction (libsnark style).
//!
//! The constraint matrices are interpolated over a radix-2 domain of size
//! `m ≥ #constraints + #instance`. The extra `#instance` rows are *padding
//! constraints* `zᵢ · 0 = 0` placed in the A matrix, which make the instance
//! polynomials `uᵢ` linearly independent — the standard libsnark fix that
//! Groth16's knowledge-soundness proof requires.

use zkrownn_ff::{Field, Fr};
use zkrownn_poly::Radix2Domain;
use zkrownn_r1cs::R1csMatrices;

/// The QAP view of an R1CS: per-variable polynomial evaluations at a fixed
/// point `τ` (used only at setup). The evaluation domain itself lives with
/// the caller (a [`crate::SetupContext`] caches it alongside the lowered
/// matrices).
pub struct QapEvaluations {
    /// `uᵢ(τ)` per column of `z`.
    pub u: Vec<Fr>,
    /// `vᵢ(τ)` per column of `z`.
    pub v: Vec<Fr>,
    /// `wᵢ(τ)` per column of `z`.
    pub w: Vec<Fr>,
    /// `Z(τ) = τ^m − 1`.
    pub zt: Fr,
}

/// Returns the evaluation domain used for the given matrix dimensions.
///
/// # Panics
/// Panics if the circuit exceeds the field's 2-adic FFT capacity (2²⁸ rows).
pub fn qap_domain(matrices: &R1csMatrices<Fr>) -> Radix2Domain<Fr> {
    let rows = matrices.a.len() + matrices.num_instance;
    Radix2Domain::new(rows).expect("circuit too large for the BN254 scalar field FFT")
}

/// Evaluates all QAP polynomials at `τ`, building a throwaway domain.
/// Setup-side callers holding a [`crate::SetupContext`] go through
/// [`evaluate_qap_at_with`] and reuse its cached twiddle-table domain.
pub fn evaluate_qap_at(matrices: &R1csMatrices<Fr>, tau: Fr) -> QapEvaluations {
    evaluate_qap_at_with(matrices, &qap_domain(matrices), tau)
}

/// Evaluates all QAP polynomials at `τ` over a prebuilt domain. The
/// Lagrange coefficients come from the domain's twiddle-table path, and the
/// three independent A/B/C column accumulations run on separate threads.
pub fn evaluate_qap_at_with(
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    tau: Fr,
) -> QapEvaluations {
    debug_assert!(domain.size >= matrices.a.len() + matrices.num_instance);
    let lagrange = domain.lagrange_coefficients_at(tau);
    let num_vars = matrices.num_instance + matrices.num_witness;
    let ncons = matrices.a.len();

    let accumulate = |rows: &[Vec<(usize, Fr)>]| -> Vec<Fr> {
        let mut col_evals = vec![Fr::zero(); num_vars];
        for (j, row) in rows.iter().enumerate() {
            for (col, coeff) in row {
                col_evals[*col] += *coeff * lagrange[j];
            }
        }
        col_evals
    };

    let mut u = Vec::new();
    let mut v = Vec::new();
    let w = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut cols = accumulate(&matrices.a);
            // instance padding rows: A[ncons + i][i] = 1
            for i in 0..matrices.num_instance {
                cols[i] += lagrange[ncons + i];
            }
            u = cols;
        });
        scope.spawn(|| v = accumulate(&matrices.b));
        accumulate(&matrices.c)
    });

    QapEvaluations {
        zt: domain.evaluate_vanishing_polynomial(tau),
        u,
        v,
        w,
    }
}

/// Computes the coefficients of the quotient `h(x) = (A(x)B(x) − C(x))/Z(x)`
/// for a full assignment `z` (the prover's "witness map").
///
/// Returns `m − 1` coefficients (`deg h = m − 2` for a satisfied system).
///
/// Builds the evaluation domain (twiddle tables included) from scratch on
/// every call; amortizing workloads should go through
/// [`crate::ProverContext`], which caches the domain and the vanishing
/// constant and reduces to the same kernel.
pub fn witness_map(matrices: &R1csMatrices<Fr>, z: &[Fr]) -> Vec<Fr> {
    let domain = qap_domain(matrices);
    let z_inv = domain
        .vanishing_polynomial_on_coset()
        .inverse()
        .expect("coset avoids the domain");
    witness_map_with(matrices, &domain, z_inv, z)
}

/// The witness-map kernel over a prebuilt domain: the three interpolation
/// pipelines (evaluate rows over `H`, interpolate, re-evaluate on the coset
/// `gH`) are independent until the pointwise combine, so A/B/C run on
/// separate threads.
pub(crate) fn witness_map_with(
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    z_inv: Fr,
    z: &[Fr],
) -> Vec<Fr> {
    let m = domain.size;
    let ncons = matrices.a.len();
    debug_assert_eq!(z.len(), matrices.num_instance + matrices.num_witness);

    let eval_rows = |rows: &[Vec<(usize, Fr)>]| -> Vec<Fr> {
        let mut evals = vec![Fr::zero(); m];
        for (j, row) in rows.iter().enumerate() {
            evals[j] = row
                .iter()
                .fold(Fr::zero(), |acc, (col, coeff)| acc + z[*col] * *coeff);
        }
        evals
    };
    // evaluate over H, interpolate, move to the coset gH where Z ≠ 0
    let to_coset = |evals: &mut Vec<Fr>| domain.ifft_coset_fft_in_place(evals);

    let mut a_evals = Vec::new();
    let mut b_evals = Vec::new();
    let mut c_evals = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut evals = eval_rows(&matrices.a);
            // instance padding rows: A[ncons + i][i] = zᵢ
            evals[ncons..ncons + matrices.num_instance]
                .copy_from_slice(&z[..matrices.num_instance]);
            to_coset(&mut evals);
            a_evals = evals;
        });
        scope.spawn(|| {
            let mut evals = eval_rows(&matrices.b);
            to_coset(&mut evals);
            b_evals = evals;
        });
        let mut evals = eval_rows(&matrices.c);
        to_coset(&mut evals);
        c_evals = evals;
    });

    let mut h = a_evals;
    for i in 0..m {
        h[i] = (h[i] * b_evals[i] - c_evals[i]) * z_inv;
    }
    domain.coset_ifft_in_place(&mut h);
    debug_assert!(
        h[m - 1].is_zero(),
        "AB - C not divisible by Z: unsatisfied constraint system?"
    );
    h.truncate(m - 1);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_ff::Field;
    use zkrownn_r1cs::{ConstraintSystem, ProvingSynthesizer};

    /// x·y = p, y·y = s (two constraints, one instance for each output)
    fn sample_system() -> ProvingSynthesizer<Fr> {
        let mut cs = ProvingSynthesizer::new();
        let p = cs.alloc_instance(|| Ok(Fr::from_u64(21))).unwrap();
        let s = cs.alloc_instance(|| Ok(Fr::from_u64(49))).unwrap();
        let x = cs.alloc_witness(|| Ok(Fr::from_u64(3))).unwrap();
        let y = cs.alloc_witness(|| Ok(Fr::from_u64(7))).unwrap();
        cs.enforce(x.into(), y.into(), p.into());
        cs.enforce(y.into(), y.into(), s.into());
        cs
    }

    #[test]
    fn witness_map_gives_exact_division() {
        let cs = sample_system();
        assert!(cs.is_satisfied().is_ok());
        let m = cs.to_matrices();
        let h = witness_map(&m, &cs.full_assignment());
        // verify A(τ)B(τ) − C(τ) = h(τ)Z(τ) at a random τ via QAP evals
        let mut rng = rand::rngs::StdRng::seed_from_u64(121);
        let tau = Fr::random(&mut rng);
        let qap = evaluate_qap_at(&m, tau);
        let z = cs.full_assignment();
        let at = z
            .iter()
            .zip(&qap.u)
            .fold(Fr::zero(), |s, (zi, ui)| s + *zi * *ui);
        let bt = z
            .iter()
            .zip(&qap.v)
            .fold(Fr::zero(), |s, (zi, vi)| s + *zi * *vi);
        let ct = z
            .iter()
            .zip(&qap.w)
            .fold(Fr::zero(), |s, (zi, wi)| s + *zi * *wi);
        let ht = h.iter().rev().fold(Fr::zero(), |acc, &c| acc * tau + c);
        assert_eq!(at * bt - ct, ht * qap.zt);
    }

    #[test]
    #[should_panic(expected = "AB - C not divisible")]
    #[cfg(debug_assertions)]
    fn witness_map_panics_on_bad_witness() {
        let cs = sample_system();
        let m = cs.to_matrices();
        let mut z = cs.full_assignment();
        z[3] = Fr::from_u64(999); // corrupt a witness value
        let _ = witness_map(&m, &z);
    }

    #[test]
    fn instance_polynomials_are_nonzero() {
        // the padding rows guarantee every instance column has u_i ≠ 0
        let cs = sample_system();
        let m = cs.to_matrices();
        let mut rng = rand::rngs::StdRng::seed_from_u64(122);
        let qap = evaluate_qap_at(&m, Fr::random(&mut rng));
        for i in 0..m.num_instance {
            assert!(!qap.u[i].is_zero(), "instance column {i}");
        }
    }

    #[test]
    fn domain_covers_constraints_plus_instance() {
        let cs = sample_system();
        let m = cs.to_matrices();
        let d = qap_domain(&m);
        assert!(d.size >= m.a.len() + m.num_instance);
    }
}
