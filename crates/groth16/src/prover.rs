//! Groth16 prover.

use crate::keys::{Proof, ProvingKey};
use crate::qap;
use zkrownn_curves::msm::msm;
use zkrownn_ff::{Field, Fr};
use zkrownn_r1cs::{Circuit, ProvingSynthesizer, R1csMatrices, SynthesisError};

/// Synthesizes `circuit` in proving mode (evaluating every value closure
/// into the dense assignment) and creates a proof for it.
///
/// Fresh zero-knowledge randomness `(r, s)` is drawn from `rng`. Returns
/// [`SynthesisError::AssignmentMissing`] if the circuit was constructed
/// without its witness.
///
/// # Panics
/// Panics (in debug builds) if the synthesized system is unsatisfied or its
/// shape disagrees with the proving key.
pub fn create_proof<C: Circuit<Fr>, R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    circuit: &C,
    rng: &mut R,
) -> Result<Proof, SynthesisError> {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    circuit.synthesize(&mut cs)?;
    Ok(create_proof_from_cs(pk, &cs, rng))
}

/// Creates a proof from an already-synthesized proving-mode system (useful
/// when the caller also needs the assignment, e.g. for public inputs, or
/// wants to amortize one synthesis across several proofs).
///
/// # Panics
/// Panics (in debug builds) if the constraint system is unsatisfied or its
/// shape disagrees with the proving key.
pub fn create_proof_from_cs<R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ProvingSynthesizer<Fr>,
    rng: &mut R,
) -> Proof {
    debug_assert_eq!(cs.is_satisfied(), Ok(()), "unsatisfied constraint system");
    let matrices = cs.to_matrices();
    let z = cs.full_assignment();
    let r = Fr::random(rng);
    let s = Fr::random(rng);
    create_proof_with_randomness(pk, &matrices, &z, r, s)
}

/// Deterministic-randomness variant (used by tests and the bench harness).
pub fn create_proof_with_randomness(
    pk: &ProvingKey,
    matrices: &R1csMatrices<Fr>,
    z: &[Fr],
    r: Fr,
    s: Fr,
) -> Proof {
    let num_vars = matrices.num_instance + matrices.num_witness;
    assert_eq!(z.len(), num_vars, "assignment length mismatch");
    assert_eq!(pk.a_query.len(), num_vars, "proving key shape mismatch");

    // h(x) coefficients (the FFT-heavy part)
    let h = qap::witness_map(matrices, z);

    // A = α + Σ zᵢ·uᵢ(τ) + r·δ
    let delta_g1 = pk.delta_g1.into_projective();
    let a = pk.vk.alpha_g1.into_projective() + msm(&pk.a_query, z) + delta_g1.mul_scalar(r);

    // B = β + Σ zᵢ·vᵢ(τ) + s·δ  (in G2, and again in G1 for C)
    let b_g2 = pk.vk.beta_g2.into_projective()
        + msm(&pk.b_g2_query, z)
        + pk.vk.delta_g2.into_projective().mul_scalar(s);
    let b_g1 = pk.beta_g1.into_projective() + msm(&pk.b_g1_query, z) + delta_g1.mul_scalar(s);

    // C = Σ_w zᵢ·lᵢ + Σ hᵢ·(τⁱZ(τ)/δ) + s·A + r·B₁ − rs·δ
    let witness = &z[matrices.num_instance..];
    let c = msm(&pk.l_query, witness) + msm(&pk.h_query, &h) + a.mul_scalar(s) + b_g1.mul_scalar(r)
        - delta_g1.mul_scalar(r * s);

    Proof {
        a: a.into_affine(),
        b: b_g2.into_affine(),
        c: c.into_affine(),
    }
}
