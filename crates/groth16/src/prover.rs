//! Groth16 prover.
//!
//! The hot path is organized around a [`ProverContext`]: the lowered
//! constraint matrices, the FFT domain (with its twiddle tables) and the
//! inverse of the coset vanishing constant, built once and reused across
//! proofs. [`create_proof_from_cs`] still works standalone — it builds a
//! throwaway context — but anything proving more than once against the same
//! circuit should hold a context (the `zkrownn-core` `ProverKit` does).
//!
//! Inside one proof, the witness map's three interpolation pipelines and
//! the five proof MSMs (`a_query`, `b_g2_query`, `b_g1_query`,
//! `l_query`+`h_query`) run concurrently via `std::thread::scope`.

use crate::keys::{Proof, ProvingKey};
use crate::qap;
use crate::setup::KeyConstants;
use std::time::{Duration, Instant};
use zkrownn_curves::msm::msm;
use zkrownn_curves::{G1Projective, G2Projective};
use zkrownn_ff::{Field, Fr};
use zkrownn_poly::Radix2Domain;
use zkrownn_r1cs::{Circuit, ProvingSynthesizer, R1csMatrices, SetupSynthesizer, SynthesisError};

/// Everything about a circuit the prover can compute once and reuse for
/// every proof: the lowered matrices, the FFT domain with its twiddle
/// tables, and `1/Z_H(g)` (the coset vanishing constant's inverse).
///
/// Rebuilding these per proof — `to_matrices()` clones every constraint,
/// the domain pays `O(m)` table multiplications — is pure overhead for
/// batch-proving workloads; a context amortizes it to zero.
pub struct ProverContext {
    matrices: R1csMatrices<Fr>,
    domain: Radix2Domain<Fr>,
    z_inv: Fr,
}

impl ProverContext {
    /// Builds a context from pre-lowered matrices.
    ///
    /// # Panics
    /// Panics if the circuit exceeds the field's 2-adic FFT capacity.
    pub fn new(matrices: R1csMatrices<Fr>) -> Self {
        let domain = qap::qap_domain(&matrices);
        Self::from_lowered(matrices, domain)
    }

    /// Builds a context from already-lowered matrices *and* their matching
    /// evaluation domain — the handoff from [`crate::SetupContext`], so an
    /// authority pays one lowering and one twiddle-table build for both key
    /// generation and the prover's cached state. The only fresh work here
    /// is a single field inversion for the coset vanishing constant.
    ///
    /// # Panics
    /// Panics (in debug builds) if `domain` is not the domain
    /// [`qap::qap_domain`] would build for `matrices`.
    pub fn from_lowered(matrices: R1csMatrices<Fr>, domain: Radix2Domain<Fr>) -> Self {
        debug_assert_eq!(
            domain.size,
            (matrices.a.len() + matrices.num_instance)
                .max(1)
                .next_power_of_two(),
            "domain does not match the matrices' QAP domain"
        );
        let z_inv = domain
            .vanishing_polynomial_on_coset()
            .inverse()
            .expect("coset avoids the domain");
        Self {
            matrices,
            domain,
            z_inv,
        }
    }

    /// Builds a context from a proving-mode synthesis (lowers its
    /// constraints once).
    pub fn for_cs(cs: &ProvingSynthesizer<Fr>) -> Self {
        Self::new(cs.to_matrices())
    }

    /// Builds a context by synthesizing `circuit` in (witness-free) setup
    /// mode — the right entry point when only the circuit shape is at hand,
    /// e.g. reconstructing a prover role from a shipped proving key.
    pub fn for_circuit<C: Circuit<Fr>>(circuit: &C) -> Result<Self, SynthesisError> {
        let mut cs = SetupSynthesizer::<Fr>::new();
        circuit.synthesize(&mut cs)?;
        Ok(Self::new(cs.to_matrices()))
    }

    /// The lowered constraint matrices.
    pub fn matrices(&self) -> &R1csMatrices<Fr> {
        &self.matrices
    }

    /// The cached evaluation domain (twiddle tables included).
    pub fn domain(&self) -> &Radix2Domain<Fr> {
        &self.domain
    }

    /// Quotient-polynomial coefficients for a full assignment (see
    /// [`qap::witness_map`]); uses the cached domain and vanishing constant.
    pub fn witness_map(&self, z: &[Fr]) -> Vec<Fr> {
        qap::witness_map_with(&self.matrices, &self.domain, self.z_inv, z)
    }
}

/// Wall-clock breakdown of one proof (for benches and telemetry).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProverTimings {
    /// The FFT-heavy quotient computation (`witness_map`).
    pub witness_map: Duration,
    /// The five multi-scalar multiplications.
    pub msm: Duration,
    /// End-to-end proof time (including assembly of `A`, `B`, `C`).
    pub total: Duration,
}

/// Synthesizes `circuit` in proving mode (evaluating every value closure
/// into the dense assignment) and creates a proof for it.
///
/// Fresh zero-knowledge randomness `(r, s)` is drawn from `rng`. Returns
/// [`SynthesisError::AssignmentMissing`] if the circuit was constructed
/// without its witness.
///
/// # Panics
/// Panics (in debug builds) if the synthesized system is unsatisfied or its
/// shape disagrees with the proving key.
pub fn create_proof<C: Circuit<Fr>, R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    circuit: &C,
    rng: &mut R,
) -> Result<Proof, SynthesisError> {
    let mut cs = ProvingSynthesizer::<Fr>::new();
    circuit.synthesize(&mut cs)?;
    Ok(create_proof_from_cs(pk, &cs, rng))
}

/// Creates a proof from an already-synthesized proving-mode system.
///
/// Builds a throwaway [`ProverContext`] — callers proving repeatedly
/// against one circuit should build the context once and use
/// [`create_proof_with_context`].
///
/// # Panics
/// Panics (in debug builds) if the constraint system is unsatisfied or its
/// shape disagrees with the proving key.
pub fn create_proof_from_cs<R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    cs: &ProvingSynthesizer<Fr>,
    rng: &mut R,
) -> Proof {
    let ctx = ProverContext::for_cs(cs);
    create_proof_with_context(pk, &ctx, cs, rng)
}

/// Creates a proof from a cached [`ProverContext`] and a proving-mode
/// synthesis of the same circuit — the amortized hot path.
///
/// # Panics
/// Panics (in debug builds) if the constraint system is unsatisfied or its
/// shape disagrees with the context or proving key.
pub fn create_proof_with_context<R: rand::Rng + ?Sized>(
    pk: &ProvingKey,
    ctx: &ProverContext,
    cs: &ProvingSynthesizer<Fr>,
    rng: &mut R,
) -> Proof {
    debug_assert_eq!(cs.is_satisfied(), Ok(()), "unsatisfied constraint system");
    debug_assert_eq!(
        (cs.num_instance_variables(), cs.num_witness_variables()),
        (ctx.matrices.num_instance, ctx.matrices.num_witness),
        "constraint system shape disagrees with the prover context"
    );
    let z = cs.full_assignment();
    let r = Fr::random(rng);
    let s = Fr::random(rng);
    prove_with(pk, &ctx.matrices, &ctx.domain, ctx.z_inv, &z, r, s).0
}

/// Deterministic-randomness variant (used by tests and the bench harness).
/// Builds a throwaway domain; see [`create_proof_with_context_and_randomness`]
/// for the cached equivalent.
pub fn create_proof_with_randomness(
    pk: &ProvingKey,
    matrices: &R1csMatrices<Fr>,
    z: &[Fr],
    r: Fr,
    s: Fr,
) -> Proof {
    let domain = qap::qap_domain(matrices);
    let z_inv = domain
        .vanishing_polynomial_on_coset()
        .inverse()
        .expect("coset avoids the domain");
    prove_with(pk, matrices, &domain, z_inv, z, r, s).0
}

/// Deterministic-randomness proof over a cached context (bit-identical to
/// [`create_proof_with_randomness`] for the same inputs).
pub fn create_proof_with_context_and_randomness(
    pk: &ProvingKey,
    ctx: &ProverContext,
    z: &[Fr],
    r: Fr,
    s: Fr,
) -> Proof {
    prove_with(pk, &ctx.matrices, &ctx.domain, ctx.z_inv, z, r, s).0
}

/// Instrumented variant returning the per-phase wall-clock breakdown
/// alongside the proof (the bench harness's `BENCH_prover.json` source).
pub fn create_proof_timed(
    pk: &ProvingKey,
    ctx: &ProverContext,
    z: &[Fr],
    r: Fr,
    s: Fr,
) -> (Proof, ProverTimings) {
    prove_with(pk, &ctx.matrices, &ctx.domain, ctx.z_inv, z, r, s)
}

/// The proof kernel: witness map, then the five MSMs concurrently, then
/// the `(r, s)`-randomized assembly of `(A, B, C)`.
fn prove_with(
    pk: &ProvingKey,
    matrices: &R1csMatrices<Fr>,
    domain: &Radix2Domain<Fr>,
    z_inv: Fr,
    z: &[Fr],
    r: Fr,
    s: Fr,
) -> (Proof, ProverTimings) {
    let start = Instant::now();
    let num_vars = matrices.num_instance + matrices.num_witness;
    assert_eq!(z.len(), num_vars, "assignment length mismatch");
    assert_eq!(pk.a_query.len(), num_vars, "proving key shape mismatch");

    // h(x) coefficients (the FFT-heavy part)
    let h = qap::witness_map_with(matrices, domain, z_inv, z);
    let witness_map_time = start.elapsed();

    // the four independent MSM tasks; each is itself window-parallel
    let msm_start = Instant::now();
    let witness = &z[matrices.num_instance..];
    let mut a_sum = G1Projective::identity();
    let mut b_g2_sum = G2Projective::identity();
    let mut b_g1_sum = G1Projective::identity();
    let lh_sum = std::thread::scope(|scope| {
        scope.spawn(|| a_sum = msm(&pk.a_query, z));
        scope.spawn(|| b_g2_sum = msm(&pk.b_g2_query, z));
        scope.spawn(|| b_g1_sum = msm(&pk.b_g1_query, z));
        msm(&pk.l_query, witness) + msm(&pk.h_query, &h)
    });
    let msm_time = msm_start.elapsed();

    let constants = KeyConstants {
        alpha_g1: pk.vk.alpha_g1,
        beta_g1: pk.beta_g1,
        delta_g1: pk.delta_g1,
        beta_g2: pk.vk.beta_g2,
        gamma_g2: pk.vk.gamma_g2,
        delta_g2: pk.vk.delta_g2,
    };
    let proof = assemble_proof(
        &constants,
        &ProofSums {
            a_sum,
            b_g1_sum,
            b_g2_sum,
            lh_sum,
        },
        r,
        s,
    );
    let timings = ProverTimings {
        witness_map: witness_map_time,
        msm: msm_time,
        total: start.elapsed(),
    };
    (proof, timings)
}

/// The four MSM partial sums a proof is assembled from.
///
/// `Σ zᵢ·uᵢ(τ)` (G1), `Σ zᵢ·vᵢ(τ)` in G1 and G2, and the combined
/// `L + H` sum. How the sums were produced — monolithic MSMs over
/// in-memory queries or chunk-accumulated streams out of a key store —
/// is invisible here: MSM partial sums add up group-exactly, so both
/// paths hand [`assemble_proof`] the same group elements.
#[derive(Clone, Copy, Debug)]
pub struct ProofSums {
    /// `Σ zᵢ·uᵢ(τ)` over the full assignment (A-query MSM).
    pub a_sum: G1Projective,
    /// `Σ zᵢ·vᵢ(τ)` in G1 (B-G1-query MSM).
    pub b_g1_sum: G1Projective,
    /// `Σ zᵢ·vᵢ(τ)` in G2 (B-G2-query MSM).
    pub b_g2_sum: G2Projective,
    /// `Σ_w zᵢ·lᵢ + Σ hᵢ·(τⁱZ(τ)/δ)` (L-query + H-query MSMs).
    pub lh_sum: G1Projective,
}

/// The `(r, s)`-randomized assembly of `(A, B, C)` from the MSM partial
/// sums and the key's fixed elements — the single final step shared by the
/// in-memory prover and the store-backed streaming prover, so both emit
/// byte-identical proofs for identical sums and randomness.
pub fn assemble_proof(constants: &KeyConstants, sums: &ProofSums, r: Fr, s: Fr) -> Proof {
    // A = α + Σ zᵢ·uᵢ(τ) + r·δ
    let delta_g1 = constants.delta_g1.into_projective();
    let a = constants.alpha_g1.into_projective() + sums.a_sum + delta_g1.mul_scalar(r);

    // B = β + Σ zᵢ·vᵢ(τ) + s·δ  (in G2, and again in G1 for C)
    let b_g2 = constants.beta_g2.into_projective()
        + sums.b_g2_sum
        + constants.delta_g2.into_projective().mul_scalar(s);
    let b_g1 = constants.beta_g1.into_projective() + sums.b_g1_sum + delta_g1.mul_scalar(s);

    // C = Σ_w zᵢ·lᵢ + Σ hᵢ·(τⁱZ(τ)/δ) + s·A + r·B₁ − rs·δ
    let c = sums.lh_sum + a.mul_scalar(s) + b_g1.mul_scalar(r) - delta_g1.mul_scalar(r * s);

    Proof {
        a: a.into_affine(),
        b: b_g2.into_affine(),
        c: c.into_affine(),
    }
}
