//! Groth16 verifier.
//!
//! Checks `e(A, B) = e(α, β) · e(Σ xᵢ·γ_abcᵢ, γ) · e(C, δ)` with a single
//! product of three Miller loops and one final exponentiation. This is the
//! millisecond-scale, publicly-runnable step that the paper's third-party
//! verifiers execute.

use crate::keys::{PreparedVerifyingKey, Proof, VerifyingKey};
use alloc::vec::Vec;
use zkrownn_curves::msm::msm;
use zkrownn_curves::G1Projective;
use zkrownn_ff::Fr;
use zkrownn_pairing::{multi_pairing, G2Prepared};

/// Errors returned by proof verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationError {
    /// The number of public inputs does not match the verifying key.
    InputLengthMismatch {
        /// Inputs the key expects (excluding the leading constant 1).
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The pairing equation does not hold.
    InvalidProof,
}

impl core::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InputLengthMismatch { expected, got } => {
                write!(f, "expected {expected} public inputs, got {got}")
            }
            Self::InvalidProof => write!(f, "pairing check failed"),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for VerificationError {}

/// Folds a public-input vector into the instance commitment
/// `γ_abc[0] + Σ xᵢ·γ_abc[i+1]` — the MSM half of verification.
///
/// Many claims against the *same* statement share this point; compute it
/// once and reuse it with [`verify_proof_with_prepared_inputs`] or
/// [`verify_proofs_batch_prepared`], paying only the pairing work per
/// proof. `public_inputs` excludes the leading constant 1.
pub fn prepare_inputs(
    pvk: &PreparedVerifyingKey,
    public_inputs: &[Fr],
) -> Result<PreparedInputs, VerificationError> {
    if public_inputs.len() + 1 != pvk.gamma_abc_g1.len() {
        return Err(VerificationError::InputLengthMismatch {
            expected: pvk.gamma_abc_g1.len() - 1,
            got: public_inputs.len(),
        });
    }
    Ok(PreparedInputs {
        acc: pvk.gamma_abc_g1[0].into_projective() + msm(&pvk.gamma_abc_g1[1..], public_inputs),
    })
}

/// A public-input vector pre-folded into its instance commitment (see
/// [`prepare_inputs`]). Opaque so it can only come from a length-checked
/// preparation.
#[derive(Clone, Debug)]
pub struct PreparedInputs {
    acc: G1Projective,
}

impl PreparedInputs {
    /// The committed instance point `γ_abc[0] + Σ xᵢ·γ_abc[i+1]`.
    pub fn commitment(&self) -> G1Projective {
        self.acc
    }
}

/// Verifies a proof against prepared verification material and a
/// pre-folded instance commitment — the per-proof cost is pairings only.
pub fn verify_proof_with_prepared_inputs(
    pvk: &PreparedVerifyingKey,
    proof: &Proof,
    inputs: &PreparedInputs,
) -> Result<(), VerificationError> {
    // e(A, B) · e(−acc, γ) · e(−C, δ) == e(α, β)
    let lhs = multi_pairing(&[
        (proof.a, G2Prepared::from(proof.b)),
        (inputs.acc.into_affine().neg(), pvk.gamma_prepared.clone()),
        (proof.c.neg(), pvk.delta_prepared.clone()),
    ]);
    if lhs == pvk.alpha_beta {
        Ok(())
    } else {
        Err(VerificationError::InvalidProof)
    }
}

/// Verifies a proof against prepared verification material.
///
/// `public_inputs` excludes the leading constant 1.
pub fn verify_proof_prepared(
    pvk: &PreparedVerifyingKey,
    proof: &Proof,
    public_inputs: &[Fr],
) -> Result<(), VerificationError> {
    let inputs = prepare_inputs(pvk, public_inputs)?;
    verify_proof_with_prepared_inputs(pvk, proof, &inputs)
}

/// Verifies a proof against a raw verifying key (prepares it internally).
pub fn verify_proof(
    vk: &VerifyingKey,
    proof: &Proof,
    public_inputs: &[Fr],
) -> Result<(), VerificationError> {
    verify_proof_prepared(&vk.prepare(), proof, public_inputs)
}

/// Batch verification of many proofs under one verifying key.
///
/// Takes a random linear combination of the individual pairing equations
/// (coefficients from `rng`), so all `n` proofs are checked with `2n + 2`
/// Miller loops and a single final exponentiation instead of `3n` loops and
/// `n` exponentiations. A batch that fails may contain any number of bad
/// proofs; fall back to individual verification to locate them.
pub fn verify_proofs_batch<R: rand::Rng + ?Sized>(
    pvk: &PreparedVerifyingKey,
    batch: &[(Proof, Vec<Fr>)],
    rng: &mut R,
) -> Result<(), VerificationError> {
    let prepared = batch
        .iter()
        .map(|(proof, inputs)| Ok((proof.clone(), prepare_inputs(pvk, inputs)?)))
        .collect::<Result<Vec<_>, _>>()?;
    verify_proofs_batch_prepared(pvk, &prepared, rng)
}

/// [`verify_proofs_batch`] over pre-folded instance commitments — claims
/// that share a statement share the (already paid) input MSM, so the
/// marginal cost per proof is two Miller loops and two G1 scalar muls.
pub fn verify_proofs_batch_prepared<R: rand::Rng + ?Sized>(
    pvk: &PreparedVerifyingKey,
    batch: &[(Proof, PreparedInputs)],
    rng: &mut R,
) -> Result<(), VerificationError> {
    use zkrownn_ff::{Field, PrimeField};
    if batch.is_empty() {
        return Ok(());
    }
    let mut pairs = Vec::with_capacity(batch.len() + 2);
    let mut acc_gamma = G1Projective::identity();
    let mut acc_delta = G1Projective::identity();
    let mut r_sum = Fr::zero();
    for (proof, inputs) in batch {
        let r = Fr::random(rng);
        r_sum += r;
        // e(r·A, B)
        pairs.push((
            proof.a.mul_scalar(r).into_affine(),
            G2Prepared::from(proof.b),
        ));
        // accumulate r·(γ_abc-combination) and r·C
        acc_gamma += inputs.acc.mul_scalar(r);
        acc_delta += proof.c.mul_scalar(r);
    }
    pairs.push((acc_gamma.neg().into_affine(), pvk.gamma_prepared.clone()));
    pairs.push((acc_delta.neg().into_affine(), pvk.delta_prepared.clone()));
    let lhs = multi_pairing(&pairs);
    if lhs == pvk.alpha_beta.pow(&r_sum.into_bigint().0) {
        Ok(())
    } else {
        Err(VerificationError::InvalidProof)
    }
}
