//! # zkrownn-groth16 — the Groth16 zkSNARK over BN254
//!
//! A from-scratch implementation of the proof system the paper builds on
//! (the same one libsnark provides): circuit-specific trusted [`setup`],
//! a [`prover`] with constant-size (128-byte) proofs, and a millisecond
//! [`verifier`]. The R1CS→QAP reduction follows libsnark's instance-padding
//! construction.
//!
//! Both [`generate_parameters`] and [`create_proof`] take an
//! `impl Circuit<Fr>`: setup drives it through the witness-free
//! `SetupSynthesizer` (no value closure is ever evaluated), proving through
//! the `ProvingSynthesizer` (dense assignment) — one circuit definition,
//! two modes, structurally identical by construction.
//!
//! ```
//! use zkrownn_groth16::{generate_parameters, create_proof, verify_proof};
//! use zkrownn_r1cs::{assignment, Circuit, ConstraintSystem, SynthesisError};
//! use zkrownn_ff::{Field, Fr};
//! use rand::SeedableRng;
//!
//! // prove knowledge of a factorization of n without revealing it
//! struct Factors { n: u64, pq: Option<(u64, u64)> }
//! impl Circuit<Fr> for Factors {
//!     type Output = ();
//!     fn synthesize<CS: ConstraintSystem<Fr>>(
//!         &self,
//!         cs: &mut CS,
//!     ) -> Result<(), SynthesisError> {
//!         let n = cs.alloc_instance(|| Ok(Fr::from_u64(self.n)))?;
//!         let pq = self.pq;
//!         let p = cs.alloc_witness(|| assignment(pq.map(|(p, _)| Fr::from_u64(p))))?;
//!         let q = cs.alloc_witness(|| assignment(pq.map(|(_, q)| Fr::from_u64(q))))?;
//!         cs.enforce(p.into(), q.into(), n.into());
//!         Ok(())
//!     }
//! }
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // the setup side needs no witness at all…
//! let pk = generate_parameters(&Factors { n: 35, pq: None }, &mut rng)?;
//! // …the proving side supplies it
//! let proof = create_proof(&pk, &Factors { n: 35, pq: Some((5, 7)) }, &mut rng)?;
//! assert!(verify_proof(&pk.vk, &proof, &[Fr::from_u64(35)]).is_ok());
//! assert!(verify_proof(&pk.vk, &proof, &[Fr::from_u64(36)]).is_err());
//! # Ok::<(), zkrownn_r1cs::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

pub mod keys;
#[cfg(feature = "std")]
pub mod prover;
#[cfg(feature = "std")]
pub mod qap;
#[cfg(feature = "std")]
pub mod setup;
pub mod verifier;

pub use keys::{DecodeError, PreparedVerifyingKey, Proof, ProvingKey, VerifyingKey};
#[cfg(feature = "std")]
pub use prover::{
    assemble_proof, create_proof, create_proof_from_cs, create_proof_timed,
    create_proof_with_context, create_proof_with_context_and_randomness,
    create_proof_with_randomness, ProofSums, ProverContext, ProverTimings,
};
#[cfg(feature = "std")]
pub use setup::{
    generate_parameters, generate_parameters_from_matrices, generate_parameters_from_matrices_with,
    generate_parameters_with, KeyConstants, KeyFamily, KeySink, SetupContext, SetupTimings,
    ToxicWaste,
};
pub use verifier::{
    prepare_inputs, verify_proof, verify_proof_prepared, verify_proof_with_prepared_inputs,
    verify_proofs_batch, verify_proofs_batch_prepared, PreparedInputs, VerificationError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_ff::{Field, Fr};
    use zkrownn_r1cs::{
        assignment, Circuit, ConstraintSystem, LinearCombination, ProvingSynthesizer,
        SynthesisError, Variable,
    };

    /// A toy circuit: prove knowledge of x with x³ + x + 5 = y (y public).
    /// (The classic "cubic" example from the Pinocchio/Groth16 literature.)
    struct Cubic {
        /// The public evaluation y.
        y: u64,
        /// The witness x (absent on the setup side).
        x: Option<u64>,
    }

    impl Circuit<Fr> for Cubic {
        type Output = ();
        fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
            let y = cs.alloc_instance(|| Ok(Fr::from_u64(self.y)))?;
            let xv = self.x;
            let x = cs.alloc_witness(|| assignment(xv.map(Fr::from_u64)))?;
            let x2 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x))))?;
            let x3 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x * x))))?;
            cs.enforce(x.into(), x.into(), x2.into());
            cs.enforce(x2.into(), x.into(), x3.into());
            // (x3 + x + 5) * 1 = y
            let lhs = LinearCombination::from(x3).add_term(Fr::one(), x)
                + LinearCombination::constant(Fr::from_u64(5));
            cs.enforce(lhs, LinearCombination::constant(Fr::one()), y.into());
            Ok(())
        }
    }

    fn cubic(x_val: u64) -> Cubic {
        Cubic {
            y: x_val * x_val * x_val + x_val + 5,
            x: Some(x_val),
        }
    }

    #[test]
    fn prove_and_verify_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(131);
        // the setup side runs with no witness at all
        let pk = generate_parameters(
            &Cubic {
                y: 3 * 3 * 3 + 3 + 5,
                x: None,
            },
            &mut rng,
        )
        .unwrap();
        let proof = create_proof(&pk, &cubic(3), &mut rng).unwrap();
        let y = Fr::from_u64(3 * 3 * 3 + 3 + 5);
        assert!(verify_proof(&pk.vk, &proof, &[y]).is_ok());
    }

    #[test]
    fn setup_never_evaluates_any_value_closure() {
        // A circuit whose closures all panic: setup must complete, because
        // the SetupSynthesizer never calls them.
        struct Bomb;
        impl Circuit<Fr> for Bomb {
            type Output = ();
            fn synthesize<CS: ConstraintSystem<Fr>>(
                &self,
                cs: &mut CS,
            ) -> Result<(), SynthesisError> {
                let y = cs.alloc_instance(|| panic!("instance closure evaluated at setup"))?;
                let x = cs.alloc_witness(|| panic!("witness closure evaluated at setup"))?;
                cs.enforce(x.into(), x.into(), y.into());
                Ok(())
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(144);
        let pk = generate_parameters(&Bomb, &mut rng).unwrap();
        assert_eq!(pk.a_query.len(), 3); // 1 + y + x
    }

    #[test]
    fn proving_without_witness_errors_instead_of_panicking() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(145);
        let shape = Cubic { y: 35, x: None };
        let pk = generate_parameters(&shape, &mut rng).unwrap();
        assert_eq!(
            create_proof(&pk, &shape, &mut rng),
            Err(SynthesisError::AssignmentMissing)
        );
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(132);
        let pk = generate_parameters(&cubic(3), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(3), &mut rng).unwrap();
        assert_eq!(
            verify_proof(&pk.vk, &proof, &[Fr::from_u64(999)]),
            Err(VerificationError::InvalidProof)
        );
    }

    #[test]
    fn input_length_mismatch_detected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(133);
        let pk = generate_parameters(&cubic(2), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(2), &mut rng).unwrap();
        assert!(matches!(
            verify_proof(&pk.vk, &proof, &[]),
            Err(VerificationError::InputLengthMismatch { .. })
        ));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(134);
        let pk = generate_parameters(&cubic(4), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(4), &mut rng).unwrap();
        let y = Fr::from_u64(4 * 4 * 4 + 4 + 5);
        // swap A and C (both G1): still valid points, wrong equation
        let tampered = Proof {
            a: proof.c,
            b: proof.b,
            c: proof.a,
        };
        assert!(verify_proof(&pk.vk, &tampered, &[y]).is_err());
    }

    #[test]
    fn proofs_are_randomized_but_both_verify() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(135);
        let pk = generate_parameters(&cubic(5), &mut rng).unwrap();
        let p1 = create_proof(&pk, &cubic(5), &mut rng).unwrap();
        let p2 = create_proof(&pk, &cubic(5), &mut rng).unwrap();
        assert_ne!(p1, p2, "zero-knowledge randomization");
        let y = Fr::from_u64(5 * 5 * 5 + 5 + 5);
        assert!(verify_proof(&pk.vk, &p1, &[y]).is_ok());
        assert!(verify_proof(&pk.vk, &p2, &[y]).is_ok());
    }

    #[test]
    fn proof_serialization_roundtrip_is_128_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(136);
        let pk = generate_parameters(&cubic(6), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(6), &mut rng).unwrap();
        let bytes = proof.to_bytes();
        assert_eq!(bytes.len(), Proof::SIZE);
        assert_eq!(Proof::from_bytes(&bytes), Ok(proof));
    }

    #[test]
    fn vk_serialization_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(137);
        let pk = generate_parameters(&cubic(2), &mut rng).unwrap();
        let bytes = pk.vk.to_bytes();
        assert_eq!(bytes.len(), pk.vk.serialized_size());
        assert_eq!(VerifyingKey::from_bytes(&bytes), Ok(pk.vk.clone()));
    }

    #[test]
    fn pk_serialization_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(138);
        let pk = generate_parameters(&cubic(2), &mut rng).unwrap();
        let bytes = pk.to_bytes();
        assert_eq!(bytes.len(), pk.serialized_size());
        assert_eq!(ProvingKey::from_bytes(&bytes), Ok(pk.clone()));
    }

    #[test]
    fn serialized_size_is_consistent_for_all_artifacts() {
        // `to_bytes().len() == serialized_size()` for the proof and both
        // keys, before and after a decode round-trip.
        let mut rng = rand::rngs::StdRng::seed_from_u64(141);
        let pk = generate_parameters(&cubic(5), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(5), &mut rng).unwrap();

        assert_eq!(proof.to_bytes().len(), proof.serialized_size());
        assert_eq!(pk.vk.to_bytes().len(), pk.vk.serialized_size());
        assert_eq!(pk.to_bytes().len(), pk.serialized_size());

        let proof2 = Proof::from_bytes(&proof.to_bytes()).unwrap();
        let vk2 = VerifyingKey::from_bytes(&pk.vk.to_bytes()).unwrap();
        let pk2 = ProvingKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(proof2.to_bytes().len(), proof2.serialized_size());
        assert_eq!(vk2.to_bytes().len(), vk2.serialized_size());
        assert_eq!(pk2.to_bytes().len(), pk2.serialized_size());
    }

    #[test]
    fn decode_errors_are_specific() {
        use zkrownn_curves::PointDecodeError;
        let mut rng = rand::rngs::StdRng::seed_from_u64(142);
        let pk = generate_parameters(&cubic(3), &mut rng).unwrap();
        let proof = create_proof(&pk, &cubic(3), &mut rng).unwrap();

        // truncation
        let bytes = proof.to_bytes();
        assert_eq!(
            Proof::from_bytes(&bytes[..100]),
            Err(DecodeError::LengthMismatch {
                expected: Proof::SIZE,
                got: 100
            })
        );
        assert_eq!(
            VerifyingKey::from_bytes(&[0u8; 3]),
            Err(DecodeError::Truncated { needed: 8, got: 3 })
        );

        // a proof whose B element is replaced by a valid-length chunk of
        // garbage fails with a point error at offset 32
        let mut bad = bytes.clone();
        bad[32..96].copy_from_slice(&[0xff; 64]);
        match Proof::from_bytes(&bad) {
            Err(DecodeError::Point { offset: 32, .. }) => {}
            other => panic!("expected point error at offset 32, got {other:?}"),
        }

        // a non-canonical infinity flag on A is named precisely
        let mut inf = bytes.clone();
        inf[31] = 0x80; // infinity flag, but x-limbs are non-zero
        assert_eq!(
            Proof::from_bytes(&inf),
            Err(DecodeError::Point {
                offset: 0,
                source: PointDecodeError::NonCanonicalInfinity
            })
        );

        // trailing bytes on a proving key are a length mismatch
        let mut pk_bytes = pk.to_bytes();
        let expected = pk_bytes.len();
        pk_bytes.push(0);
        assert_eq!(
            ProvingKey::from_bytes(&pk_bytes),
            Err(DecodeError::LengthMismatch {
                expected,
                got: expected + 1
            })
        );
    }

    #[test]
    fn hostile_lengths_error_instead_of_panicking() {
        // a VK header claiming 2^60 commitment points must not overflow the
        // size arithmetic or abort on allocation — just report a mismatch
        let mut vk_bytes = vec![0u8; 16];
        vk_bytes[0..8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            VerifyingKey::from_bytes(&vk_bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));

        // same for a PK whose query-length headers are absurd
        let mut rng = rand::rngs::StdRng::seed_from_u64(143);
        let pk = generate_parameters(&cubic(2), &mut rng).unwrap();
        let mut pk_bytes = pk.to_bytes();
        pk_bytes[0..8].copy_from_slice(&(1u64 << 60).to_le_bytes()); // a_query len
        assert!(ProvingKey::from_bytes(&pk_bytes).is_err());
        pk_bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ProvingKey::from_bytes(&pk_bytes).is_err());
    }

    #[test]
    fn batch_verification_accepts_valid_and_rejects_corrupt() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(140);
        let pk = generate_parameters(&cubic(3), &mut rng).unwrap();
        let pvk = pk.vk.prepare();
        let y = Fr::from_u64(3 * 3 * 3 + 3 + 5);
        let batch: Vec<(Proof, Vec<Fr>)> = (0..4)
            .map(|_| (create_proof(&pk, &cubic(3), &mut rng).unwrap(), vec![y]))
            .collect();
        assert!(verify_proofs_batch(&pvk, &batch, &mut rng).is_ok());
        // one corrupted proof poisons the batch
        let mut bad = batch.clone();
        bad[2].0.a = bad[0].0.c; // valid point, wrong proof element
        assert!(verify_proofs_batch(&pvk, &bad, &mut rng).is_err());
        // and a wrong public input does too
        let mut bad2 = batch.clone();
        bad2[1].1 = vec![Fr::from_u64(999)];
        assert!(verify_proofs_batch(&pvk, &bad2, &mut rng).is_err());
        // empty batch is trivially fine
        assert!(verify_proofs_batch(&pvk, &[], &mut rng).is_ok());
    }

    #[test]
    fn deterministic_setup_is_reproducible() {
        let toxic = ToxicWaste {
            alpha: Fr::from_u64(11),
            beta: Fr::from_u64(12),
            gamma: Fr::from_u64(13),
            delta: Fr::from_u64(14),
            tau: Fr::from_u64(15),
        };
        // witness-free and witnessed shapes must yield identical keys
        let pk1 = generate_parameters_with(&Cubic { y: 35, x: None }, &toxic).unwrap();
        let pk2 = generate_parameters_with(&cubic(3), &toxic).unwrap();
        assert_eq!(pk1, pk2);
    }

    #[test]
    fn streaming_keygen_reassembles_the_in_memory_key() {
        use setup::{KeyConstants, KeyFamily, KeySink};
        use zkrownn_curves::{G1Affine, G2Affine, MemoryBudget};

        /// A sink that just collects everything back into vectors.
        #[derive(Default)]
        struct Collector {
            constants: Option<KeyConstants>,
            families: Vec<(KeyFamily, Vec<G1Affine>, Vec<G2Affine>)>,
            announced: usize,
        }
        impl KeySink for Collector {
            type Error = core::convert::Infallible;
            fn constants(&mut self, c: &KeyConstants) -> Result<(), Self::Error> {
                self.constants = Some(*c);
                Ok(())
            }
            fn begin_family(&mut self, family: KeyFamily, len: usize) -> Result<(), Self::Error> {
                self.families.push((family, Vec::new(), Vec::new()));
                self.announced = len;
                Ok(())
            }
            fn g1_chunk(&mut self, points: &[G1Affine]) -> Result<(), Self::Error> {
                self.families
                    .last_mut()
                    .unwrap()
                    .1
                    .extend_from_slice(points);
                Ok(())
            }
            fn g2_chunk(&mut self, points: &[G2Affine]) -> Result<(), Self::Error> {
                self.families
                    .last_mut()
                    .unwrap()
                    .2
                    .extend_from_slice(points);
                Ok(())
            }
            fn end_family(&mut self, family: KeyFamily) -> Result<(), Self::Error> {
                let last = self.families.last().unwrap();
                assert_eq!(last.0, family);
                let got = if family.is_g2() {
                    last.2.len()
                } else {
                    last.1.len()
                };
                assert_eq!(got, self.announced, "family {:?} length", family);
                Ok(())
            }
        }

        let toxic = ToxicWaste {
            alpha: Fr::from_u64(21),
            beta: Fr::from_u64(22),
            gamma: Fr::from_u64(23),
            delta: Fr::from_u64(24),
            tau: Fr::from_u64(25),
        };
        let ctx = SetupContext::for_circuit(&Cubic { y: 35, x: None }).unwrap();
        let pk = ctx.generate_with(&toxic);
        // a tiny budget forces many chunks (MIN_CHUNK floor: still ≥ 2
        // chunks for any family longer than 256)
        let mut sink = Collector::default();
        let timings = ctx
            .generate_streaming_with(&toxic, &mut sink, MemoryBudget::from_bytes(1))
            .unwrap();
        assert!(timings.total >= timings.commit);

        let c = sink.constants.expect("constants emitted first");
        assert_eq!(c.alpha_g1, pk.vk.alpha_g1);
        assert_eq!(c.beta_g1, pk.beta_g1);
        assert_eq!(c.delta_g1, pk.delta_g1);
        assert_eq!(c.beta_g2, pk.vk.beta_g2);
        assert_eq!(c.gamma_g2, pk.vk.gamma_g2);
        assert_eq!(c.delta_g2, pk.vk.delta_g2);
        let order: Vec<KeyFamily> = sink.families.iter().map(|f| f.0).collect();
        assert_eq!(order, KeyFamily::ALL.to_vec());
        for (family, g1, g2) in &sink.families {
            match family {
                KeyFamily::Ic => assert_eq!(g1, &pk.vk.gamma_abc_g1),
                KeyFamily::AQuery => assert_eq!(g1, &pk.a_query),
                KeyFamily::BG1Query => assert_eq!(g1, &pk.b_g1_query),
                KeyFamily::BG2Query => assert_eq!(g2, &pk.b_g2_query),
                KeyFamily::HQuery => assert_eq!(g1, &pk.h_query),
                KeyFamily::LQuery => assert_eq!(g1, &pk.l_query),
            }
        }
    }

    #[test]
    fn proof_with_instance_only_circuit() {
        // A circuit with no witness at all: 1 * y = y (tautology on input)
        let mut rng = rand::rngs::StdRng::seed_from_u64(139);
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let y = cs.alloc_instance(|| Ok(Fr::from_u64(9))).unwrap();
        cs.enforce(
            LinearCombination::constant(Fr::one()),
            LinearCombination::from(y),
            Variable::Instance(1).into(),
        );
        let pk = generate_parameters_from_matrices(&cs.to_matrices(), &mut rng);
        let proof = create_proof_from_cs(&pk, &cs, &mut rng);
        assert!(verify_proof(&pk.vk, &proof, &[Fr::from_u64(9)]).is_ok());
    }
}
