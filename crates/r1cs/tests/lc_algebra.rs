//! Property tests for the [`LinearCombination`] algebra: normalization via
//! eager [`LinearCombination::add_term`] merging and via
//! [`LinearCombination::compact`] must agree with evaluation semantics under
//! arbitrary assignments, and the usual algebraic laws must hold.

use proptest::prelude::*;
use zkrownn_ff::{Field, Fr, PrimeField};
use zkrownn_r1cs::{LinearCombination, Variable};

const VARS: usize = 6;

/// A small pool of variables, so random terms collide often enough to
/// exercise the merge paths.
fn var(idx: u8) -> Variable {
    match idx % VARS as u8 {
        0 => Variable::One,
        1 => Variable::Instance(1),
        2 => Variable::Instance(2),
        3 => Variable::Witness(0),
        4 => Variable::Witness(1),
        _ => Variable::Witness(7),
    }
}

/// Evaluation under a fixed pseudo-assignment (distinct odd values per
/// variable slot, so distinct combinations rarely collide).
fn eval(lc: &LinearCombination<Fr>) -> Fr {
    let value = |v: &Variable| match v {
        Variable::One => Fr::one(),
        Variable::Instance(i) => Fr::from_u64(3 + 2 * *i as u64),
        Variable::Witness(i) => Fr::from_u64(101 + 2 * *i as u64),
    };
    lc.0.iter()
        .fold(Fr::zero(), |acc, (v, c)| acc + value(v) * *c)
}

fn arb_term() -> impl Strategy<Value = (Variable, Fr)> {
    (any::<u8>(), -40i64..40).prop_map(|(v, c)| (var(v), Fr::from_i128(c as i128)))
}

fn arb_lc() -> impl Strategy<Value = LinearCombination<Fr>> {
    prop::collection::vec(arb_term(), 0..10).prop_map(|terms| {
        terms
            .into_iter()
            .fold(LinearCombination::zero(), |lc, (v, c)| lc.add_term(c, v))
    })
}

/// Is the representation normalized: no duplicate variables, no zero
/// coefficients?
fn is_normalized(lc: &LinearCombination<Fr>) -> bool {
    lc.0.iter().all(|(_, c)| !c.is_zero())
        && (0..lc.0.len()).all(|i| (i + 1..lc.0.len()).all(|j| lc.0[i].0 != lc.0[j].0))
}

proptest! {
    #[test]
    fn add_term_keeps_lc_normalized(terms in prop::collection::vec(arb_term(), 0..16)) {
        let built = terms
            .iter()
            .fold(LinearCombination::<Fr>::zero(), |lc, (v, c)| lc.add_term(*c, *v));
        prop_assert!(is_normalized(&built));
        // and agrees (semantically) with the lazy concatenate-then-compact path
        let concat = terms
            .iter()
            .fold(LinearCombination::<Fr>::zero(), |lc, (v, c)| {
                lc + LinearCombination::from(*v).scale(*c)
            });
        prop_assert_eq!(eval(&built), eval(&concat));
        prop_assert_eq!(built.compact(), concat.compact());
    }

    #[test]
    fn addition_is_associative_and_commutative((a, b, c) in (arb_lc(), arb_lc(), arb_lc())) {
        let ab_c = ((a.clone() + b.clone()) + c.clone()).compact();
        let a_bc = (a.clone() + (b.clone() + c.clone())).compact();
        prop_assert_eq!(ab_c, a_bc);
        let ab = (a.clone() + b.clone()).compact();
        let ba = (b + a).compact();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn scaling_distributes_over_addition((a, b, k) in (arb_lc(), arb_lc(), -40i64..40)) {
        let k = Fr::from_i128(k as i128);
        let scaled_sum = (a.clone() + b.clone()).scale(k).compact();
        let sum_scaled = (a.scale(k) + b.scale(k)).compact();
        prop_assert_eq!(scaled_sum, sum_scaled);
    }

    #[test]
    fn compact_is_idempotent_and_preserves_eval(a in arb_lc(), b in arb_lc()) {
        // a + b concatenates (possibly denormalized) — compacting once must
        // normalize, evaluate identically, and be a fixed point
        let raw = a + b;
        let once = raw.clone().compact();
        prop_assert!(is_normalized(&once));
        prop_assert_eq!(eval(&raw), eval(&once));
        prop_assert_eq!(once.clone().compact(), once);
    }

    #[test]
    fn subtraction_cancels(a in arb_lc()) {
        let diff = (a.clone() - a).compact();
        prop_assert!(diff.0.is_empty());
    }

    #[test]
    fn zero_coefficients_are_elided(a in arb_lc(), v in any::<u8>()) {
        // adding a zero term changes nothing
        let with_zero = a.clone().add_term(Fr::zero(), var(v));
        prop_assert_eq!(with_zero, a.clone());
        // scaling by zero collapses to the empty combination
        prop_assert!(a.scale(Fr::zero()).0.is_empty());
    }
}
