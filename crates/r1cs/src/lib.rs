//! # zkrownn-r1cs — rank-1 constraint systems
//!
//! The circuit representation consumed by the Groth16 backend: a list of
//! constraints `⟨A_j, z⟩ · ⟨B_j, z⟩ = ⟨C_j, z⟩` over the assignment vector
//! `z = (1, instance…, witness…)`.
//!
//! This mirrors the role xJsnark + libsnark's `protoboard` play in the
//! paper's stack: gadget code allocates variables, builds
//! [`LinearCombination`]s and calls [`ConstraintSystem::enforce`]. The same
//! builder runs in two situations: with real values (proving) and with
//! placeholder values (setup) — the constraint *structure* must not depend
//! on the assignment, which is what makes the generated circuit reusable.
//!
//! ```
//! use zkrownn_r1cs::{ConstraintSystem, LinearCombination};
//! use zkrownn_ff::{Field, Fr};
//! // prove knowledge of a factorization 6 = 2·3
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let six = cs.alloc_instance(Fr::from_u64(6));
//! let a = cs.alloc_witness(Fr::from_u64(2));
//! let b = cs.alloc_witness(Fr::from_u64(3));
//! cs.enforce(a.into(), b.into(), six.into());
//! assert!(cs.is_satisfied().is_ok());
//! ```

#![warn(missing_docs)]

use zkrownn_ff::PrimeField;

/// A variable in the constraint system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Variable {
    /// The constant 1 (index 0 of the instance block).
    One,
    /// `i`-th public-input variable (1-based column in the instance block).
    Instance(usize),
    /// `i`-th private witness variable.
    Witness(usize),
}

/// A sparse linear combination `Σ coeff·var`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinearCombination<F: PrimeField>(pub Vec<(Variable, F)>);

impl<F: PrimeField> LinearCombination<F> {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        Self(Vec::new())
    }

    /// The constant `c` (as `c · 1`).
    pub fn constant(c: F) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            Self(vec![(Variable::One, c)])
        }
    }

    /// Returns `self + coeff·var`.
    pub fn add_term(mut self, coeff: F, var: Variable) -> Self {
        if !coeff.is_zero() {
            self.0.push((var, coeff));
        }
        self
    }

    /// Returns `self · c`.
    pub fn scale(mut self, c: F) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        for (_, coeff) in self.0.iter_mut() {
            *coeff *= c;
        }
        self
    }

    /// Merges duplicate variables (keeps the representation compact when
    /// combinations are built incrementally).
    pub fn compact(mut self) -> Self {
        self.0.sort_by_key(|(v, _)| match v {
            Variable::One => (0usize, 0usize),
            Variable::Instance(i) => (1, *i),
            Variable::Witness(i) => (2, *i),
        });
        let mut out: Vec<(Variable, F)> = Vec::with_capacity(self.0.len());
        for (v, c) in self.0 {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        Self(out)
    }
}

impl<F: PrimeField> From<Variable> for LinearCombination<F> {
    fn from(v: Variable) -> Self {
        Self(vec![(v, F::one())])
    }
}

impl<F: PrimeField> core::ops::Add for LinearCombination<F> {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        self.0.extend(rhs.0);
        self
    }
}

impl<F: PrimeField> core::ops::Sub for LinearCombination<F> {
    type Output = Self;
    fn sub(mut self, rhs: Self) -> Self {
        for (v, c) in rhs.0 {
            self.0.push((v, -c));
        }
        self
    }
}

impl<F: PrimeField> core::ops::Neg for LinearCombination<F> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::zero() - self
    }
}

/// One R1CS constraint `⟨a, z⟩·⟨b, z⟩ = ⟨c, z⟩`.
#[derive(Clone, Debug)]
pub struct Constraint<F: PrimeField> {
    /// Left factor.
    pub a: LinearCombination<F>,
    /// Right factor.
    pub b: LinearCombination<F>,
    /// Product.
    pub c: LinearCombination<F>,
}

/// Column-indexed sparse matrices (the QAP front-end representation).
///
/// Columns are indices into `z = (1, instance…, witness…)`, so column 0 is
/// the constant, columns `1..num_instance` the public inputs, and the rest
/// the witness.
#[derive(Clone, Debug)]
pub struct R1csMatrices<F: PrimeField> {
    /// Rows of the A matrix.
    pub a: Vec<Vec<(usize, F)>>,
    /// Rows of the B matrix.
    pub b: Vec<Vec<(usize, F)>>,
    /// Rows of the C matrix.
    pub c: Vec<Vec<(usize, F)>>,
    /// Size of the instance block (including the leading 1).
    pub num_instance: usize,
    /// Number of witness variables.
    pub num_witness: usize,
}

/// A rank-1 constraint system with an assignment.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSystem<F: PrimeField> {
    instance: Vec<F>,
    witness: Vec<F>,
    constraints: Vec<Constraint<F>>,
}

impl<F: PrimeField> ConstraintSystem<F> {
    /// Creates an empty system (instance block starts with the constant 1).
    pub fn new() -> Self {
        Self {
            instance: vec![F::one()],
            witness: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Allocates a public-input variable with the given value.
    pub fn alloc_instance(&mut self, value: F) -> Variable {
        self.instance.push(value);
        Variable::Instance(self.instance.len() - 1)
    }

    /// Allocates a private witness variable with the given value.
    pub fn alloc_witness(&mut self, value: F) -> Variable {
        self.witness.push(value);
        Variable::Witness(self.witness.len() - 1)
    }

    /// Adds the constraint `⟨a, z⟩·⟨b, z⟩ = ⟨c, z⟩`.
    pub fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.constraints.push(Constraint {
            a: a.compact(),
            b: b.compact(),
            c: c.compact(),
        });
    }

    /// Value of a variable under the current assignment.
    pub fn value(&self, v: Variable) -> F {
        match v {
            Variable::One => F::one(),
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        }
    }

    /// Value of a linear combination under the current assignment.
    pub fn eval_lc(&self, lc: &LinearCombination<F>) -> F {
        lc.0.iter()
            .fold(F::zero(), |acc, (v, c)| acc + self.value(*v) * *c)
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Instance-block size (including the constant 1).
    pub fn num_instance_variables(&self) -> usize {
        self.instance.len()
    }

    /// Number of witness variables.
    pub fn num_witness_variables(&self) -> usize {
        self.witness.len()
    }

    /// The instance assignment (with the leading constant 1).
    pub fn instance_assignment(&self) -> &[F] {
        &self.instance
    }

    /// The witness assignment.
    pub fn witness_assignment(&self) -> &[F] {
        &self.witness
    }

    /// The full assignment `z = (1, instance…, witness…)`.
    pub fn full_assignment(&self) -> Vec<F> {
        let mut z = self.instance.clone();
        z.extend_from_slice(&self.witness);
        z
    }

    /// The constraints (for inspection and tests).
    pub fn constraints(&self) -> &[Constraint<F>] {
        &self.constraints
    }

    /// Checks satisfaction; on failure returns the index of the first
    /// violated constraint.
    pub fn is_satisfied(&self) -> Result<(), usize> {
        for (i, cstr) in self.constraints.iter().enumerate() {
            let a = self.eval_lc(&cstr.a);
            let b = self.eval_lc(&cstr.b);
            let c = self.eval_lc(&cstr.c);
            if a * b != c {
                return Err(i);
            }
        }
        Ok(())
    }

    fn column(&self, v: Variable) -> usize {
        match v {
            Variable::One => 0,
            Variable::Instance(i) => i,
            Variable::Witness(i) => self.instance.len() + i,
        }
    }

    /// Lowers the constraints to column-indexed sparse matrices.
    pub fn to_matrices(&self) -> R1csMatrices<F> {
        let lower = |lc: &LinearCombination<F>| -> Vec<(usize, F)> {
            lc.0.iter().map(|(v, c)| (self.column(*v), *c)).collect()
        };
        R1csMatrices {
            a: self.constraints.iter().map(|c| lower(&c.a)).collect(),
            b: self.constraints.iter().map(|c| lower(&c.b)).collect(),
            c: self.constraints.iter().map(|c| lower(&c.c)).collect(),
            num_instance: self.instance.len(),
            num_witness: self.witness.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::{Field, Fr};

    fn lc(v: Variable) -> LinearCombination<Fr> {
        v.into()
    }

    #[test]
    fn factorization_circuit_satisfied() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let prod = cs.alloc_instance(Fr::from_u64(35));
        let p = cs.alloc_witness(Fr::from_u64(5));
        let q = cs.alloc_witness(Fr::from_u64(7));
        cs.enforce(lc(p), lc(q), lc(prod));
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.num_constraints(), 1);
        assert_eq!(cs.num_instance_variables(), 2);
        assert_eq!(cs.num_witness_variables(), 2);
    }

    #[test]
    fn unsatisfied_constraint_reports_index() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let a = cs.alloc_witness(Fr::from_u64(2));
        let b = cs.alloc_witness(Fr::from_u64(2));
        cs.enforce(lc(a), lc(a), LinearCombination::constant(Fr::from_u64(4)));
        cs.enforce(lc(a), lc(b), LinearCombination::constant(Fr::from_u64(5)));
        assert_eq!(cs.is_satisfied(), Err(1));
    }

    #[test]
    fn linear_combination_arithmetic() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(3));
        let y = cs.alloc_witness(Fr::from_u64(4));
        // (2x + y - 1) should evaluate to 9
        let combo = LinearCombination::zero()
            .add_term(Fr::from_u64(2), x)
            .add_term(Fr::one(), y)
            + LinearCombination::constant(-Fr::one());
        assert_eq!(cs.eval_lc(&combo), Fr::from_u64(9));
        // and scaling by 3 gives 27
        assert_eq!(cs.eval_lc(&combo.scale(Fr::from_u64(3))), Fr::from_u64(27));
    }

    #[test]
    fn compact_merges_duplicates() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_u64(5));
        let combo = (LinearCombination::from(x) + LinearCombination::from(x)).compact();
        assert_eq!(combo.0.len(), 1);
        assert_eq!(cs.eval_lc(&combo), Fr::from_u64(10));
        // exact cancellation removes the term entirely
        let zero = (LinearCombination::<Fr>::from(x) - LinearCombination::from(x)).compact();
        assert!(zero.0.is_empty());
    }

    #[test]
    fn matrices_use_z_column_order() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let inst = cs.alloc_instance(Fr::from_u64(6));
        let w = cs.alloc_witness(Fr::from_u64(6));
        // w * 1 = inst
        cs.enforce(lc(w), LinearCombination::constant(Fr::one()), lc(inst));
        let m = cs.to_matrices();
        assert_eq!(m.num_instance, 2);
        assert_eq!(m.num_witness, 1);
        assert_eq!(m.a[0], vec![(2, Fr::one())]); // witness column = 1 + 1
        assert_eq!(m.b[0], vec![(0, Fr::one())]); // constant column
        assert_eq!(m.c[0], vec![(1, Fr::one())]); // instance column
    }

    #[test]
    fn structure_is_assignment_independent() {
        // The same builder with different values must give identical matrices
        // (this is what lets one circuit definition serve setup and proving).
        fn build(x: u64, y: u64) -> R1csMatrices<Fr> {
            let mut cs = ConstraintSystem::<Fr>::new();
            let a = cs.alloc_witness(Fr::from_u64(x));
            let b = cs.alloc_witness(Fr::from_u64(y));
            let out = cs.alloc_instance(Fr::from_u64(x * y));
            cs.enforce(lc(a), lc(b), lc(out));
            cs.to_matrices()
        }
        let m1 = build(3, 4);
        let m2 = build(100, 0);
        assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
    }
}
