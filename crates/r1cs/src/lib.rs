//! # zkrownn-r1cs — mode-aware rank-1 constraint synthesis
//!
//! The circuit representation consumed by the Groth16 backend: a list of
//! constraints `⟨A_j, z⟩ · ⟨B_j, z⟩ = ⟨C_j, z⟩` over the assignment vector
//! `z = (1, instance…, witness…)`.
//!
//! ZKROWNN's trusted setup is run by a party that holds *no* witness (the
//! trigger keys, projection matrix and signature stay with the model
//! owner), so the API separates circuit **structure** from witness
//! **assignment**:
//!
//! * a circuit is a type implementing [`Circuit`]: one `synthesize` method
//!   describing allocations and constraints, with assignment values behind
//!   `FnOnce` closures;
//! * a driver is a type implementing [`ConstraintSystem`], deciding what to
//!   do with each event. Three drivers ship with the crate:
//!
//! | driver | evaluates value closures? | produces |
//! |---|---|---|
//! | [`SetupSynthesizer`] | **never** | constraint matrices + optional shape trace ([`ShapeSink`]) |
//! | [`ProvingSynthesizer`] | always | matrices + the dense assignment `z` |
//! | [`CountingSynthesizer`] | never | constraint/variable counts, per-namespace density |
//!
//! Because the setup driver never calls a witness closure, "setup sees no
//! witness" is enforced by construction rather than by convention — a
//! closure that would panic on evaluation is perfectly fine to synthesize
//! in setup or counting mode (and tests assert exactly that). The same
//! [`Circuit`] value drives every mode, so the structure agreeing between
//! setup and proving is guaranteed by having only one description of it.
//!
//! ```
//! use zkrownn_r1cs::{
//!     assignment, Circuit, ConstraintSystem, CountingSynthesizer, LinearCombination,
//!     ProvingSynthesizer, SetupSynthesizer, SynthesisError,
//! };
//! use zkrownn_ff::{Field, Fr, PrimeField};
//!
//! /// Prove knowledge of a factorization `n = p·q`.
//! struct Factors {
//!     n: u64,
//!     pq: Option<(u64, u64)>, // the witness — absent on the setup side
//! }
//!
//! impl Circuit<Fr> for Factors {
//!     type Output = ();
//!     fn synthesize<CS: ConstraintSystem<Fr>>(
//!         &self,
//!         cs: &mut CS,
//!     ) -> Result<(), SynthesisError> {
//!         let n = cs.alloc_instance(|| Ok(Fr::from_u64(self.n)))?;
//!         let pq = self.pq;
//!         let p = cs.alloc_witness(|| assignment(pq.map(|(p, _)| Fr::from_u64(p))))?;
//!         let q = cs.alloc_witness(|| assignment(pq.map(|(_, q)| Fr::from_u64(q))))?;
//!         cs.enforce(p.into(), q.into(), n.into());
//!         Ok(())
//!     }
//! }
//!
//! // the authority synthesizes the shape without ever seeing a witness…
//! let mut setup = SetupSynthesizer::<Fr>::new();
//! Factors { n: 35, pq: None }.synthesize(&mut setup)?;
//! let matrices = setup.to_matrices();
//!
//! // …the prover synthesizes the same circuit with the dense assignment…
//! let mut prove = ProvingSynthesizer::<Fr>::new();
//! Factors { n: 35, pq: Some((5, 7)) }.synthesize(&mut prove)?;
//! assert!(prove.is_satisfied().is_ok());
//!
//! // …and both agree on the structure, as does the diagnostics driver.
//! let mut count = CountingSynthesizer::<Fr>::new();
//! Factors { n: 35, pq: None }.synthesize(&mut count)?;
//! assert_eq!(matrices.a.len(), count.num_constraints());
//! assert_eq!(prove.num_constraints(), count.num_constraints());
//! # Ok::<(), zkrownn_r1cs::SynthesisError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

use alloc::collections::BTreeMap;
use alloc::format;
use alloc::string::String;
use alloc::vec;
use alloc::vec::Vec;
use zkrownn_ff::PrimeField;

/// A variable in the constraint system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Variable {
    /// The constant 1 (index 0 of the instance block).
    One,
    /// `i`-th public-input variable (1-based column in the instance block).
    Instance(usize),
    /// `i`-th private witness variable.
    Witness(usize),
}

impl Variable {
    fn sort_key(&self) -> (u8, usize) {
        match self {
            Variable::One => (0, 0),
            Variable::Instance(i) => (1, *i),
            Variable::Witness(i) => (2, *i),
        }
    }
}

/// A sparse linear combination `Σ coeff·var`.
///
/// [`LinearCombination::add_term`] merges duplicate variables eagerly (and
/// drops terms whose coefficient cancels to zero), so combinations built
/// term-by-term stay normalized. The `+`/`-` operators concatenate for
/// speed; every driver normalizes at [`ConstraintSystem::enforce`] via
/// [`LinearCombination::compact`], so the lowered matrices are canonical
/// either way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinearCombination<F: PrimeField>(pub Vec<(Variable, F)>);

impl<F: PrimeField> LinearCombination<F> {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        Self(Vec::new())
    }

    /// The constant `c` (as `c · 1`).
    pub fn constant(c: F) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            Self(vec![(Variable::One, c)])
        }
    }

    /// Returns `self + coeff·var`, merging eagerly: if `var` already has a
    /// term the coefficients are added, and a term whose coefficient
    /// becomes zero is elided.
    pub fn add_term(mut self, coeff: F, var: Variable) -> Self {
        if coeff.is_zero() {
            return self;
        }
        if let Some(pos) = self.0.iter().position(|(v, _)| *v == var) {
            self.0[pos].1 += coeff;
            if self.0[pos].1.is_zero() {
                self.0.remove(pos);
            }
        } else {
            self.0.push((var, coeff));
        }
        self
    }

    /// Returns `self · c`.
    pub fn scale(mut self, c: F) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        for (_, coeff) in self.0.iter_mut() {
            *coeff *= c;
        }
        self
    }

    /// Sorts by variable, merges duplicates and drops zero coefficients —
    /// the canonical form every driver applies at `enforce`.
    pub fn compact(mut self) -> Self {
        self.0.sort_by_key(|(v, _)| v.sort_key());
        let mut out: Vec<(Variable, F)> = Vec::with_capacity(self.0.len());
        for (v, c) in self.0 {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        Self(out)
    }
}

impl<F: PrimeField> From<Variable> for LinearCombination<F> {
    fn from(v: Variable) -> Self {
        Self(vec![(v, F::one())])
    }
}

impl<F: PrimeField> core::ops::Add for LinearCombination<F> {
    type Output = Self;
    fn add(mut self, rhs: Self) -> Self {
        self.0.extend(rhs.0);
        self
    }
}

impl<F: PrimeField> core::ops::Sub for LinearCombination<F> {
    type Output = Self;
    fn sub(mut self, rhs: Self) -> Self {
        for (v, c) in rhs.0 {
            self.0.push((v, -c));
        }
        self
    }
}

impl<F: PrimeField> core::ops::Neg for LinearCombination<F> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::zero() - self
    }
}

/// One R1CS constraint `⟨a, z⟩·⟨b, z⟩ = ⟨c, z⟩`.
#[derive(Clone, Debug)]
pub struct Constraint<F: PrimeField> {
    /// Left factor.
    pub a: LinearCombination<F>,
    /// Right factor.
    pub b: LinearCombination<F>,
    /// Product.
    pub c: LinearCombination<F>,
}

/// Column-indexed sparse matrices (the QAP front-end representation).
///
/// Columns are indices into `z = (1, instance…, witness…)`, so column 0 is
/// the constant, columns `1..num_instance` the public inputs, and the rest
/// the witness.
#[derive(Clone, Debug)]
pub struct R1csMatrices<F: PrimeField> {
    /// Rows of the A matrix.
    pub a: Vec<Vec<(usize, F)>>,
    /// Rows of the B matrix.
    pub b: Vec<Vec<(usize, F)>>,
    /// Rows of the C matrix.
    pub c: Vec<Vec<(usize, F)>>,
    /// Size of the instance block (including the leading 1).
    pub num_instance: usize,
    /// Number of witness variables.
    pub num_witness: usize,
}

fn lower_constraints<F: PrimeField>(
    constraints: &[Constraint<F>],
    num_instance: usize,
    num_witness: usize,
) -> R1csMatrices<F> {
    let column = |v: Variable| -> usize {
        match v {
            Variable::One => 0,
            Variable::Instance(i) => i,
            Variable::Witness(i) => num_instance + i,
        }
    };
    let lower = |lc: &LinearCombination<F>| -> Vec<(usize, F)> {
        lc.0.iter().map(|(v, c)| (column(*v), *c)).collect()
    };
    R1csMatrices {
        a: constraints.iter().map(|c| lower(&c.a)).collect(),
        b: constraints.iter().map(|c| lower(&c.b)).collect(),
        c: constraints.iter().map(|c| lower(&c.c)).collect(),
        num_instance,
        num_witness,
    }
}

// ---------------------------------------------------------------------------
// The synthesis traits
// ---------------------------------------------------------------------------

/// Why a synthesis pass failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisError {
    /// A value closure was evaluated (so the driver is witnessing) but the
    /// assignment it needs is not available — e.g. a proving synthesis was
    /// attempted over a circuit constructed without its witness.
    AssignmentMissing,
}

impl core::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::AssignmentMissing => {
                write!(
                    f,
                    "witness assignment missing during a witnessing synthesis"
                )
            }
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for SynthesisError {}

/// Lifts an optional assignment into a closure-friendly `Result`: the
/// idiomatic body of a value closure over data that is only present on the
/// proving side (`|| assignment(witness.map(…))`).
pub fn assignment<T>(v: Option<T>) -> Result<T, SynthesisError> {
    v.ok_or(SynthesisError::AssignmentMissing)
}

/// A synthesis driver: receives allocations (with values behind closures it
/// may or may not evaluate), constraints, and namespace markers.
///
/// Implementations decide the mode: [`SetupSynthesizer`] and
/// [`CountingSynthesizer`] never evaluate value closures,
/// [`ProvingSynthesizer`] always does. Namespaces are debug/diagnostics
/// metadata only — they never influence the constraint structure (or any
/// shape digest derived from it).
pub trait ConstraintSystem<F: PrimeField> {
    /// Allocates a public-input variable. The driver decides whether to
    /// evaluate `value`.
    fn alloc_instance<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>;

    /// Allocates a private witness variable. The driver decides whether to
    /// evaluate `value` — setup-mode drivers never do.
    fn alloc_witness<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>;

    /// Adds the constraint `⟨a, z⟩·⟨b, z⟩ = ⟨c, z⟩`.
    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    );

    /// Opens a named scope for the constraints and variables that follow
    /// (prefer the RAII [`ConstraintSystem::ns`] wrapper).
    fn push_namespace(&mut self, name: &str);

    /// Closes the innermost scope.
    fn pop_namespace(&mut self);

    /// RAII namespace guard: constraints added through the returned handle
    /// are attributed to `name`, and the scope closes when it drops.
    fn ns<'a>(&'a mut self, name: &str) -> Namespace<'a, F, Self>
    where
        Self: Sized,
    {
        self.push_namespace(name);
        Namespace {
            cs: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<F: PrimeField, CS: ConstraintSystem<F>> ConstraintSystem<F> for &mut CS {
    fn alloc_instance<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        (**self).alloc_instance(value)
    }

    fn alloc_witness<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        (**self).alloc_witness(value)
    }

    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        (**self).enforce(a, b, c)
    }

    fn push_namespace(&mut self, name: &str) {
        (**self).push_namespace(name)
    }

    fn pop_namespace(&mut self) {
        (**self).pop_namespace()
    }
}

/// RAII guard returned by [`ConstraintSystem::ns`]: forwards every call to
/// the wrapped driver and pops the namespace on drop.
pub struct Namespace<'a, F: PrimeField, CS: ConstraintSystem<F>> {
    cs: &'a mut CS,
    _marker: core::marker::PhantomData<F>,
}

impl<F: PrimeField, CS: ConstraintSystem<F>> ConstraintSystem<F> for Namespace<'_, F, CS> {
    fn alloc_instance<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.cs.alloc_instance(value)
    }

    fn alloc_witness<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.cs.alloc_witness(value)
    }

    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.cs.enforce(a, b, c)
    }

    fn push_namespace(&mut self, name: &str) {
        self.cs.push_namespace(name)
    }

    fn pop_namespace(&mut self) {
        self.cs.pop_namespace()
    }
}

impl<F: PrimeField, CS: ConstraintSystem<F>> Drop for Namespace<'_, F, CS> {
    fn drop(&mut self) {
        self.cs.pop_namespace();
    }
}

/// A circuit: one mode-agnostic description of structure and (optional)
/// assignment, synthesizable under any [`ConstraintSystem`] driver.
///
/// `Output` carries whatever the proving side wants back out of the
/// synthesis (e.g. the public verdict a witness produces); shape-only
/// drivers simply ignore it. Implementations must keep the *structure*
/// (allocations, constraints, bounds) independent of assignment values —
/// witness data may only be touched inside value closures.
pub trait Circuit<F: PrimeField> {
    /// What `synthesize` returns (use `()` when nothing is needed).
    type Output;

    /// Describes the circuit to `cs`.
    fn synthesize<CS: ConstraintSystem<F>>(
        &self,
        cs: &mut CS,
    ) -> Result<Self::Output, SynthesisError>;
}

// ---------------------------------------------------------------------------
// Setup driver
// ---------------------------------------------------------------------------

/// A streaming consumer of the canonical shape trace emitted by
/// [`SetupSynthesizer`] (typically a hash state; `()` discards the trace).
pub trait ShapeSink {
    /// Absorbs the next trace bytes.
    fn absorb(&mut self, bytes: &[u8]);
}

impl ShapeSink for () {
    fn absorb(&mut self, _bytes: &[u8]) {}
}

/// The trusted-setup driver: records the constraint structure and **never
/// evaluates a value closure**, so it can run on a machine that holds no
/// witness (and no public-input values either).
///
/// Every structural event is also streamed into a [`ShapeSink`] as a
/// canonical byte trace — tag bytes for allocations, and for each
/// constraint the compacted linear combinations (term counts, variable
/// kind/index, canonical little-endian coefficient bytes). Hashing that
/// trace yields a digest with the property *same trace ⇒ same matrices ⇒
/// same trusted-setup keys*; namespaces are deliberately excluded so
/// renaming a debug scope never orphans existing keys.
pub struct SetupSynthesizer<F: PrimeField, S: ShapeSink = ()> {
    num_instance: usize,
    num_witness: usize,
    constraints: Vec<Constraint<F>>,
    sink: S,
}

const TRACE_ALLOC_INSTANCE: u8 = 1;
const TRACE_ALLOC_WITNESS: u8 = 2;
const TRACE_ENFORCE: u8 = 3;

fn absorb_lc<F: PrimeField, S: ShapeSink>(sink: &mut S, lc: &LinearCombination<F>) {
    sink.absorb(&(lc.0.len() as u64).to_le_bytes());
    for (v, c) in &lc.0 {
        let (tag, idx) = v.sort_key();
        sink.absorb(&[tag]);
        sink.absorb(&(idx as u64).to_le_bytes());
        sink.absorb(&c.to_le_bytes());
    }
}

impl<F: PrimeField> SetupSynthesizer<F> {
    /// A fresh setup driver that discards the shape trace.
    pub fn new() -> Self {
        Self::with_sink(())
    }
}

impl<F: PrimeField> Default for SetupSynthesizer<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PrimeField, S: ShapeSink> SetupSynthesizer<F, S> {
    /// A fresh setup driver streaming the shape trace into `sink`.
    pub fn with_sink(sink: S) -> Self {
        Self {
            num_instance: 1, // the implicit constant 1
            num_witness: 0,
            constraints: Vec::new(),
            sink,
        }
    }

    /// Number of constraints synthesized so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Instance-block size (including the constant 1).
    pub fn num_instance_variables(&self) -> usize {
        self.num_instance
    }

    /// Number of witness variables.
    pub fn num_witness_variables(&self) -> usize {
        self.num_witness
    }

    /// The recorded constraints.
    pub fn constraints(&self) -> &[Constraint<F>] {
        &self.constraints
    }

    /// Lowers the structure to column-indexed sparse matrices.
    pub fn to_matrices(&self) -> R1csMatrices<F> {
        lower_constraints(&self.constraints, self.num_instance, self.num_witness)
    }

    /// Consumes the driver, returning the sink with the absorbed trace.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<F: PrimeField, S: ShapeSink> ConstraintSystem<F> for SetupSynthesizer<F, S> {
    fn alloc_instance<V>(&mut self, _value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.sink.absorb(&[TRACE_ALLOC_INSTANCE]);
        let var = Variable::Instance(self.num_instance);
        self.num_instance += 1;
        Ok(var)
    }

    fn alloc_witness<V>(&mut self, _value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.sink.absorb(&[TRACE_ALLOC_WITNESS]);
        let var = Variable::Witness(self.num_witness);
        self.num_witness += 1;
        Ok(var)
    }

    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        let (a, b, c) = (a.compact(), b.compact(), c.compact());
        self.sink.absorb(&[TRACE_ENFORCE]);
        absorb_lc(&mut self.sink, &a);
        absorb_lc(&mut self.sink, &b);
        absorb_lc(&mut self.sink, &c);
        self.constraints.push(Constraint { a, b, c });
    }

    fn push_namespace(&mut self, _name: &str) {}

    fn pop_namespace(&mut self) {}
}

// ---------------------------------------------------------------------------
// Proving driver
// ---------------------------------------------------------------------------

/// The proving driver: evaluates every value closure, producing the dense
/// assignment `z = (1, instance…, witness…)` alongside the constraints.
///
/// Also interns the namespace path of each constraint, so an unsatisfied
/// constraint can be reported as a human-readable path instead of a bare
/// row index.
#[derive(Clone, Debug)]
pub struct ProvingSynthesizer<F: PrimeField> {
    instance: Vec<F>,
    witness: Vec<F>,
    constraints: Vec<Constraint<F>>,
    /// Interned namespace paths; `paths[0]` is the root `""`.
    paths: Vec<String>,
    path_ids: BTreeMap<String, u32>,
    stack: Vec<usize>, // segment lengths, to truncate `current` on pop
    current: String,
    current_id: u32,
    constraint_paths: Vec<u32>,
}

impl<F: PrimeField> ProvingSynthesizer<F> {
    /// Creates an empty system (instance block starts with the constant 1).
    pub fn new() -> Self {
        Self {
            instance: vec![F::one()],
            witness: Vec::new(),
            constraints: Vec::new(),
            paths: vec![String::new()],
            path_ids: BTreeMap::from([(String::new(), 0)]),
            stack: Vec::new(),
            current: String::new(),
            current_id: 0,
            constraint_paths: Vec::new(),
        }
    }

    /// Value of a variable under the assignment.
    pub fn value(&self, v: Variable) -> F {
        match v {
            Variable::One => F::one(),
            Variable::Instance(i) => self.instance[i],
            Variable::Witness(i) => self.witness[i],
        }
    }

    /// Value of a linear combination under the assignment.
    pub fn eval_lc(&self, lc: &LinearCombination<F>) -> F {
        lc.0.iter()
            .fold(F::zero(), |acc, (v, c)| acc + self.value(*v) * *c)
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Instance-block size (including the constant 1).
    pub fn num_instance_variables(&self) -> usize {
        self.instance.len()
    }

    /// Number of witness variables.
    pub fn num_witness_variables(&self) -> usize {
        self.witness.len()
    }

    /// The instance assignment (with the leading constant 1).
    pub fn instance_assignment(&self) -> &[F] {
        &self.instance
    }

    /// The witness assignment.
    pub fn witness_assignment(&self) -> &[F] {
        &self.witness
    }

    /// The full assignment `z = (1, instance…, witness…)`.
    pub fn full_assignment(&self) -> Vec<F> {
        let mut z = self.instance.clone();
        z.extend_from_slice(&self.witness);
        z
    }

    /// The constraints (for inspection and tests).
    pub fn constraints(&self) -> &[Constraint<F>] {
        &self.constraints
    }

    /// The namespace path constraint `i` was enforced under (`""` = root).
    pub fn constraint_path(&self, i: usize) -> &str {
        &self.paths[self.constraint_paths[i] as usize]
    }

    /// Checks satisfaction; on failure returns the index of the first
    /// violated constraint (look up its scope with
    /// [`Self::constraint_path`]).
    pub fn is_satisfied(&self) -> Result<(), usize> {
        for (i, cstr) in self.constraints.iter().enumerate() {
            let a = self.eval_lc(&cstr.a);
            let b = self.eval_lc(&cstr.b);
            let c = self.eval_lc(&cstr.c);
            if a * b != c {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Lowers the constraints to column-indexed sparse matrices.
    pub fn to_matrices(&self) -> R1csMatrices<F> {
        lower_constraints(&self.constraints, self.instance.len(), self.witness.len())
    }
}

impl<F: PrimeField> Default for ProvingSynthesizer<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PrimeField> ConstraintSystem<F> for ProvingSynthesizer<F> {
    fn alloc_instance<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.instance.push(value()?);
        Ok(Variable::Instance(self.instance.len() - 1))
    }

    fn alloc_witness<V>(&mut self, value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        self.witness.push(value()?);
        Ok(Variable::Witness(self.witness.len() - 1))
    }

    fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.constraints.push(Constraint {
            a: a.compact(),
            b: b.compact(),
            c: c.compact(),
        });
        self.constraint_paths.push(self.current_id);
    }

    fn push_namespace(&mut self, name: &str) {
        let seg_len = name.len() + usize::from(!self.current.is_empty());
        if !self.current.is_empty() {
            self.current.push('/');
        }
        self.current.push_str(name);
        self.stack.push(seg_len);
        self.current_id = match self.path_ids.get(&self.current) {
            Some(&id) => id,
            None => {
                let id = self.paths.len() as u32;
                self.paths.push(self.current.clone());
                self.path_ids.insert(self.current.clone(), id);
                id
            }
        };
    }

    fn pop_namespace(&mut self) {
        let seg_len = self.stack.pop().expect("pop_namespace without a push");
        self.current.truncate(self.current.len() - seg_len);
        self.current_id = self.path_ids[&self.current];
    }
}

// ---------------------------------------------------------------------------
// Counting driver
// ---------------------------------------------------------------------------

/// Constraint/variable tallies for one namespace path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NamespaceCount {
    /// Constraints enforced directly under this path.
    pub constraints: usize,
    /// Instance variables allocated directly under this path.
    pub instance: usize,
    /// Witness variables allocated directly under this path.
    pub witness: usize,
}

/// The diagnostics driver: tallies constraints and variables — overall and
/// per namespace path — without storing constraints or evaluating any
/// value closure. Synthesizing a multi-million-constraint circuit through
/// it costs only the linear-combination construction.
pub struct CountingSynthesizer<F: PrimeField> {
    num_instance: usize,
    num_witness: usize,
    num_constraints: usize,
    /// Interned namespace paths; `paths[0]` is the root `""`. Counting is
    /// by path *id*, so per-event cost is an array index, not a clone.
    paths: Vec<String>,
    path_ids: BTreeMap<String, u32>,
    counts: Vec<NamespaceCount>,
    stack: Vec<usize>, // segment lengths, to truncate `current` on pop
    current: String,
    current_id: u32,
    _marker: core::marker::PhantomData<F>,
}

impl<F: PrimeField> CountingSynthesizer<F> {
    /// A fresh counting driver.
    pub fn new() -> Self {
        Self {
            num_instance: 1,
            num_witness: 0,
            num_constraints: 0,
            paths: vec![String::new()],
            path_ids: BTreeMap::from([(String::new(), 0)]),
            counts: vec![NamespaceCount::default()],
            stack: Vec::new(),
            current: String::new(),
            current_id: 0,
            _marker: core::marker::PhantomData,
        }
    }

    /// Number of constraints synthesized.
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Instance-block size (including the constant 1).
    pub fn num_instance_variables(&self) -> usize {
        self.num_instance
    }

    /// Number of witness variables.
    pub fn num_witness_variables(&self) -> usize {
        self.num_witness
    }

    /// Per-namespace tallies, keyed by `/`-joined path (`""` = root).
    /// Only paths that saw at least one event appear.
    pub fn by_namespace(&self) -> BTreeMap<String, NamespaceCount> {
        self.paths
            .iter()
            .zip(&self.counts)
            .filter(|(_, c)| **c != NamespaceCount::default())
            .map(|(p, c)| (p.clone(), *c))
            .collect()
    }

    /// A human-readable density report: one line per namespace, heaviest
    /// first, with each scope's share of the total constraint count.
    pub fn report(&self) -> String {
        let mut rows: Vec<(&str, &NamespaceCount)> = self
            .paths
            .iter()
            .zip(&self.counts)
            .filter(|(_, c)| **c != NamespaceCount::default())
            .map(|(p, c)| (p.as_str(), c))
            .collect();
        rows.sort_by(|a, b| b.1.constraints.cmp(&a.1.constraints).then(a.0.cmp(b.0)));
        let total = self.num_constraints.max(1);
        let mut out = format!(
            "{} constraints, {} instance vars (incl. 1), {} witness vars\n",
            self.num_constraints, self.num_instance, self.num_witness
        );
        for (path, c) in rows {
            let label = if path.is_empty() { "(root)" } else { path };
            out.push_str(&format!(
                "  {label:<40} {:>9} cstr ({:>5.1}%)  {:>7} inst  {:>9} wit\n",
                c.constraints,
                100.0 * c.constraints as f64 / total as f64,
                c.instance,
                c.witness,
            ));
        }
        out
    }

    fn bucket(&mut self) -> &mut NamespaceCount {
        &mut self.counts[self.current_id as usize]
    }
}

impl<F: PrimeField> Default for CountingSynthesizer<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PrimeField> ConstraintSystem<F> for CountingSynthesizer<F> {
    fn alloc_instance<V>(&mut self, _value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        let var = Variable::Instance(self.num_instance);
        self.num_instance += 1;
        self.bucket().instance += 1;
        Ok(var)
    }

    fn alloc_witness<V>(&mut self, _value: V) -> Result<Variable, SynthesisError>
    where
        V: FnOnce() -> Result<F, SynthesisError>,
    {
        let var = Variable::Witness(self.num_witness);
        self.num_witness += 1;
        self.bucket().witness += 1;
        Ok(var)
    }

    fn enforce(
        &mut self,
        _a: LinearCombination<F>,
        _b: LinearCombination<F>,
        _c: LinearCombination<F>,
    ) {
        self.num_constraints += 1;
        self.bucket().constraints += 1;
    }

    fn push_namespace(&mut self, name: &str) {
        let seg_len = name.len() + usize::from(!self.current.is_empty());
        if !self.current.is_empty() {
            self.current.push('/');
        }
        self.current.push_str(name);
        self.stack.push(seg_len);
        self.current_id = match self.path_ids.get(&self.current) {
            Some(&id) => id,
            None => {
                let id = self.paths.len() as u32;
                self.paths.push(self.current.clone());
                self.path_ids.insert(self.current.clone(), id);
                self.counts.push(NamespaceCount::default());
                id
            }
        };
    }

    fn pop_namespace(&mut self) {
        let seg_len = self.stack.pop().expect("pop_namespace without a push");
        self.current.truncate(self.current.len() - seg_len);
        self.current_id = self.path_ids[&self.current];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkrownn_ff::{Field, Fr};

    fn lc(v: Variable) -> LinearCombination<Fr> {
        v.into()
    }

    /// `x³ + x + 5 = y`, the classic Pinocchio example.
    struct Cubic {
        y: u64,
        x: Option<u64>,
    }

    impl Circuit<Fr> for Cubic {
        type Output = ();
        fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
            let y = cs.alloc_instance(|| Ok(Fr::from_u64(self.y)))?;
            let xv = self.x;
            let x = cs.alloc_witness(|| assignment(xv.map(Fr::from_u64)))?;
            let x2 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x))))?;
            let x3 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x * x))))?;
            {
                let mut ns = cs.ns("powers");
                ns.enforce(lc(x), lc(x), lc(x2));
                ns.enforce(lc(x2), lc(x), lc(x3));
            }
            let lhs = LinearCombination::from(x3).add_term(Fr::one(), x)
                + LinearCombination::constant(Fr::from_u64(5));
            cs.ns("sum")
                .enforce(lhs, LinearCombination::constant(Fr::one()), lc(y));
            Ok(())
        }
    }

    #[test]
    fn proving_synthesis_is_satisfied() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        Cubic { y: 35, x: Some(3) }.synthesize(&mut cs).unwrap();
        assert!(cs.is_satisfied().is_ok());
        assert_eq!(cs.num_constraints(), 3);
        assert_eq!(cs.num_instance_variables(), 2);
        assert_eq!(cs.num_witness_variables(), 3);
        assert_eq!(cs.constraint_path(0), "powers");
        assert_eq!(cs.constraint_path(2), "sum");
    }

    #[test]
    fn proving_synthesis_reports_first_violation() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        Cubic { y: 36, x: Some(3) }.synthesize(&mut cs).unwrap();
        assert_eq!(cs.is_satisfied(), Err(2));
        assert_eq!(cs.constraint_path(2), "sum");
    }

    #[test]
    fn proving_without_witness_reports_missing_assignment() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let err = Cubic { y: 35, x: None }.synthesize(&mut cs).unwrap_err();
        assert_eq!(err, SynthesisError::AssignmentMissing);
    }

    #[test]
    fn setup_never_evaluates_closures() {
        struct Bomb;
        impl Circuit<Fr> for Bomb {
            type Output = ();
            fn synthesize<CS: ConstraintSystem<Fr>>(
                &self,
                cs: &mut CS,
            ) -> Result<(), SynthesisError> {
                let a = cs.alloc_instance(|| panic!("instance closure evaluated"))?;
                let b = cs.alloc_witness(|| panic!("witness closure evaluated"))?;
                cs.enforce(a.into(), b.into(), LinearCombination::zero());
                Ok(())
            }
        }
        let mut setup = SetupSynthesizer::<Fr>::new();
        Bomb.synthesize(&mut setup).unwrap();
        assert_eq!(setup.num_constraints(), 1);
        let mut count = CountingSynthesizer::<Fr>::new();
        Bomb.synthesize(&mut count).unwrap();
        assert_eq!(count.num_constraints(), 1);
    }

    #[test]
    fn setup_and_proving_agree_on_structure() {
        let mut setup = SetupSynthesizer::<Fr>::new();
        Cubic { y: 35, x: None }.synthesize(&mut setup).unwrap();
        let mut prove = ProvingSynthesizer::<Fr>::new();
        Cubic { y: 35, x: Some(3) }.synthesize(&mut prove).unwrap();
        assert_eq!(
            format!("{:?}", setup.to_matrices()),
            format!("{:?}", prove.to_matrices())
        );
    }

    #[test]
    fn shape_trace_distinguishes_structure_not_values() {
        #[derive(Default)]
        struct Collect(Vec<u8>);
        impl ShapeSink for Collect {
            fn absorb(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let trace = |circuit: &Cubic| {
            let mut cs = SetupSynthesizer::with_sink(Collect::default());
            circuit.synthesize(&mut cs).unwrap();
            cs.into_sink().0
        };
        // different instance/witness *values*, identical trace
        let t1 = trace(&Cubic { y: 35, x: Some(3) });
        let t2 = trace(&Cubic { y: 999, x: None });
        assert_eq!(t1, t2);
        // a structurally different circuit produces a different trace
        struct Square {
            x: Option<u64>,
        }
        impl Circuit<Fr> for Square {
            type Output = ();
            fn synthesize<CS: ConstraintSystem<Fr>>(
                &self,
                cs: &mut CS,
            ) -> Result<(), SynthesisError> {
                let xv = self.x;
                let x = cs.alloc_witness(|| assignment(xv.map(Fr::from_u64)))?;
                let x2 = cs.alloc_witness(|| assignment(xv.map(|x| Fr::from_u64(x * x))))?;
                cs.enforce(x.into(), x.into(), x2.into());
                Ok(())
            }
        }
        let mut cs = SetupSynthesizer::with_sink(Collect::default());
        Square { x: None }.synthesize(&mut cs).unwrap();
        assert_ne!(t1, cs.into_sink().0);
    }

    #[test]
    fn namespaces_do_not_affect_trace_or_matrices() {
        struct Wrapped(bool);
        impl Circuit<Fr> for Wrapped {
            type Output = ();
            fn synthesize<CS: ConstraintSystem<Fr>>(
                &self,
                cs: &mut CS,
            ) -> Result<(), SynthesisError> {
                let x = cs.alloc_witness(|| Ok(Fr::from_u64(2)))?;
                if self.0 {
                    let mut ns = cs.ns("scope");
                    let mut inner = ns.ns("inner");
                    inner.enforce(
                        x.into(),
                        x.into(),
                        LinearCombination::constant(Fr::from_u64(4)),
                    );
                } else {
                    cs.enforce(
                        x.into(),
                        x.into(),
                        LinearCombination::constant(Fr::from_u64(4)),
                    );
                }
                Ok(())
            }
        }
        #[derive(Default)]
        struct Collect(Vec<u8>);
        impl ShapeSink for Collect {
            fn absorb(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let trace = |w: &Wrapped| {
            let mut cs = SetupSynthesizer::with_sink(Collect::default());
            w.synthesize(&mut cs).unwrap();
            cs.into_sink().0
        };
        assert_eq!(trace(&Wrapped(true)), trace(&Wrapped(false)));
    }

    #[test]
    fn counting_synthesizer_tracks_namespace_density() {
        let mut cs = CountingSynthesizer::<Fr>::new();
        Cubic { y: 35, x: None }.synthesize(&mut cs).unwrap();
        assert_eq!(cs.num_constraints(), 3);
        assert_eq!(cs.num_instance_variables(), 2);
        assert_eq!(cs.num_witness_variables(), 3);
        let ns = cs.by_namespace();
        assert_eq!(ns["powers"].constraints, 2);
        assert_eq!(ns["sum"].constraints, 1);
        assert_eq!(ns[""].instance, 1);
        assert_eq!(ns[""].witness, 3);
        let report = cs.report();
        assert!(report.contains("powers"));
        assert!(report.contains("66.7%"));
    }

    #[test]
    fn add_term_merges_eagerly() {
        let x = Variable::Witness(0);
        let y = Variable::Witness(1);
        let combo = LinearCombination::<Fr>::zero()
            .add_term(Fr::from_u64(2), x)
            .add_term(Fr::one(), y)
            .add_term(Fr::from_u64(3), x);
        assert_eq!(combo.0.len(), 2);
        assert_eq!(combo.0[0], (x, Fr::from_u64(5)));
        // exact cancellation elides the term
        let cancelled = combo.add_term(-Fr::from_u64(5), x);
        assert_eq!(cancelled.0.len(), 1);
        assert_eq!(cancelled.0[0].0, y);
    }

    #[test]
    fn compact_merges_duplicates() {
        let x = Variable::Witness(0);
        let combo = (LinearCombination::<Fr>::from(x) + LinearCombination::from(x)).compact();
        assert_eq!(combo.0, vec![(x, Fr::from_u64(2))]);
        let zero = (LinearCombination::<Fr>::from(x) - LinearCombination::from(x)).compact();
        assert!(zero.0.is_empty());
    }

    #[test]
    fn matrices_use_z_column_order() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let inst = cs.alloc_instance(|| Ok(Fr::from_u64(6))).unwrap();
        let w = cs.alloc_witness(|| Ok(Fr::from_u64(6))).unwrap();
        // w * 1 = inst
        cs.enforce(lc(w), LinearCombination::constant(Fr::one()), lc(inst));
        let m = cs.to_matrices();
        assert_eq!(m.num_instance, 2);
        assert_eq!(m.num_witness, 1);
        assert_eq!(m.a[0], vec![(2, Fr::one())]); // witness column = 1 + 1
        assert_eq!(m.b[0], vec![(0, Fr::one())]); // constant column
        assert_eq!(m.c[0], vec![(1, Fr::one())]); // instance column
    }

    #[test]
    fn linear_combination_arithmetic() {
        let mut cs = ProvingSynthesizer::<Fr>::new();
        let x = cs.alloc_witness(|| Ok(Fr::from_u64(3))).unwrap();
        let y = cs.alloc_witness(|| Ok(Fr::from_u64(4))).unwrap();
        // (2x + y - 1) should evaluate to 9
        let combo = LinearCombination::zero()
            .add_term(Fr::from_u64(2), x)
            .add_term(Fr::one(), y)
            + LinearCombination::constant(-Fr::one());
        assert_eq!(cs.eval_lc(&combo), Fr::from_u64(9));
        // and scaling by 3 gives 27
        assert_eq!(cs.eval_lc(&combo.scale(Fr::from_u64(3))), Fr::from_u64(27));
    }
}
