//! # zkrownn-pairing — optimal ate pairing over BN254
//!
//! The pairing `e: G1 × G2 → Fq12` used by the Groth16 verifier. The
//! implementation follows the textbook optimal-ate construction for BN
//! curves:
//!
//! * Miller loop over the NAF of `6x + 2` (with `x = 4965661367192848881`,
//!   the BN254 curve parameter), using homogeneous projective line
//!   evaluation on the D-type sextic twist;
//! * two closing addition steps with `ψ(Q)` and `−ψ²(Q)`, where `ψ` is the
//!   untwist-Frobenius-twist endomorphism;
//! * final exponentiation split into the easy part `(q⁶−1)(q²+1)` and the
//!   Fuentes-Castañeda hard part, which is cross-checked in tests against a
//!   naive `(q¹²−1)/r` exponentiation.
//!
//! ```
//! use zkrownn_pairing::pairing;
//! use zkrownn_curves::{G1Projective, G2Projective};
//! use zkrownn_ff::{Field, Fr};
//! let p = G1Projective::generator().into_affine();
//! let q = G2Projective::generator().into_affine();
//! let a = Fr::from_u64(3);
//! let b = Fr::from_u64(5);
//! let lhs = pairing(&p.mul_scalar(a).into_affine(), &q.mul_scalar(b).into_affine());
//! let rhs = pairing(&p, &q).pow(&[15]);
//! assert_eq!(lhs, rhs);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

extern crate alloc;

use alloc::vec::Vec;
use zkrownn_curves::{G1Affine, G2Affine, G2Config, SwCurveConfig};
use zkrownn_ff::{frobenius, Field, Fq, Fq12, Fq2};

/// The BN254 curve parameter `x` (positive).
pub const BN_X: u64 = 4_965_661_367_192_848_881;

/// The (positive) ate loop count `6x + 2`.
pub const ATE_LOOP_COUNT: u128 = 6 * BN_X as u128 + 2;

/// Digit count of [`ATE_NAF`] (the NAF of `6x + 2` is one digit longer
/// than its binary expansion at most; this walks the same recoding loop).
const ATE_NAF_LEN: usize = {
    let mut n = ATE_LOOP_COUNT;
    let mut len = 0;
    while n > 0 {
        if n & 1 == 1 {
            if n & 3 == 3 {
                n += 1;
            } else {
                n -= 1;
            }
        }
        len += 1;
        n >>= 1;
    }
    len
};

/// Non-adjacent form of the ate loop count, least-significant digit first,
/// recoded at compile time (no runtime cache, so it stays `no_std`).
static ATE_NAF: [i8; ATE_NAF_LEN] = {
    let mut out = [0i8; ATE_NAF_LEN];
    let mut n = ATE_LOOP_COUNT;
    let mut i = 0;
    while n > 0 {
        if n & 1 == 1 {
            if n & 3 == 3 {
                out[i] = -1;
                n += 1;
            } else {
                out[i] = 1;
                n -= 1;
            }
        }
        i += 1;
        n >>= 1;
    }
    assert!(out[ATE_NAF_LEN - 1] == 1);
    out
};

/// Non-adjacent form of the ate loop count, least-significant digit first.
fn ate_naf() -> &'static [i8] {
    &ATE_NAF
}

/// One line-function evaluation, as three `Fq2` coefficients.
type EllCoeff = (Fq2, Fq2, Fq2);

/// A G2 point with all Miller-loop line coefficients precomputed.
///
/// Preparing a point once and reusing it across pairings is the standard
/// verifier optimization (the Groth16 verifying key prepares `β`, `γ` and
/// `δ` once).
#[derive(Clone, Debug)]
pub struct G2Prepared {
    ell_coeffs: Vec<EllCoeff>,
    infinity: bool,
}

/// Homogeneous projective coordinates used during line computation.
struct G2HomProjective {
    x: Fq2,
    y: Fq2,
    z: Fq2,
}

impl G2HomProjective {
    /// Doubling step; returns the line coefficients for the D-twist.
    fn double_in_place(&mut self, two_inv: Fq) -> EllCoeff {
        // Formulas from Costello–Lange–Naehrig (as used by libsnark/arkworks).
        let a = (self.x * self.y).mul_by_fq(two_inv);
        let b = self.y.square();
        let c = self.z.square();
        let e = G2Config::coeff_b() * (c.double() + c);
        let f = e.double() + e;
        let g = (b + f).mul_by_fq(two_inv);
        let h = (self.y + self.z).square() - (b + c);
        let i = e - b;
        let j = self.x.square();
        let e_square = e.square();
        self.x = a * (b - f);
        self.y = g.square() - (e_square.double() + e_square);
        self.z = b * h;
        (-h, j.double() + j, i)
    }

    /// Mixed addition step; returns the line coefficients for the D-twist.
    fn add_in_place(&mut self, q: &G2Affine) -> EllCoeff {
        let theta = self.y - (q.y * self.z);
        let lambda = self.x - (q.x * self.z);
        let c = theta.square();
        let d = lambda.square();
        let e = lambda * d;
        let f = self.z * c;
        let g = self.x * d;
        let h = e + f - g.double();
        self.x = lambda * h;
        self.y = theta * (g - h) - (e * self.y);
        self.z *= e;
        let j = theta * q.x - (lambda * q.y);
        (lambda, -theta, j)
    }
}

/// The untwist-Frobenius-twist endomorphism
/// `ψ(x, y) = (x̄·ξ^((q−1)/3), ȳ·ξ^((q−1)/2))`.
fn mul_by_char(q: G2Affine) -> G2Affine {
    G2Affine::new_unchecked(
        q.x.frobenius_map(1) * frobenius::twist_mul_by_q_x(),
        q.y.frobenius_map(1) * frobenius::twist_mul_by_q_y(),
    )
}

impl From<G2Affine> for G2Prepared {
    fn from(q: G2Affine) -> Self {
        if q.is_identity() {
            return Self {
                ell_coeffs: Vec::new(),
                infinity: true,
            };
        }
        let two_inv = Fq::from_u64(2).inverse().expect("2 != 0");
        let naf = ate_naf();
        let neg_q = -q;
        let mut r = G2HomProjective {
            x: q.x,
            y: q.y,
            z: Fq2::one(),
        };
        let mut coeffs = Vec::with_capacity(naf.len() * 3 / 2 + 2);
        for i in (0..naf.len() - 1).rev() {
            coeffs.push(r.double_in_place(two_inv));
            match naf[i] {
                1 => coeffs.push(r.add_in_place(&q)),
                -1 => coeffs.push(r.add_in_place(&neg_q)),
                _ => {}
            }
        }
        // BN254's x is positive, so no conjugation step here.
        let q1 = mul_by_char(q);
        let mut q2 = mul_by_char(q1);
        q2.y = -q2.y;
        coeffs.push(r.add_in_place(&q1));
        coeffs.push(r.add_in_place(&q2));
        Self {
            ell_coeffs: coeffs,
            infinity: false,
        }
    }
}

/// Multiplies `f` by the line evaluated at the G1 point `p` (D-twist layout).
#[inline]
fn ell(f: &mut Fq12, coeff: &EllCoeff, p: &G1Affine) {
    *f = f.mul_by_034(coeff.0.mul_by_fq(p.y), coeff.1.mul_by_fq(p.x), coeff.2);
}

/// Product of Miller loops `∏ f_{6x+2, Qᵢ}(Pᵢ)` (no final exponentiation).
pub fn multi_miller_loop(pairs: &[(G1Affine, G2Prepared)]) -> Fq12 {
    let active: Vec<&(G1Affine, G2Prepared)> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.infinity)
        .collect();
    let naf = ate_naf();
    let mut f = Fq12::one();
    let mut idx = 0usize;
    for i in (0..naf.len() - 1).rev() {
        f = f.square();
        for (p, q) in active.iter() {
            ell(&mut f, &q.ell_coeffs[idx], p);
        }
        idx += 1;
        if naf[i] != 0 {
            for (p, q) in active.iter() {
                ell(&mut f, &q.ell_coeffs[idx], p);
            }
            idx += 1;
        }
    }
    for _ in 0..2 {
        for (p, q) in active.iter() {
            ell(&mut f, &q.ell_coeffs[idx], p);
        }
        idx += 1;
    }
    debug_assert!(active.iter().all(|(_, q)| q.ell_coeffs.len() == idx));
    f
}

/// `f^(-x)` for the positive BN parameter `x` (cyclotomic subgroup only).
fn exp_by_neg_x(f: Fq12) -> Fq12 {
    f.cyclotomic_exp(BN_X).conjugate()
}

/// The final exponentiation `f ↦ f^((q¹²−1)/r)` (up to a fixed power coprime
/// to `r`, per Fuentes-Castañeda — which preserves all pairing identities).
///
/// Returns `None` if `f` is zero (which cannot happen for Miller-loop
/// outputs of valid points).
pub fn final_exponentiation(f: &Fq12) -> Option<Fq12> {
    // Easy part: f^((q^6 - 1)(q^2 + 1)).
    let f_inv = f.inverse()?;
    let mut r = f.conjugate() * f_inv;
    r = r.frobenius_map(2) * r;

    // Hard part: Fuentes-Castañeda et al., "Faster hashing to G2".
    let y0 = exp_by_neg_x(r);
    let y1 = y0.cyclotomic_square();
    let y2 = y1.cyclotomic_square();
    let mut y3 = y2 * y1;
    let y4 = exp_by_neg_x(y3);
    let y5 = y4.cyclotomic_square();
    let mut y6 = exp_by_neg_x(y5);
    y3 = y3.conjugate();
    y6 = y6.conjugate();
    let y7 = y6 * y4;
    let mut y8 = y7 * y3;
    let y9 = y8 * y1;
    let y10 = y8 * y4;
    let y11 = y10 * r;
    let mut y12 = y9;
    y12 = y12.frobenius_map(1);
    let y13 = y12 * y11;
    y8 = y8.frobenius_map(2);
    let y14 = y8 * y13;
    r = r.conjugate();
    let mut y15 = r * y9;
    y15 = y15.frobenius_map(3);
    Some(y15 * y14)
}

/// The optimal ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fq12 {
    let ml = multi_miller_loop(&[(*p, G2Prepared::from(*q))]);
    final_exponentiation(&ml).expect("miller loop output is non-zero")
}

/// Product of pairings `∏ e(Pᵢ, Qᵢ)` with a single shared final
/// exponentiation — the shape of the Groth16 verification equation.
pub fn multi_pairing(pairs: &[(G1Affine, G2Prepared)]) -> Fq12 {
    let ml = multi_miller_loop(pairs);
    final_exponentiation(&ml).expect("miller loop output is non-zero")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_curves::{G1Projective, G2Projective};
    use zkrownn_ff::{BigUint, FpParams, FqParams, Fr, PrimeField};

    fn g1() -> G1Affine {
        G1Projective::generator().into_affine()
    }
    fn g2() -> G2Affine {
        G2Projective::generator().into_affine()
    }

    #[test]
    fn ate_loop_count_naf_reconstructs() {
        let naf = ate_naf();
        let mut v: i128 = 0;
        for (i, &d) in naf.iter().enumerate() {
            v += (d as i128) << i;
        }
        assert_eq!(v as u128, ATE_LOOP_COUNT);
    }

    #[test]
    fn non_degeneracy() {
        let e = pairing(&g1(), &g2());
        assert_ne!(e, Fq12::one());
        assert!(!e.is_zero());
    }

    #[test]
    fn output_has_order_dividing_r() {
        let e = pairing(&g1(), &g2());
        assert_eq!(e.pow(&Fr::MODULUS.0), Fq12::one());
    }

    #[test]
    fn bilinearity_left() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        let a = Fr::random(&mut rng);
        let pa = g1().mul_scalar(a).into_affine();
        let lhs = pairing(&pa, &g2());
        let rhs = pairing(&g1(), &g2()).pow(&a.into_bigint().0);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinearity_right() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        let b = Fr::random(&mut rng);
        let qb = g2().mul_scalar(b).into_affine();
        let lhs = pairing(&g1(), &qb);
        let rhs = pairing(&g1(), &g2()).pow(&b.into_bigint().0);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinearity_both_sides() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(93);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let pa = g1().mul_scalar(a).into_affine();
        let qb = g2().mul_scalar(b).into_affine();
        let lhs = pairing(&pa, &qb);
        let rhs = pairing(&g1(), &g2()).pow(&(a * b).into_bigint().0);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn inverse_relations() {
        let e = pairing(&g1(), &g2());
        let e_negp = pairing(&(-g1()), &g2());
        let e_negq = pairing(&g1(), &(-g2()));
        assert_eq!(e * e_negp, Fq12::one());
        assert_eq!(e * e_negq, Fq12::one());
        assert_eq!(e_negp, e_negq);
    }

    #[test]
    fn multi_pairing_is_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(94);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let p1 = g1().mul_scalar(a).into_affine();
        let p2 = g1().mul_scalar(b).into_affine();
        let prod = multi_pairing(&[(p1, G2Prepared::from(g2())), (p2, G2Prepared::from(g2()))]);
        assert_eq!(prod, pairing(&p1, &g2()) * pairing(&p2, &g2()));
        // and equals e(g1, g2)^(a+b)
        assert_eq!(prod, pairing(&g1(), &g2()).pow(&(a + b).into_bigint().0));
    }

    #[test]
    fn identity_inputs_give_one() {
        assert_eq!(pairing(&G1Affine::identity(), &g2()), Fq12::one());
        assert_eq!(pairing(&g1(), &G2Affine::identity()), Fq12::one());
    }

    #[test]
    fn final_exponentiation_matches_naive() {
        // Fuentes-Castañeda computes f^(2x(6x²+3x+1)·(q¹²−1)/r) rather than
        // the plain cofactor power; both kill every factor of order ≠ r and
        // agree on all pairing identities. Check the exact relation.
        let mut rng = rand::rngs::StdRng::seed_from_u64(95);
        let f = Fq12::random(&mut rng);

        let q = BigUint::from_limbs(&FqParams::MODULUS.0);
        let r = BigUint::from_limbs(&Fr::MODULUS.0);
        let mut q12 = BigUint::one();
        for _ in 0..12 {
            q12 = q12.mul(&q);
        }
        let (cofactor, rem) = q12.sub(&BigUint::one()).div_rem(&r);
        assert!(rem.is_zero(), "r must divide q^12 - 1");

        let naive = f.pow(cofactor.limbs());
        let fast = final_exponentiation(&f).unwrap();

        let x = BigUint::from_u64(BN_X);
        let six_x2 = x.mul(&x).mul_u64(6);
        let exp = x
            .mul_u64(2)
            .mul(&six_x2.add(&x.mul_u64(3)).add(&BigUint::one()));
        let expected = naive.pow(exp.limbs());
        assert_eq!(
            fast, expected,
            "hard part disagrees with naive exponentiation"
        );
    }
}
