//! Cross-cutting pairing identities used implicitly by the Groth16
//! verification equation.

use rand::SeedableRng;
use zkrownn_curves::{G1Affine, G1Projective, G2Projective};
use zkrownn_ff::{Field, Fq12, Fr};
use zkrownn_pairing::{
    final_exponentiation, multi_miller_loop, multi_pairing, pairing, G2Prepared,
};

fn rand_points(seed: u64) -> (G1Affine, zkrownn_curves::G2Affine, Fr, Fr) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    (
        G1Projective::generator().mul_scalar(a).into_affine(),
        G2Projective::generator().mul_scalar(b).into_affine(),
        a,
        b,
    )
}

#[test]
fn groth16_shaped_equation_balances() {
    // e(aP, bQ) · e(-abP, Q) == 1  — the cancellation pattern the verifier
    // relies on, via one shared final exponentiation.
    let mut rng = rand::rngs::StdRng::seed_from_u64(601);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    let p = G1Projective::generator();
    let q = G2Projective::generator().into_affine();
    let pa = p.mul_scalar(a).into_affine();
    let p_ab_neg = p.mul_scalar(a * b).neg().into_affine();
    let qb = G2Projective::generator().mul_scalar(b).into_affine();
    let result = multi_pairing(&[(pa, G2Prepared::from(qb)), (p_ab_neg, G2Prepared::from(q))]);
    assert_eq!(result, Fq12::one());
}

#[test]
fn prepared_points_are_reusable() {
    let (p, q, _, _) = rand_points(602);
    let prepared = G2Prepared::from(q);
    let first = multi_pairing(&[(p, prepared.clone())]);
    let second = multi_pairing(&[(p, prepared)]);
    assert_eq!(first, second);
    assert_eq!(first, pairing(&p, &q));
}

#[test]
fn miller_loop_product_equals_pairing_product() {
    let (p1, q1, _, _) = rand_points(603);
    let (p2, q2, _, _) = rand_points(604);
    // final_exp(ML(p1,q1) · ML(p2,q2)) == e(p1,q1)·e(p2,q2)
    let ml = multi_miller_loop(&[(p1, G2Prepared::from(q1)), (p2, G2Prepared::from(q2))]);
    let combined = final_exponentiation(&ml).unwrap();
    assert_eq!(combined, pairing(&p1, &q1) * pairing(&p2, &q2));
}

#[test]
fn pairing_respects_scalar_bilinearity_in_small_scalars() {
    let p = G1Projective::generator().into_affine();
    let q = G2Projective::generator().into_affine();
    let e = pairing(&p, &q);
    // e(3P, 5Q) = e(P,Q)^15 via small multiples computed by repeated addition
    let p3 = (p.into_projective() + p.into_projective() + p.into_projective()).into_affine();
    let mut q5 = q.into_projective();
    for _ in 0..4 {
        q5 += q.into_projective();
    }
    assert_eq!(pairing(&p3, &q5.into_affine()), e.pow(&[15]));
}

#[test]
fn unit_output_only_for_identity_inputs() {
    let (p, q, _, _) = rand_points(605);
    assert_ne!(pairing(&p, &q), Fq12::one());
    assert_eq!(pairing(&G1Affine::identity(), &q), Fq12::one());
}
