//! Fixed-point quantization of the (public) model under dispute.
//!
//! The extraction circuit takes the suspect model's weights as *public
//! inputs* (the verifier knows which model is in dispute), so the float
//! model is quantized once into the circuit's fixed-point representation.
//! Only the layers up to the watermarked layer are needed — Algorithm 1
//! runs `zkFeedForward(M)` "until layer l_wm".

use alloc::vec::Vec;
use zkrownn_gadgets::conv::ConvShape;
use zkrownn_gadgets::fixed::FixedConfig;
#[cfg(feature = "std")]
use zkrownn_nn::{Layer, Network};

/// One quantized layer (integer weights at scale `2^frac_bits`).
#[derive(Clone, Debug, PartialEq)]
pub enum QuantLayer {
    /// Fully connected: `w` is `out×in` row-major, `b` has length `out`.
    Dense {
        /// Input dimension.
        in_dim: usize,
        /// Output dimension.
        out_dim: usize,
        /// Quantized weights.
        w: Vec<i128>,
        /// Quantized bias.
        b: Vec<i128>,
    },
    /// Element-wise ReLU.
    ReLU,
    /// Shape-only layer (e.g. Flatten) — a no-op on the flat representation.
    Identity,
    /// Max pooling over a `C×H×W` volume (square window).
    MaxPool {
        /// Channels (inferred from the preceding layer).
        channels: usize,
        /// Input height (inferred).
        height: usize,
        /// Input width (inferred).
        width: usize,
        /// Window side length.
        size: usize,
        /// Stride.
        stride: usize,
    },
    /// 3-D convolution: `w` is `oc × (ic·k·k)` row-major, `b` has length `oc`.
    Conv {
        /// Geometry.
        shape: ConvShape,
        /// Quantized kernels.
        w: Vec<i128>,
        /// Quantized bias.
        b: Vec<i128>,
    },
}

impl QuantLayer {
    /// Number of weight/bias parameters (= public inputs contributed).
    pub fn num_params(&self) -> usize {
        match self {
            QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => w.len() + b.len(),
            QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => 0,
        }
    }

    /// Output length given an input length.
    pub fn out_len(&self, in_len: usize) -> usize {
        match self {
            QuantLayer::Dense {
                out_dim, in_dim, ..
            } => {
                assert_eq!(in_len, *in_dim, "dense input length mismatch");
                *out_dim
            }
            QuantLayer::ReLU | QuantLayer::Identity => in_len,
            QuantLayer::MaxPool {
                channels,
                height,
                width,
                size,
                stride,
            } => {
                assert_eq!(in_len, channels * height * width, "maxpool input length");
                let oh = (height - size) / stride + 1;
                let ow = (width - size) / stride + 1;
                channels * oh * ow
            }
            QuantLayer::Conv { shape, .. } => {
                assert_eq!(in_len, shape.in_len(), "conv input length mismatch");
                shape.out_len()
            }
        }
    }
}

/// A quantized prefix of a network (layers up to the watermarked layer).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedModel {
    /// Quantized layers, applied in order.
    pub layers: Vec<QuantLayer>,
    /// Flat input length.
    pub input_len: usize,
    /// Fixed-point configuration the quantization used.
    pub cfg: FixedConfig,
}

impl QuantizedModel {
    /// Quantizes layers `0..=up_to_layer` of a float network.
    ///
    /// # Panics
    /// Panics on layer kinds the extraction circuit does not support before
    /// the watermarked layer (MaxPool/Flatten — the paper's benchmarks
    /// place the watermark before any pooling).
    ///
    /// (`std`-only: quantizes a float [`Network`] from `zkrownn-nn`.)
    #[cfg(feature = "std")]
    pub fn from_network(
        net: &Network,
        up_to_layer: usize,
        input_len: usize,
        cfg: &FixedConfig,
    ) -> Self {
        let q = |v: f32| cfg.encode(v as f64);
        let layers = net.layers[..=up_to_layer]
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => QuantLayer::Dense {
                    in_dim: d.w.shape()[1],
                    out_dim: d.w.shape()[0],
                    w: d.w.data().iter().map(|&v| q(v)).collect(),
                    b: d.b.data().iter().map(|&v| q(v)).collect(),
                },
                Layer::ReLU => QuantLayer::ReLU,
                Layer::Flatten => QuantLayer::Identity,
                Layer::MaxPool2d { size, stride } => QuantLayer::MaxPool {
                    channels: 0,
                    height: 0,
                    width: 0,
                    size: *size,
                    stride: *stride,
                },
                Layer::Conv2d(c) => QuantLayer::Conv {
                    shape: ConvShape {
                        in_channels: c.in_channels,
                        // height/width are data-dependent; patched below
                        height: 0,
                        width: 0,
                        out_channels: c.out_channels,
                        kernel: c.kernel,
                        stride: c.stride,
                    },
                    w: c.w.data().iter().map(|&v| q(v)).collect(),
                    b: c.b.data().iter().map(|&v| q(v)).collect(),
                },
                #[allow(unreachable_patterns)]
                other => panic!("unsupported layer kind: {other:?}"),
            })
            .collect();
        let mut model = Self {
            layers,
            input_len,
            cfg: *cfg,
        };
        model.infer_conv_geometry();
        model
    }

    /// Fills in conv/pool geometry by propagating the input shape through
    /// the stack. Assumes square spatial dimensions (as in the paper's
    /// benchmarks).
    #[cfg(feature = "std")]
    fn infer_conv_geometry(&mut self) {
        let mut len = self.input_len;
        // (channels, height, width) once a conv establishes a spatial shape
        let mut spatial: Option<(usize, usize, usize)> = None;
        for layer in self.layers.iter_mut() {
            match layer {
                QuantLayer::Conv { shape, .. } => {
                    let hw = ((len / shape.in_channels) as f64).sqrt() as usize;
                    assert_eq!(shape.in_channels * hw * hw, len, "conv input is not square");
                    shape.height = hw;
                    shape.width = hw;
                    spatial = Some((shape.out_channels, shape.out_height(), shape.out_width()));
                }
                QuantLayer::MaxPool {
                    channels,
                    height,
                    width,
                    size,
                    stride,
                } => {
                    let (c, h, w) = spatial.expect("maxpool requires a preceding conv layer");
                    *channels = c;
                    *height = h;
                    *width = w;
                    let oh = (h - *size) / *stride + 1;
                    let ow = (w - *size) / *stride + 1;
                    spatial = Some((c, oh, ow));
                }
                QuantLayer::Dense { .. } => spatial = None,
                QuantLayer::ReLU | QuantLayer::Identity => {}
            }
            len = layer.out_len(len);
        }
    }

    /// Flat output length of the final (watermarked) layer.
    pub fn output_len(&self) -> usize {
        let mut len = self.input_len;
        for l in &self.layers {
            len = l.out_len(len);
        }
        len
    }

    /// Total number of public weight parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// All parameters in the canonical instance order (layer by layer,
    /// weights then bias).
    pub fn params_in_order(&self) -> Vec<i128> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            match l {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    out.extend_from_slice(w);
                    out.extend_from_slice(b);
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use zkrownn_nn::{Conv2d, Dense};

    #[test]
    fn quantizes_mlp_prefix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(261);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(20, 8, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(8, 4, &mut rng)),
        ]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 1, 20, &cfg);
        assert_eq!(q.layers.len(), 2);
        assert_eq!(q.num_params(), 20 * 8 + 8);
        assert_eq!(q.output_len(), 8);
    }

    #[test]
    fn quantizes_conv_prefix_with_geometry() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(262);
        let net = Network::new(vec![Layer::Conv2d(Conv2d::new(3, 8, 3, 2, &mut rng))]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 0, 3 * 32 * 32, &cfg);
        match &q.layers[0] {
            QuantLayer::Conv { shape, .. } => {
                assert_eq!(shape.height, 32);
                assert_eq!(shape.out_height(), 15);
            }
            _ => panic!("expected conv"),
        }
        assert_eq!(q.output_len(), 8 * 15 * 15);
    }

    #[test]
    fn quantization_roundtrips_small_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(263);
        let net = Network::new(vec![Layer::Dense(Dense::new(4, 2, &mut rng))]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 0, 4, &cfg);
        if let QuantLayer::Dense { w, .. } = &q.layers[0] {
            if let Layer::Dense(d) = &net.layers[0] {
                for (qi, fi) in w.iter().zip(d.w.data()) {
                    assert!((cfg.decode(*qi) - *fi as f64).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn params_in_order_is_stable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(264);
        let net = Network::new(vec![Layer::Dense(Dense::new(3, 2, &mut rng)), Layer::ReLU]);
        let cfg = FixedConfig::default();
        let q = QuantizedModel::from_network(&net, 1, 3, &cfg);
        let p1 = q.params_in_order();
        let p2 = q.params_in_order();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 8);
    }
}
