//! The paper's benchmark model zoo (Table II) and helpers that assemble a
//! complete watermarked benchmark: train → embed (DeepSigns) → quantize →
//! extraction spec. Scaled-down variants support fast tests and examples;
//! the full-size variants regenerate the Table I end-to-end rows.

use crate::circuit::ExtractionSpec;
use crate::model::QuantizedModel;
use rand::Rng;
use zkrownn_deepsigns::{embed, generate_keys, EmbedConfig, KeyGenConfig, WatermarkKeys};
use zkrownn_gadgets::fixed::FixedConfig;
use zkrownn_nn::{generate_gmm, Conv2d, Dataset, Dense, GmmConfig, Layer, Network};

/// Table II MLP: `784 - FC(512) - FC(512) - FC(10)`.
pub fn mnist_mlp<R: Rng + ?Sized>(rng: &mut R) -> Network {
    Network::new(vec![
        Layer::Dense(Dense::new(784, 512, rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(512, 512, rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(512, 10, rng)),
    ])
}

/// Table II CNN: `3×32×32 - C(32,3,2) - C(32,3,1) - MP(2,1) - C(64,3,1) -
/// C(64,3,1) - MP(2,1) - FC(512) - FC(10)`.
pub fn cifar10_cnn<R: Rng + ?Sized>(rng: &mut R) -> Network {
    // flattened dimension after the conv/pool stack:
    // 32×15×15 → 32×13×13 → MP(2,1) 32×12×12 → 64×10×10 → 64×8×8 → MP 64×7×7
    Network::new(vec![
        Layer::Conv2d(Conv2d::new(3, 32, 3, 2, rng)),
        Layer::ReLU,
        Layer::Conv2d(Conv2d::new(32, 32, 3, 1, rng)),
        Layer::ReLU,
        Layer::MaxPool2d { size: 2, stride: 1 },
        Layer::Conv2d(Conv2d::new(32, 64, 3, 1, rng)),
        Layer::ReLU,
        Layer::Conv2d(Conv2d::new(64, 64, 3, 1, rng)),
        Layer::ReLU,
        Layer::MaxPool2d { size: 2, stride: 1 },
        Layer::Flatten,
        Layer::Dense(Dense::new(64 * 7 * 7, 512, rng)),
        Layer::ReLU,
        Layer::Dense(Dense::new(512, 10, rng)),
    ])
}

/// A watermarked benchmark instance, ready to prove ownership of.
pub struct WatermarkedBenchmark {
    /// The (watermarked) float model.
    pub net: Network,
    /// The owner's secret keys.
    pub keys: WatermarkKeys,
    /// The training data used.
    pub data: Dataset,
    /// BER right after embedding (should be 0).
    pub embed_ber: f64,
}

/// Scale knobs for benchmark construction.
#[derive(Clone, Debug)]
pub struct BenchmarkScale {
    /// Training samples.
    pub train_samples: usize,
    /// Task-training epochs before embedding.
    pub pretrain_epochs: usize,
    /// Embedding fine-tuning epochs.
    pub embed_epochs: usize,
    /// Trigger-set size `T`.
    pub num_triggers: usize,
    /// Signature length `N`.
    pub signature_bits: usize,
}

impl BenchmarkScale {
    /// Paper-scale settings (32-bit watermark, first hidden layer).
    pub fn paper() -> Self {
        Self {
            train_samples: 600,
            pretrain_epochs: 3,
            embed_epochs: 10,
            num_triggers: 5,
            signature_bits: 32,
        }
    }

    /// Small settings for tests and quick examples.
    pub fn quick() -> Self {
        Self {
            train_samples: 120,
            pretrain_epochs: 2,
            embed_epochs: 8,
            num_triggers: 3,
            signature_bits: 16,
        }
    }
}

/// Builds a watermarked MLP on MNIST-shaped synthetic data. The watermark
/// lives in the *first hidden layer* activations (post-ReLU, layer index 1),
/// as in the paper's MNIST-MLP benchmark.
pub fn watermarked_mlp<R: Rng + ?Sized>(
    scale: &BenchmarkScale,
    rng: &mut R,
) -> WatermarkedBenchmark {
    let data = generate_gmm(&GmmConfig::mnist_like(), scale.train_samples, rng);
    let mut net = mnist_mlp(rng);
    net.train(&data.xs, &data.ys, scale.pretrain_epochs, 0.01);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 1,
            activation_dim: 512,
            signature_bits: scale.signature_bits,
            num_triggers: scale.num_triggers,
            // normalize so |µ·A| stays within the sigmoid gadget's range
            projection_std: 1.0 / (512f32).sqrt(),
        },
        &data,
        rng,
    );
    let report = embed(
        &mut net,
        &keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 2.0,
            epochs: scale.embed_epochs,
            lr: 0.005,
        },
    );
    WatermarkedBenchmark {
        net,
        keys,
        data,
        embed_ber: report.ber,
    }
}

/// Builds a watermarked CNN on CIFAR-shaped synthetic data. The watermark
/// lives in the first convolution layer's output (layer index 0).
pub fn watermarked_cnn<R: Rng + ?Sized>(
    scale: &BenchmarkScale,
    rng: &mut R,
) -> WatermarkedBenchmark {
    let data = generate_gmm(&GmmConfig::cifar_like(), scale.train_samples, rng);
    let mut net = cifar10_cnn(rng);
    net.train(&data.xs, &data.ys, scale.pretrain_epochs, 0.005);
    let keys = generate_keys(
        &KeyGenConfig {
            layer: 0,
            activation_dim: 32 * 15 * 15,
            signature_bits: scale.signature_bits,
            num_triggers: scale.num_triggers,
            // normalize so |µ·A| stays within the sigmoid gadget's range
            projection_std: 1.0 / (32f32 * 15.0 * 15.0).sqrt(),
        },
        &data,
        rng,
    );
    let report = embed(
        &mut net,
        &keys,
        &data.xs,
        &data.ys,
        &EmbedConfig {
            lambda: 2.0,
            epochs: scale.embed_epochs,
            lr: 0.002,
        },
    );
    WatermarkedBenchmark {
        net,
        keys,
        data,
        embed_ber: report.ber,
    }
}

/// Assembles the extraction spec (quantized model + quantized witness) for
/// a watermarked benchmark.
///
/// `fold_average` should be set for CNN-scale activation maps (see
/// [`ExtractionSpec`]); `max_errors` is the public BER tolerance `θ·N`.
pub fn spec_from_benchmark(
    bench: &WatermarkedBenchmark,
    fold_average: bool,
    max_errors: u64,
    cfg: &FixedConfig,
) -> ExtractionSpec {
    spec_from_keys(&bench.net, &bench.keys, fold_average, max_errors, cfg)
}

/// Assembles an extraction spec directly from a model and watermark keys.
pub fn spec_from_keys(
    net: &Network,
    keys: &WatermarkKeys,
    fold_average: bool,
    max_errors: u64,
    cfg: &FixedConfig,
) -> ExtractionSpec {
    let input_len: usize = keys.triggers[0].len();
    let model = QuantizedModel::from_network(net, keys.layer, input_len, cfg);
    let triggers: Vec<Vec<i128>> = keys
        .triggers
        .iter()
        .map(|t| t.data().iter().map(|&v| cfg.encode(v as f64)).collect())
        .collect();
    let t = keys.triggers.len() as f64;
    let n = keys.signature.len();
    let projection: Vec<i128> = keys
        .projection
        .iter()
        .map(|&v| {
            let val = if fold_average { v as f64 / t } else { v as f64 };
            cfg.encode(val)
        })
        .collect();
    assert_eq!(projection.len(), model.output_len() * n);
    let spec = ExtractionSpec {
        model,
        triggers,
        projection,
        signature: keys.signature.clone(),
        max_errors,
        fold_average,
        cfg: *cfg,
    };
    // Fail fast with an actionable message if the projections exceed the
    // sigmoid gadget's input range (the circuit's range checks would reject
    // the witness anyway, much later and more cryptically).
    let fixed = crate::reference::extract_fixed(
        &spec.model,
        &spec.triggers,
        &spec.projection,
        &spec.signature,
        spec.fold_average,
        cfg,
    );
    let limit = 1i128 << (zkrownn_gadgets::sigmoid::SIGMOID_INPUT_INT_BITS + cfg.frac_bits);
    let max_proj = fixed.projections.iter().map(|p| p.abs()).max().unwrap_or(0);
    assert!(
        max_proj < limit,
        "projection magnitude {} exceeds the sigmoid input range 2^{}; \
         scale the projection matrix down (e.g. std = 1/√M) or shorten the \
         embedding",
        cfg.decode(max_proj),
        zkrownn_gadgets::sigmoid::SIGMOID_INPUT_INT_BITS,
    );
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table2_mlp_architecture() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(291);
        let net = mnist_mlp(&mut rng);
        assert_eq!(
            net.num_parameters(),
            784 * 512 + 512 + 512 * 512 + 512 + 512 * 10 + 10
        );
        let y = net.forward(&zkrownn_nn::Tensor::zeros(&[784]));
        assert_eq!(y.shape(), &[10]);
    }

    #[test]
    fn table2_cnn_architecture_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(292);
        let net = cifar10_cnn(&mut rng);
        let y = net.forward(&zkrownn_nn::Tensor::zeros(&[3, 32, 32]));
        assert_eq!(y.shape(), &[10]);
    }
}
