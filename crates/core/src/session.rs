//! Role-typed sessions encoding the paper's trust model at compile time.
//!
//! ZKROWNN has three parties with strictly different knowledge:
//!
//! * the **authority** runs the one-time trusted setup for a circuit shape
//!   and hands each side its kit — [`Authority::setup`];
//! * the **prover** (model owner) holds the private watermark witness and
//!   the proving key — [`ProverKit::prove`] turns them into a portable
//!   [`SignedClaim`];
//! * the **verifier** holds only public data (the verifying key and the
//!   circuit id) — [`VerifierKit::verify`] checks a claim without ever
//!   seeing a trigger key, projection matrix or signature bit.
//!
//! The kits make leaking a secret a *type error*: nothing on
//! [`VerifierKit`] can reach witness data, because the verifier side never
//! holds any. Claims serialize with [`Artifact::to_bytes`](crate::Artifact::to_bytes) and reconstruct
//! in another process with [`Artifact::from_bytes`](crate::Artifact::from_bytes); many claims against
//! the same circuit amortize via [`crate::KeyRegistry::verify_batch`].

use crate::artifact::{CircuitId, OwnershipStatement, TraceHasher};
use crate::circuit::{ExtractionCircuit, ExtractionSpec};
use crate::error::ZkrownnError;
use crate::prove::OwnershipProof;
pub use crate::verify::{SignedClaim, VerifierKit};
use std::path::Path;
use zkrownn_curves::MemoryBudget;
use zkrownn_ff::Fr;
use zkrownn_groth16::{
    create_proof_with_context, ProverContext, ProvingKey, SetupContext, ToxicWaste,
};
use zkrownn_r1cs::{Circuit, SetupSynthesizer};
use zkrownn_store::{create_proof_streamed_rng, KeyStore, KeyStoreWriter, StoreBackend, StoreMeta};

/// One witness-free synthesis serving triple duty: the lowered matrices
/// and twiddle-table domain become a [`SetupContext`] that drives key
/// generation and is returned so [`Authority::setup`] can convert it into
/// the prover's cached [`ProverContext`] (one lowering, one domain build,
/// both roles), and the streamed trace becomes the [`CircuitId`] —
/// setup-side circuits are synthesized exactly once.
fn generate_parameters_and_id<C: Circuit<Fr>, R: rand::Rng + ?Sized>(
    circuit: &C,
    rng: &mut R,
) -> (ProvingKey, CircuitId, SetupContext) {
    let mut cs = SetupSynthesizer::with_sink(TraceHasher::new());
    circuit
        .synthesize(&mut cs)
        .expect("setup-mode synthesis evaluates no value closure and cannot fail");
    let matrices = cs.to_matrices();
    let id = CircuitId::from_bytes(cs.into_sink().finalize());
    let setup_ctx = SetupContext::new(matrices);
    let pk = setup_ctx.generate(rng);
    (pk, id, setup_ctx)
}

/// The trusted-setup authority (the paper's trusted third party `T`).
///
/// Runs circuit-specific setup once per circuit *shape* and splits the
/// result into the two role kits. Setup synthesizes the circuit with the
/// witness-free setup driver — no value closure is ever evaluated, so the
/// authority learns nothing about the watermark (and, via
/// [`Authority::setup_statement`], need not even be handed a spec that
/// *contains* a witness).
///
/// ```
/// use rand::SeedableRng;
/// use zkrownn::{Authority, ExtractionSpec, QuantLayer, QuantizedModel};
/// use zkrownn_gadgets::FixedConfig;
///
/// let cfg = FixedConfig::default();
/// let spec = ExtractionSpec {
///     model: QuantizedModel {
///         layers: vec![
///             QuantLayer::Dense { in_dim: 2, out_dim: 2, w: vec![cfg.encode(0.5); 4], b: vec![0; 2] },
///             QuantLayer::ReLU,
///         ],
///         input_len: 2,
///         cfg,
///     },
///     triggers: vec![vec![cfg.encode(1.0); 2]],
///     projection: vec![cfg.encode(0.25); 4],
///     signature: vec![true, false],
///     max_errors: 2,
///     fold_average: false,
///     cfg,
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (prover, verifier) = Authority::setup(&spec, &mut rng);
/// let claim = prover.prove(&mut rng).unwrap();
/// verifier.verify(&claim).unwrap();
/// ```
pub struct Authority;

impl Authority {
    /// One-time trusted setup for `spec`'s circuit, returning the prover's
    /// and verifier's kits.
    ///
    /// Setup runs on [`ExtractionSpec::shape_circuit`] — the witness-less
    /// view of the spec — so no witness value is touched. The [`ProverKit`]
    /// keeps the full spec (private witness included) and the proving key;
    /// the [`VerifierKit`] gets only the verifying key and the circuit id.
    pub fn setup<R: rand::Rng + ?Sized>(
        spec: &ExtractionSpec,
        rng: &mut R,
    ) -> (ProverKit, VerifierKit) {
        let (pk, circuit_id, setup_ctx) = generate_parameters_and_id(&spec.shape_circuit(), rng);
        // keygen's lowered matrices and twiddle-table domain carry straight
        // over into the prover's cached compute state — nothing re-lowers
        let ctx = setup_ctx.into_prover_context();
        let vk = pk.vk.clone();
        // the setup was requested for *this* dispute, so the issued kit is
        // bound to this spec's public statement: a claim about any other
        // same-shaped model will be rejected with `StatementMismatch`
        let verifier = VerifierKit::from_parts(vk, circuit_id)
            .bind_statement(spec.statement().content_digest());
        (
            ProverKit {
                pk,
                spec: spec.clone(),
                circuit_id,
                ctx,
            },
            verifier,
        )
    }

    /// Strictly witness-free setup from a public [`OwnershipStatement`]
    /// alone — the honest-authority deployment: the authority receives only
    /// public data, publishes the proving key, and issues a bound
    /// [`VerifierKit`]. The owner later assembles their
    /// [`ProverKit::from_parts`] from the published key and their private
    /// spec.
    pub fn setup_statement<R: rand::Rng + ?Sized>(
        statement: &OwnershipStatement,
        rng: &mut R,
    ) -> (ProvingKey, VerifierKit) {
        let circuit = ExtractionCircuit::from_statement(statement);
        // verifier-only issuance: the setup context is not needed past keygen
        let (pk, circuit_id, _setup_ctx) = generate_parameters_and_id(&circuit, rng);
        let vk = pk.vk.clone();
        let verifier =
            VerifierKit::from_parts(vk, circuit_id).bind_statement(statement.content_digest());
        (pk, verifier)
    }

    /// [`Authority::setup_statement`], but the proving key is **streamed**
    /// to a segmented store file at `path` instead of materialized in
    /// memory: each fixed-base keygen chunk goes to disk as it finishes,
    /// bounded by `budget`, so the authority's peak memory is independent
    /// of key size. The store is stamped with the circuit id and statement
    /// digest, so a [`StoredProverKit`] can later refuse a mismatched key.
    ///
    /// Byte-for-byte, the stored key is identical to the one
    /// [`Authority::setup_statement`] would produce from the same
    /// randomness. Returns the bound [`VerifierKit`] (read back from the
    /// finished store — what was written is what verifies).
    pub fn setup_statement_stored<R: rand::Rng + ?Sized>(
        statement: &OwnershipStatement,
        path: &Path,
        rng: &mut R,
        budget: MemoryBudget,
    ) -> Result<VerifierKit, ZkrownnError> {
        let circuit = ExtractionCircuit::from_statement(statement);
        let mut cs = SetupSynthesizer::with_sink(TraceHasher::new());
        circuit
            .synthesize(&mut cs)
            .expect("setup-mode synthesis evaluates no value closure and cannot fail");
        let matrices = cs.to_matrices();
        let circuit_id = CircuitId::from_bytes(cs.into_sink().finalize());
        let setup_ctx = SetupContext::new(matrices);
        let meta = StoreMeta {
            circuit_id: *circuit_id.as_bytes(),
            statement_digest: statement.content_digest(),
        };
        let mut sink = KeyStoreWriter::create(path, Some(meta))
            .map_err(|e| ZkrownnError::Store(e.to_string()))?;
        let toxic = ToxicWaste::sample(rng);
        setup_ctx
            .generate_streaming_with(&toxic, &mut sink, budget)
            .map_err(|e| ZkrownnError::Store(e.to_string()))?;
        sink.finish()
            .map_err(|e| ZkrownnError::Store(e.to_string()))?;
        let vk = KeyStore::open(path)?.verifying_key()?;
        Ok(VerifierKit::from_parts(vk, circuit_id).bind_statement(statement.content_digest()))
    }
}

/// The model owner's side: proving key + private watermark witness.
///
/// This is the only type in the workflow that holds secrets (trigger keys,
/// projection matrix, signature). It never serializes them; the only thing
/// it exports is a [`SignedClaim`], which carries public data and a
/// zero-knowledge proof.
pub struct ProverKit {
    pk: ProvingKey,
    spec: ExtractionSpec,
    circuit_id: CircuitId,
    /// Cached prover compute state (lowered matrices, FFT domain with its
    /// twiddle tables, vanishing constant) — built once per kit so repeated
    /// [`ProverKit::prove`] calls pay only synthesis + the proof kernel.
    ctx: ProverContext,
}

impl ProverKit {
    /// Reassembles a kit from a proving key and a spec — e.g. after
    /// receiving the key bytes from an authority in another process.
    /// Lowers the circuit once into the kit's cached [`ProverContext`].
    pub fn from_parts(pk: ProvingKey, spec: ExtractionSpec) -> Self {
        let circuit_id = spec.circuit_id();
        let ctx = ProverContext::for_circuit(&spec.shape_circuit())
            .expect("setup-mode synthesis evaluates no value closure and cannot fail");
        Self {
            pk,
            spec,
            circuit_id,
            ctx,
        }
    }

    /// The kit's cached prover compute state.
    pub fn context(&self) -> &ProverContext {
        &self.ctx
    }

    /// The circuit this kit proves against.
    pub fn circuit_id(&self) -> CircuitId {
        self.circuit_id
    }

    /// The public statement this kit's claims will carry.
    pub fn statement(&self) -> OwnershipStatement {
        self.spec.statement()
    }

    /// The proving key (needed to persist or ship the prover role).
    pub fn proving_key(&self) -> &ProvingKey {
        &self.pk
    }

    /// Generates an ownership claim: synthesizes the witnessed circuit in
    /// proving mode, proves it, and bundles the proof with the public
    /// statement.
    pub fn prove<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Result<SignedClaim, ZkrownnError> {
        let built = self.spec.build()?;
        built
            .cs
            .is_satisfied()
            .map_err(ZkrownnError::UnsatisfiedCircuit)?;
        let proof = create_proof_with_context(&self.pk, &self.ctx, &built.cs, rng);
        Ok(SignedClaim {
            statement: self.spec.statement(),
            proof: OwnershipProof {
                proof,
                verdict: built.verdict,
                circuit_id: self.circuit_id,
            },
        })
    }
}

/// A [`ProverKit`] whose proving key lives on disk in a segmented store
/// (`.zkst`) instead of in memory.
///
/// Proving streams each key family out of the store in budget-sized,
/// checksum-verified chunks, so peak memory is the witness scalars plus one
/// chunk of points — independent of key size. The proofs it produces are
/// byte-identical to [`ProverKit::prove`] with the equivalent in-memory key
/// under the same randomness.
pub struct StoredProverKit {
    store: KeyStore,
    spec: ExtractionSpec,
    circuit_id: CircuitId,
    ctx: ProverContext,
    budget: MemoryBudget,
}

impl StoredProverKit {
    /// Opens a store-backed kit with the default (mmap-preferring) backend.
    ///
    /// Validates the store's structure at open, and — when the store
    /// carries metadata — that the key was generated for `spec`'s circuit;
    /// a key for any other circuit shape fails with
    /// [`ZkrownnError::CircuitMismatch`] here rather than producing an
    /// unverifiable proof later.
    pub fn open(
        path: &Path,
        spec: ExtractionSpec,
        budget: MemoryBudget,
    ) -> Result<Self, ZkrownnError> {
        Self::open_with(path, spec, budget, StoreBackend::Auto)
    }

    /// [`StoredProverKit::open`] with an explicit I/O backend — pass
    /// [`StoreBackend::Buffered`] when running under an address-space cap
    /// (an mmap of the key counts against `ulimit -v`; buffered `pread`
    /// does not).
    pub fn open_with(
        path: &Path,
        spec: ExtractionSpec,
        budget: MemoryBudget,
        backend: StoreBackend,
    ) -> Result<Self, ZkrownnError> {
        let store = KeyStore::open_with(path, backend)?;
        let circuit_id = spec.circuit_id();
        if let Some(meta) = store.meta()? {
            if meta.circuit_id != *circuit_id.as_bytes() {
                return Err(ZkrownnError::CircuitMismatch {
                    expected: circuit_id,
                    got: CircuitId::from_bytes(meta.circuit_id),
                });
            }
        }
        let ctx = ProverContext::for_circuit(&spec.shape_circuit())
            .expect("setup-mode synthesis evaluates no value closure and cannot fail");
        Ok(Self {
            store,
            spec,
            circuit_id,
            ctx,
            budget,
        })
    }

    /// The circuit this kit proves against.
    pub fn circuit_id(&self) -> CircuitId {
        self.circuit_id
    }

    /// The public statement this kit's claims will carry.
    pub fn statement(&self) -> OwnershipStatement {
        self.spec.statement()
    }

    /// The underlying key store (e.g. for [`KeyStore::verifying_key`]).
    pub fn store(&self) -> &KeyStore {
        &self.store
    }

    /// Generates an ownership claim exactly like [`ProverKit::prove`], but
    /// with the five proof MSMs consuming key segments from the store at
    /// this kit's memory budget.
    pub fn prove<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Result<SignedClaim, ZkrownnError> {
        let built = self.spec.build()?;
        built
            .cs
            .is_satisfied()
            .map_err(ZkrownnError::UnsatisfiedCircuit)?;
        let z = built.cs.full_assignment();
        let proof = create_proof_streamed_rng(&self.store, &self.ctx, &z, rng, self.budget)?;
        Ok(SignedClaim {
            statement: self.spec.statement(),
            proof: OwnershipProof {
                proof,
                verdict: built.verdict,
                circuit_id: self.circuit_id,
            },
        })
    }
}
