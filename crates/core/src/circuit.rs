//! The end-to-end watermark-extraction circuit (Algorithm 1 of the paper).
//!
//! Public inputs (in order): the quantized model parameters, then the final
//! ownership verdict bit. Private witness: the trigger keys `X_key`, the
//! projection matrix `A`, and the signature `wm`.
//!
//! ```text
//! check = 1
//! zkFeedForward(M) on X_key until layer l_wm
//! µ   = zkAverage(activations)            (or folded into A, see below)
//! G   = zkSigmoid(µ · A)
//! ŵm  = zkHardThresholding(G, 0.5)
//! out = check ∧ zkBER(wm, ŵm, θ)
//! ```
//!
//! The circuit is described once, as [`ExtractionCircuit`] — an
//! implementation of the mode-agnostic [`Circuit`] trait — and driven by
//! whichever synthesizer the caller picks: witness-free setup
//! (`SetupSynthesizer`, from which [`CircuitId`]s are also derived),
//! proving (`ProvingSynthesizer`), or constraint counting
//! (`CountingSynthesizer`). The witness is *optional* on the circuit value
//! itself: a setup party builds the circuit from a public
//! [`OwnershipStatement`] alone, and the type system plus the setup
//! driver's never-evaluate guarantee ensure no witness is needed — no
//! placeholder-witness construction anywhere.
//!
//! `fold_average` folds the `1/T` mean into the (private) projection
//! matrix, removing `M` division gadgets — one of the "specific
//! optimizations, such as … combining operations within loops" the paper
//! applies to its end-to-end circuits; we use it for the CNN, whose
//! 7200-dimensional activation map would otherwise dominate the circuit.

use crate::artifact::{CircuitId, OwnershipStatement};
use crate::model::{QuantLayer, QuantizedModel};
use alloc::vec::Vec;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::average::average_rows;
use zkrownn_gadgets::ber::ber_check;
use zkrownn_gadgets::bits::Bit;
use zkrownn_gadgets::cmp::truncate;
use zkrownn_gadgets::conv::conv3d;
use zkrownn_gadgets::fixed::FixedConfig;
use zkrownn_gadgets::num::Num;
use zkrownn_gadgets::relu::relu_vec;
use zkrownn_gadgets::sigmoid::sigmoid_vec;
use zkrownn_gadgets::threshold::hard_threshold_vec;
use zkrownn_r1cs::{assignment, Circuit, ConstraintSystem, ProvingSynthesizer, SynthesisError};

/// Everything needed to build (and witness) the extraction circuit.
#[derive(Clone, Debug)]
pub struct ExtractionSpec {
    /// The suspect model's quantized prefix (public).
    pub model: QuantizedModel,
    /// Quantized trigger inputs (private witness).
    pub triggers: Vec<Vec<i128>>,
    /// Quantized projection matrix, `M × N` row-major (private witness).
    /// Pre-divided by `T` when `fold_average` is set.
    pub projection: Vec<i128>,
    /// The signature bits (private witness).
    pub signature: Vec<bool>,
    /// Maximum tolerated bit errors (`θ·N`; public, baked into the circuit).
    pub max_errors: u64,
    /// Fold the `1/T` averaging into the projection matrix.
    pub fold_average: bool,
    /// Fixed-point configuration.
    pub cfg: FixedConfig,
}

/// The private half of an extraction circuit, borrowed from wherever it
/// lives (an [`ExtractionSpec`], typically). Setup-side circuits simply
/// don't have one.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionWitness<'a> {
    /// Quantized trigger inputs, each of the model's input length.
    pub triggers: &'a [Vec<i128>],
    /// Quantized projection matrix, `M × N` row-major.
    pub projection: &'a [i128],
    /// The signature bits.
    pub signature: &'a [bool],
}

/// The extraction circuit proper: public shape (+ model) always, witness
/// optionally — one value drives setup, proving and counting synthesis.
///
/// Synthesizing with a witnessing driver but no witness fails cleanly with
/// [`SynthesisError::AssignmentMissing`]; synthesizing with a shape-only
/// driver never touches the witness at all.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionCircuit<'a> {
    model: &'a QuantizedModel,
    num_triggers: usize,
    signature_bits: usize,
    max_errors: u64,
    fold_average: bool,
    cfg: FixedConfig,
    witness: Option<ExtractionWitness<'a>>,
}

/// Result of a proving-mode synthesis of the circuit.
#[derive(Debug)]
pub struct BuiltCircuit {
    /// The populated proving-mode constraint system.
    pub cs: ProvingSynthesizer<Fr>,
    /// The verdict the witness produces (`true` = ownership established).
    pub verdict: bool,
}

/// The shared zkFeedForward body: runs `act` through `model`'s layers over
/// pre-allocated parameter `Num`s (instance-allocated for extraction,
/// witness-allocated for verifiable inference — the split is the only
/// difference between the two circuits' feed-forward stages). Fixed-point
/// semantics: bias lifted by `2^f`, truncation after every Dense/Conv, with
/// the tracked bound clamped to `act_bits`.
pub(crate) fn feed_forward_layers<CS: ConstraintSystem<Fr>>(
    model: &QuantizedModel,
    cfg: &FixedConfig,
    weight_nums: &[Vec<Num>],
    bias_nums: &[Vec<Num>],
    mut act: Vec<Num>,
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    let f = cfg.frac_bits;
    let act_bits = cfg.value_bits() + 2; // activation head-room
    for (li, layer) in model.layers.iter().enumerate() {
        act = match layer {
            QuantLayer::Dense {
                in_dim, out_dim, ..
            } => {
                assert_eq!(act.len(), *in_dim);
                let w = &weight_nums[li];
                let b = &bias_nums[li];
                (0..*out_dim)
                    .map(|o| {
                        let row: Vec<Num> = w[o * in_dim..(o + 1) * in_dim].to_vec();
                        let acc = Num::inner_product(&row, &act, cs)?.add(&b[o].shl(f));
                        let mut out = truncate(&acc, f, cs)?;
                        out.bits = out.bits.min(act_bits);
                        Ok(out)
                    })
                    .collect::<Result<_, SynthesisError>>()?
            }
            QuantLayer::ReLU => relu_vec(&act, cs)?,
            QuantLayer::Identity => act,
            QuantLayer::MaxPool {
                channels,
                height,
                width,
                size,
                stride,
            } => zkrownn_gadgets::maxpool::maxpool2d(
                &act, *channels, *height, *width, *size, *stride, cs,
            )?,
            QuantLayer::Conv { shape, .. } => {
                let raw = conv3d(&act, &weight_nums[li], shape, cs)?;
                let (oh, ow) = (shape.out_height(), shape.out_width());
                raw.iter()
                    .enumerate()
                    .map(|(idx, r)| {
                        let oc = idx / (oh * ow);
                        let acc = r.add(&bias_nums[li][oc].shl(f));
                        let mut out = truncate(&acc, f, cs)?;
                        out.bits = out.bits.min(act_bits);
                        Ok(out)
                    })
                    .collect::<Result<_, SynthesisError>>()?
            }
        };
    }
    Ok(act)
}

impl<'a> ExtractionCircuit<'a> {
    /// The witness-free circuit described by a public statement — all a
    /// trusted-setup party (or a verifier recomputing a [`CircuitId`])
    /// ever needs.
    pub fn from_statement(statement: &'a OwnershipStatement) -> Self {
        Self {
            model: &statement.model,
            num_triggers: statement.num_triggers,
            signature_bits: statement.signature_bits,
            max_errors: statement.max_errors,
            fold_average: statement.fold_average,
            cfg: statement.cfg,
            witness: None,
        }
    }

    /// The setup-trace digest of this circuit.
    pub fn id(&self) -> CircuitId {
        CircuitId::of_circuit(self)
    }
}

impl Circuit<Fr> for ExtractionCircuit<'_> {
    /// The public verdict under the witness (`None` when the driver does
    /// not evaluate assignments).
    type Output = Option<bool>;

    fn synthesize<CS: ConstraintSystem<Fr>>(
        &self,
        cs: &mut CS,
    ) -> Result<Option<bool>, SynthesisError> {
        let f = self.cfg.frac_bits;
        let act_bits = self.cfg.value_bits() + 2; // activation head-room
        let w = self.witness;
        if let Some(w) = &w {
            assert_eq!(
                w.triggers.len(),
                self.num_triggers,
                "trigger count mismatch"
            );
            assert_eq!(
                w.signature.len(),
                self.signature_bits,
                "signature length mismatch"
            );
        }

        // -- public inputs: model parameters, layer by layer -------------
        let mut weight_nums: Vec<Vec<Num>> = Vec::new();
        let mut bias_nums: Vec<Vec<Num>> = Vec::new();
        {
            let mut ns = cs.ns("model-params");
            for layer in &self.model.layers {
                match layer {
                    QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                        let wn = w
                            .iter()
                            .map(|&v| {
                                Num::alloc_instance(
                                    &mut ns,
                                    || Ok(Fr::from_i128(v)),
                                    self.cfg.value_bits(),
                                )
                            })
                            .collect::<Result<_, _>>()?;
                        let bn = b
                            .iter()
                            .map(|&v| {
                                Num::alloc_instance(
                                    &mut ns,
                                    || Ok(Fr::from_i128(v)),
                                    self.cfg.value_bits(),
                                )
                            })
                            .collect::<Result<_, _>>()?;
                        weight_nums.push(wn);
                        bias_nums.push(bn);
                    }
                    QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {
                        weight_nums.push(Vec::new());
                        bias_nums.push(Vec::new());
                    }
                }
            }
        }

        // -- private witness: trigger keys --------------------------------
        let input_len = self.model.input_len;
        let trigger_nums: Vec<Vec<Num>> = {
            let mut ns = cs.ns("triggers");
            (0..self.num_triggers)
                .map(|t| {
                    if let Some(w) = &w {
                        assert_eq!(w.triggers[t].len(), input_len, "trigger length mismatch");
                    }
                    (0..input_len)
                        .map(|i| {
                            Num::alloc_witness(
                                &mut ns,
                                || assignment(w.map(|w| Fr::from_i128(w.triggers[t][i]))),
                                self.cfg.value_bits(),
                            )
                        })
                        .collect::<Result<_, _>>()
                })
                .collect::<Result<_, _>>()?
        };

        // -- zkFeedForward until l_wm, per trigger ------------------------
        let mut ff = cs.ns("feed-forward");
        let mut activations: Vec<Vec<Num>> = Vec::with_capacity(trigger_nums.len());
        for trig in &trigger_nums {
            activations.push(feed_forward_layers(
                self.model,
                &self.cfg,
                &weight_nums,
                &bias_nums,
                trig.clone(),
                &mut ff,
            )?);
        }
        drop(ff);

        // -- zkAverage -----------------------------------------------------
        let m = self.model.output_len();
        let mu: Vec<Num> = if self.fold_average {
            // raw sums; the 1/T is inside the projection matrix
            (0..m)
                .map(|j| {
                    let terms: Vec<Num> = activations.iter().map(|a| a[j].clone()).collect();
                    Num::sum(&terms)
                })
                .collect()
        } else {
            average_rows(&activations, &mut cs.ns("average"))?
        };

        // -- projection µ·A, rescaled to the tensor scale ------------------
        let n = self.signature_bits;
        if let Some(w) = &w {
            assert_eq!(w.projection.len(), m * n, "projection shape mismatch");
        }
        let mut proj_ns = cs.ns("projection");
        let proj_nums: Vec<Num> = (0..m * n)
            .map(|i| {
                Num::alloc_witness(
                    &mut proj_ns,
                    || assignment(w.map(|w| Fr::from_i128(w.projection[i]))),
                    self.cfg.value_bits(),
                )
            })
            .collect::<Result<_, _>>()?;
        let projections: Vec<Num> = (0..n)
            .map(|j| {
                let col: Vec<Num> = (0..m).map(|i| proj_nums[i * n + j].clone()).collect();
                let acc = Num::inner_product(&mu, &col, &mut proj_ns)?;
                let mut out = truncate(&acc, f, &mut proj_ns)?;
                out.bits = out.bits.min(act_bits);
                Ok(out)
            })
            .collect::<Result<_, SynthesisError>>()?;
        drop(proj_ns);

        // -- zkSigmoid + zkHardThresholding(0.5) ---------------------------
        let squashed = sigmoid_vec(&projections, &self.cfg, &mut cs.ns("sigmoid"))?;
        let half = Fr::from_i128(1i128 << (f - 1));
        let extracted = hard_threshold_vec(&squashed, half, &mut cs.ns("threshold"))?;

        // -- zkBER against the private signature ---------------------------
        let mut ber_ns = cs.ns("ber");
        let sig_bits: Vec<Bit> = (0..n)
            .map(|i| Bit::alloc(&mut ber_ns, || assignment(w.map(|w| w.signature[i]))))
            .collect::<Result<_, _>>()?;
        let valid = ber_check(&sig_bits, &extracted, self.max_errors, &mut ber_ns)?;

        // check = 1 ∧ valid_BER, exposed as the public verdict
        let verdict = valid.value();
        valid.num.expose_as_output(&mut ber_ns)?;

        Ok(verdict)
    }
}

impl ExtractionSpec {
    /// The public half of this spec: everything a verifier needs, nothing
    /// the prover must keep secret (no triggers, projection or signature —
    /// only their dimensions). The statement's fixed-point configuration is
    /// canonical: the embedded model is normalized to it.
    pub fn statement(&self) -> OwnershipStatement {
        debug_assert_eq!(
            self.model.cfg, self.cfg,
            "spec and model disagree on the fixed-point configuration"
        );
        let mut model = self.model.clone();
        model.cfg = self.cfg;
        OwnershipStatement {
            model,
            num_triggers: self.triggers.len(),
            signature_bits: self.signature.len(),
            max_errors: self.max_errors,
            fold_average: self.fold_average,
            cfg: self.cfg,
        }
    }

    /// The fully-witnessed circuit, borrowing this spec's model and
    /// secrets — ready for a proving-mode synthesis.
    pub fn circuit(&self) -> ExtractionCircuit<'_> {
        ExtractionCircuit {
            witness: Some(ExtractionWitness {
                triggers: &self.triggers,
                projection: &self.projection,
                signature: &self.signature,
            }),
            ..self.shape_circuit()
        }
    }

    /// The same circuit *without* its witness — what setup (and
    /// [`CircuitId`] derivation) run on. Any attempt to synthesize it with
    /// a witnessing driver fails with
    /// [`SynthesisError::AssignmentMissing`]; shape-only drivers never
    /// notice the difference.
    pub fn shape_circuit(&self) -> ExtractionCircuit<'_> {
        ExtractionCircuit {
            model: &self.model,
            num_triggers: self.triggers.len(),
            signature_bits: self.signature.len(),
            max_errors: self.max_errors,
            fold_average: self.fold_average,
            cfg: self.cfg,
            witness: None,
        }
    }

    /// The circuit digest (same shape ⇒ same circuit ⇒ same trusted-setup
    /// keys): the hash of the setup-mode synthesis trace. Borrowed data
    /// only — no model clone, no witness access.
    pub fn circuit_id(&self) -> CircuitId {
        self.shape_circuit().id()
    }

    /// Synthesizes the full extraction circuit in proving mode.
    ///
    /// # Panics
    /// Panics on shape mismatches between the model, triggers, projection
    /// and signature.
    pub fn build(&self) -> Result<BuiltCircuit, SynthesisError> {
        let mut cs = ProvingSynthesizer::new();
        let verdict = self.circuit().synthesize(&mut cs)?;
        Ok(BuiltCircuit {
            cs,
            verdict: verdict.expect("proving synthesis evaluates every assignment"),
        })
    }

    /// The verifier-side public input vector: model parameters followed by
    /// the expected verdict (1 = ownership established). Excludes the
    /// implicit leading constant.
    pub fn public_inputs(&self, expected_verdict: bool) -> Vec<Fr> {
        let mut out: Vec<Fr> = self
            .model
            .params_in_order()
            .iter()
            .map(|&v| Fr::from_i128(v))
            .collect();
        out.push(Fr::from_i128(i128::from(expected_verdict)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuantizedModel;
    use crate::reference::extract_fixed;
    use rand::SeedableRng;
    use zkrownn_nn::{Dense, Layer, Network};
    use zkrownn_r1cs::{CountingSynthesizer, SetupSynthesizer};

    fn tiny_spec(seed: u64, fold: bool) -> ExtractionSpec {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Network::new(vec![Layer::Dense(Dense::new(6, 5, &mut rng)), Layer::ReLU]);
        let cfg = FixedConfig::default();
        let model = QuantizedModel::from_network(&net, 1, 6, &cfg);
        let triggers: Vec<Vec<i128>> = (0..3)
            .map(|k| {
                (0..6)
                    .map(|i| cfg.encode(((i + k) as f64 - 3.0) / 2.0))
                    .collect()
            })
            .collect();
        let projection: Vec<i128> = (0..5 * 4)
            .map(|i| cfg.encode(((i % 7) as f64 - 3.0) / 2.0))
            .collect();
        ExtractionSpec {
            model,
            triggers,
            projection,
            signature: vec![true, false, true, false],
            max_errors: 4,
            fold_average: fold,
            cfg,
        }
    }

    #[test]
    fn circuit_is_satisfiable_and_matches_reference() {
        for fold in [false, true] {
            let spec = tiny_spec(281, fold);
            let built = spec.build().unwrap();
            assert!(built.cs.is_satisfied().is_ok(), "fold = {fold}");
            let reference = extract_fixed(
                &spec.model,
                &spec.triggers,
                &spec.projection,
                &spec.signature,
                spec.fold_average,
                &spec.cfg,
            );
            let expected_verdict = reference.errors as u64 <= spec.max_errors;
            assert_eq!(built.verdict, expected_verdict, "fold = {fold}");
        }
    }

    #[test]
    fn tight_threshold_flips_verdict() {
        let mut spec = tiny_spec(282, false);
        let reference = extract_fixed(
            &spec.model,
            &spec.triggers,
            &spec.projection,
            &spec.signature,
            false,
            &spec.cfg,
        );
        // random projection → some errors are overwhelmingly likely
        if reference.errors > 0 {
            spec.max_errors = reference.errors as u64 - 1;
            let built = spec.build().unwrap();
            assert!(built.cs.is_satisfied().is_ok());
            assert!(!built.verdict);
        }
    }

    #[test]
    fn witness_free_setup_synthesis_matches_proving_structure() {
        let spec = tiny_spec(283, false);
        let built = spec.build().unwrap();
        // the shape circuit carries no witness at all, and setup synthesis
        // must still produce the identical structure
        let mut setup = SetupSynthesizer::<Fr>::new();
        spec.shape_circuit().synthesize(&mut setup).unwrap();
        assert_eq!(
            built.cs.num_constraints(),
            setup.num_constraints(),
            "setup and proving circuits must agree"
        );
        assert_eq!(
            built.cs.num_instance_variables(),
            setup.num_instance_variables()
        );
        assert_eq!(
            built.cs.num_witness_variables(),
            setup.num_witness_variables()
        );
    }

    #[test]
    fn statement_circuit_matches_spec_circuit_id() {
        let spec = tiny_spec(285, true);
        let statement = spec.statement();
        assert_eq!(spec.circuit_id(), statement.circuit_id());
        // a different shape (one more signature bit) changes the id
        let mut other = tiny_spec(285, true);
        other.signature.push(true);
        other.projection.extend(vec![0; 5]);
        assert_ne!(spec.circuit_id(), other.circuit_id());
        // …but different *values* with the same shape do not
        let mut same_shape = tiny_spec(285, true);
        same_shape.projection.iter_mut().for_each(|v| *v = 0);
        for t in same_shape.triggers.iter_mut() {
            t.iter_mut().for_each(|v| *v = 0);
        }
        assert_eq!(spec.circuit_id(), same_shape.circuit_id());
    }

    #[test]
    fn proving_the_shape_circuit_reports_missing_witness() {
        let spec = tiny_spec(286, false);
        let mut cs = ProvingSynthesizer::<Fr>::new();
        assert_eq!(
            spec.shape_circuit().synthesize(&mut cs).unwrap_err(),
            SynthesisError::AssignmentMissing
        );
    }

    #[test]
    fn counting_synthesizer_reports_per_stage_density() {
        let spec = tiny_spec(287, false);
        let mut count = CountingSynthesizer::<Fr>::new();
        spec.shape_circuit().synthesize(&mut count).unwrap();
        let built = spec.build().unwrap();
        assert_eq!(count.num_constraints(), built.cs.num_constraints());
        let ns = count.by_namespace();
        for stage in ["feed-forward", "average", "projection", "sigmoid", "ber"] {
            assert!(
                ns.get(stage).map(|c| c.constraints > 0).unwrap_or(false),
                "stage {stage} missing from density report: {:?}",
                ns.keys().collect::<Vec<_>>()
            );
        }
        assert!(count.report().contains("sigmoid"));
    }

    #[test]
    fn public_inputs_match_instance_assignment() {
        let spec = tiny_spec(284, false);
        let built = spec.build().unwrap();
        let expected = spec.public_inputs(built.verdict);
        // instance_assignment[0] is the constant 1
        assert_eq!(built.cs.instance_assignment().len(), expected.len() + 1);
        for (got, want) in built.cs.instance_assignment()[1..].iter().zip(&expected) {
            assert_eq!(got, want);
        }
    }
}
