//! The end-to-end watermark-extraction circuit (Algorithm 1 of the paper).
//!
//! Public inputs (in order): the quantized model parameters, then the final
//! ownership verdict bit. Private witness: the trigger keys `X_key`, the
//! projection matrix `A`, and the signature `wm`.
//!
//! ```text
//! check = 1
//! zkFeedForward(M) on X_key until layer l_wm
//! µ   = zkAverage(activations)            (or folded into A, see below)
//! G   = zkSigmoid(µ · A)
//! ŵm  = zkHardThresholding(G, 0.5)
//! out = check ∧ zkBER(wm, ŵm, θ)
//! ```
//!
//! `fold_average` folds the `1/T` mean into the (private) projection
//! matrix, removing `M` division gadgets — one of the "specific
//! optimizations, such as … combining operations within loops" the paper
//! applies to its end-to-end circuits; we use it for the CNN, whose
//! 7200-dimensional activation map would otherwise dominate the circuit.

use crate::artifact::{CircuitId, OwnershipStatement};
use crate::model::{QuantLayer, QuantizedModel};
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::average::average_rows;
use zkrownn_gadgets::ber::ber_check;
use zkrownn_gadgets::bits::Bit;
use zkrownn_gadgets::cmp::truncate;
use zkrownn_gadgets::conv::conv3d;
use zkrownn_gadgets::fixed::FixedConfig;
use zkrownn_gadgets::num::Num;
use zkrownn_gadgets::relu::relu_vec;
use zkrownn_gadgets::sigmoid::sigmoid_vec;
use zkrownn_gadgets::threshold::hard_threshold_vec;
use zkrownn_r1cs::ConstraintSystem;

/// Everything needed to build (and witness) the extraction circuit.
#[derive(Clone, Debug)]
pub struct ExtractionSpec {
    /// The suspect model's quantized prefix (public).
    pub model: QuantizedModel,
    /// Quantized trigger inputs (private witness).
    pub triggers: Vec<Vec<i128>>,
    /// Quantized projection matrix, `M × N` row-major (private witness).
    /// Pre-divided by `T` when `fold_average` is set.
    pub projection: Vec<i128>,
    /// The signature bits (private witness).
    pub signature: Vec<bool>,
    /// Maximum tolerated bit errors (`θ·N`; public, baked into the circuit).
    pub max_errors: u64,
    /// Fold the `1/T` averaging into the projection matrix.
    pub fold_average: bool,
    /// Fixed-point configuration.
    pub cfg: FixedConfig,
}

/// Result of building the circuit.
#[derive(Debug)]
pub struct BuiltCircuit {
    /// The populated constraint system.
    pub cs: ConstraintSystem<Fr>,
    /// The verdict the witness produces (`true` = ownership established).
    pub verdict: bool,
}

impl ExtractionSpec {
    /// The public half of this spec: everything a verifier needs, nothing
    /// the prover must keep secret (no triggers, projection or signature —
    /// only their dimensions). The statement's fixed-point configuration is
    /// canonical: the embedded model is normalized to it.
    pub fn statement(&self) -> OwnershipStatement {
        debug_assert_eq!(
            self.model.cfg, self.cfg,
            "spec and model disagree on the fixed-point configuration"
        );
        let mut model = self.model.clone();
        model.cfg = self.cfg;
        OwnershipStatement {
            model,
            num_triggers: self.triggers.len(),
            signature_bits: self.signature.len(),
            max_errors: self.max_errors,
            fold_average: self.fold_average,
            cfg: self.cfg,
        }
    }

    /// The shape digest of the circuit this spec builds (same shape ⇒ same
    /// circuit ⇒ same trusted-setup keys). Computed from borrowed data — no
    /// model clone.
    pub fn circuit_id(&self) -> CircuitId {
        crate::artifact::circuit_id_from_parts(
            &self.model,
            self.triggers.len(),
            self.signature.len(),
            self.max_errors,
            self.fold_average,
            &self.cfg,
        )
    }

    /// Shape-compatible spec with zeroed witness values, for trusted setup
    /// (the circuit structure is assignment-independent).
    pub fn placeholder_witness(&self) -> Self {
        let mut s = self.clone();
        s.triggers = vec![vec![0; self.model.input_len]; self.triggers.len()];
        s.projection = vec![0; self.projection.len()];
        s.signature = vec![false; self.signature.len()];
        s
    }

    /// Builds the full extraction circuit.
    ///
    /// # Panics
    /// Panics on shape mismatches between the model, triggers, projection
    /// and signature.
    pub fn build(&self) -> BuiltCircuit {
        let f = self.cfg.frac_bits;
        let act_bits = self.cfg.value_bits() + 2; // activation head-room
        let mut cs = ConstraintSystem::<Fr>::new();

        // -- public inputs: model parameters, layer by layer -------------
        let mut weight_nums: Vec<Vec<Num>> = Vec::new();
        let mut bias_nums: Vec<Vec<Num>> = Vec::new();
        for layer in &self.model.layers {
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    let wn = w
                        .iter()
                        .map(|&v| {
                            Num::alloc_instance(&mut cs, Fr::from_i128(v), self.cfg.value_bits())
                        })
                        .collect();
                    let bn = b
                        .iter()
                        .map(|&v| {
                            Num::alloc_instance(&mut cs, Fr::from_i128(v), self.cfg.value_bits())
                        })
                        .collect();
                    weight_nums.push(wn);
                    bias_nums.push(bn);
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {
                    weight_nums.push(Vec::new());
                    bias_nums.push(Vec::new());
                }
            }
        }

        // -- private witness: trigger keys --------------------------------
        let trigger_nums: Vec<Vec<Num>> = self
            .triggers
            .iter()
            .map(|t| {
                assert_eq!(t.len(), self.model.input_len, "trigger length mismatch");
                t.iter()
                    .map(|&v| Num::alloc_witness(&mut cs, Fr::from_i128(v), self.cfg.value_bits()))
                    .collect()
            })
            .collect();

        // -- zkFeedForward until l_wm, per trigger ------------------------
        let mut activations: Vec<Vec<Num>> = Vec::with_capacity(trigger_nums.len());
        for trig in &trigger_nums {
            let mut act = trig.clone();
            for (li, layer) in self.model.layers.iter().enumerate() {
                act = match layer {
                    QuantLayer::Dense {
                        in_dim, out_dim, ..
                    } => {
                        assert_eq!(act.len(), *in_dim);
                        let w = &weight_nums[li];
                        let b = &bias_nums[li];
                        (0..*out_dim)
                            .map(|o| {
                                let row: Vec<Num> = w[o * in_dim..(o + 1) * in_dim].to_vec();
                                let acc = Num::inner_product(&row, &act, &mut cs).add(&b[o].shl(f));
                                let mut out = truncate(&acc, f, &mut cs);
                                out.bits = out.bits.min(act_bits);
                                out
                            })
                            .collect()
                    }
                    QuantLayer::ReLU => relu_vec(&act, &mut cs),
                    QuantLayer::Identity => act,
                    QuantLayer::MaxPool {
                        channels,
                        height,
                        width,
                        size,
                        stride,
                    } => zkrownn_gadgets::maxpool::maxpool2d(
                        &act, *channels, *height, *width, *size, *stride, &mut cs,
                    ),
                    QuantLayer::Conv { shape, .. } => {
                        let raw = conv3d(&act, &weight_nums[li], shape, &mut cs);
                        let (oh, ow) = (shape.out_height(), shape.out_width());
                        raw.iter()
                            .enumerate()
                            .map(|(idx, r)| {
                                let oc = idx / (oh * ow);
                                let acc = r.add(&bias_nums[li][oc].shl(f));
                                let mut out = truncate(&acc, f, &mut cs);
                                out.bits = out.bits.min(act_bits);
                                out
                            })
                            .collect()
                    }
                };
            }
            activations.push(act);
        }

        // -- zkAverage -----------------------------------------------------
        let m = self.model.output_len();
        let mu: Vec<Num> = if self.fold_average {
            // raw sums; the 1/T is inside the projection matrix
            (0..m)
                .map(|j| {
                    let terms: Vec<Num> = activations.iter().map(|a| a[j].clone()).collect();
                    Num::sum(&terms)
                })
                .collect()
        } else {
            average_rows(&activations, &mut cs)
        };

        // -- projection µ·A, rescaled to the tensor scale ------------------
        let n = self.signature.len();
        assert_eq!(self.projection.len(), m * n, "projection shape mismatch");
        let proj_nums: Vec<Num> = self
            .projection
            .iter()
            .map(|&v| Num::alloc_witness(&mut cs, Fr::from_i128(v), self.cfg.value_bits()))
            .collect();
        let projections: Vec<Num> = (0..n)
            .map(|j| {
                let col: Vec<Num> = (0..m).map(|i| proj_nums[i * n + j].clone()).collect();
                let acc = Num::inner_product(&mu, &col, &mut cs);
                let mut out = truncate(&acc, f, &mut cs);
                out.bits = out.bits.min(act_bits);
                out
            })
            .collect();

        // -- zkSigmoid + zkHardThresholding(0.5) ---------------------------
        let squashed = sigmoid_vec(&projections, &self.cfg, &mut cs);
        let half = Fr::from_i128(1i128 << (f - 1));
        let extracted = hard_threshold_vec(&squashed, half, &mut cs);

        // -- zkBER against the private signature ---------------------------
        let sig_bits: Vec<Bit> = self
            .signature
            .iter()
            .map(|&b| Bit::alloc(&mut cs, b))
            .collect();
        let valid = ber_check(&sig_bits, &extracted, self.max_errors, &mut cs);

        // check = 1 ∧ valid_BER, exposed as the public verdict
        let verdict = valid.value();
        valid.num.expose_as_output(&mut cs);

        BuiltCircuit { cs, verdict }
    }

    /// The verifier-side public input vector: model parameters followed by
    /// the expected verdict (1 = ownership holds). Excludes the implicit
    /// leading constant.
    pub fn public_inputs(&self, expected_verdict: bool) -> Vec<Fr> {
        let mut out: Vec<Fr> = self
            .model
            .params_in_order()
            .iter()
            .map(|&v| Fr::from_i128(v))
            .collect();
        out.push(Fr::from_i128(i128::from(expected_verdict)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuantizedModel;
    use crate::reference::extract_fixed;
    use rand::SeedableRng;
    use zkrownn_nn::{Dense, Layer, Network};

    fn tiny_spec(seed: u64, fold: bool) -> ExtractionSpec {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Network::new(vec![Layer::Dense(Dense::new(6, 5, &mut rng)), Layer::ReLU]);
        let cfg = FixedConfig::default();
        let model = QuantizedModel::from_network(&net, 1, 6, &cfg);
        let triggers: Vec<Vec<i128>> = (0..3)
            .map(|k| {
                (0..6)
                    .map(|i| cfg.encode(((i + k) as f64 - 3.0) / 2.0))
                    .collect()
            })
            .collect();
        let projection: Vec<i128> = (0..5 * 4)
            .map(|i| cfg.encode(((i % 7) as f64 - 3.0) / 2.0))
            .collect();
        ExtractionSpec {
            model,
            triggers,
            projection,
            signature: vec![true, false, true, false],
            max_errors: 4,
            fold_average: fold,
            cfg,
        }
    }

    #[test]
    fn circuit_is_satisfiable_and_matches_reference() {
        for fold in [false, true] {
            let spec = tiny_spec(281, fold);
            let built = spec.build();
            assert!(built.cs.is_satisfied().is_ok(), "fold = {fold}");
            let reference = extract_fixed(
                &spec.model,
                &spec.triggers,
                &spec.projection,
                &spec.signature,
                spec.fold_average,
                &spec.cfg,
            );
            let expected_verdict = reference.errors as u64 <= spec.max_errors;
            assert_eq!(built.verdict, expected_verdict, "fold = {fold}");
        }
    }

    #[test]
    fn tight_threshold_flips_verdict() {
        let mut spec = tiny_spec(282, false);
        let reference = extract_fixed(
            &spec.model,
            &spec.triggers,
            &spec.projection,
            &spec.signature,
            false,
            &spec.cfg,
        );
        // random projection → some errors are overwhelmingly likely
        if reference.errors > 0 {
            spec.max_errors = reference.errors as u64 - 1;
            let built = spec.build();
            assert!(built.cs.is_satisfied().is_ok());
            assert!(!built.verdict);
        }
    }

    #[test]
    fn placeholder_has_same_structure() {
        let spec = tiny_spec(283, false);
        let built = spec.build();
        let dummy = spec.placeholder_witness().build();
        assert_eq!(
            built.cs.num_constraints(),
            dummy.cs.num_constraints(),
            "setup and proving circuits must agree"
        );
        assert_eq!(
            built.cs.num_instance_variables(),
            dummy.cs.num_instance_variables()
        );
        assert_eq!(
            built.cs.num_witness_variables(),
            dummy.cs.num_witness_variables()
        );
    }

    #[test]
    fn public_inputs_match_instance_assignment() {
        let spec = tiny_spec(284, false);
        let built = spec.build();
        let expected = spec.public_inputs(built.verdict);
        // instance_assignment[0] is the constant 1
        assert_eq!(built.cs.instance_assignment().len(), expected.len() + 1);
        for (got, want) in built.cs.instance_assignment()[1..].iter().zip(&expected) {
            assert_eq!(got, want);
        }
    }
}
