//! The unified error hierarchy for the ownership workflow.
//!
//! One enum covers every failure a party can hit — malformed wire bytes,
//! an unsatisfiable witness, a forged proof, a *valid* proof that merely
//! attests the watermark is absent, and circuit-identity mismatches — so
//! callers match on one type end to end instead of juggling `Option`s and
//! per-layer error enums.

use crate::artifact::{CircuitId, WireError};
use alloc::string::String;
use zkrownn_groth16::VerificationError;
use zkrownn_r1cs::SynthesisError;

/// Everything that can go wrong in the ZKROWNN workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum ZkrownnError {
    /// An artifact failed to decode (bad envelope, corrupted payload,
    /// invalid curve point, …).
    Wire(WireError),
    /// The witness does not satisfy the extraction circuit at the given row
    /// (internal bug — an honest spec always satisfies it; the *verdict*
    /// may still be 0).
    UnsatisfiedCircuit(usize),
    /// A proving-mode synthesis failed — e.g. the circuit was constructed
    /// without its witness (setup-side circuits cannot prove).
    Synthesis(SynthesisError),
    /// The proof does not verify: it is forged, tampered with, or bound to
    /// different public inputs (e.g. another model's weights).
    InvalidProof(VerificationError),
    /// The proof is *cryptographically valid* but attests verdict 0: the
    /// watermark was **not** recovered within the BER threshold. Distinct
    /// from [`Self::InvalidProof`] so a dispute can tell "forged claim"
    /// from "watermark genuinely absent".
    NegativeVerdict,
    /// The claim's statement is not the statement the verifier is bound
    /// to: the proof may be sound, but it is about a *different* model
    /// than the one under dispute.
    StatementMismatch,
    /// Artifacts disagree about which circuit they belong to.
    CircuitMismatch {
        /// The circuit id the verifier (or the claim's proof) expected.
        expected: CircuitId,
        /// The circuit id actually found.
        got: CircuitId,
    },
    /// No verifying key is registered for the claim's circuit.
    UnknownCircuit(CircuitId),
    /// A segmented key store (`.zkst`) could not be opened or streamed —
    /// I/O failure, corruption, or a key that does not match the circuit.
    /// Carries the rendered [`zkrownn_store::StoreError`] (this enum is
    /// `Clone + PartialEq`, which `std::io::Error` is not).
    Store(String),
}

impl core::fmt::Display for ZkrownnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "artifact decode failed: {e}"),
            Self::UnsatisfiedCircuit(i) => write!(f, "extraction circuit violated at row {i}"),
            Self::Synthesis(e) => write!(f, "circuit synthesis failed: {e}"),
            Self::InvalidProof(e) => write!(f, "ownership proof rejected: {e}"),
            Self::NegativeVerdict => write!(
                f,
                "proof is valid but attests a negative verdict (watermark not recovered)"
            ),
            Self::StatementMismatch => write!(
                f,
                "claim is about a different statement than the one under dispute"
            ),
            Self::CircuitMismatch { expected, got } => write!(
                f,
                "circuit mismatch: expected {}, got {}",
                expected.short(),
                got.short()
            ),
            Self::UnknownCircuit(id) => {
                write!(f, "no verifying key registered for circuit {}", id.short())
            }
            Self::Store(e) => write!(f, "key store failed: {e}"),
        }
    }
}

#[cfg(feature = "std")]
impl std::error::Error for ZkrownnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            Self::InvalidProof(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ZkrownnError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<SynthesisError> for ZkrownnError {
    fn from(e: SynthesisError) -> Self {
        Self::Synthesis(e)
    }
}

impl From<VerificationError> for ZkrownnError {
    fn from(e: VerificationError) -> Self {
        Self::InvalidProof(e)
    }
}

#[cfg(feature = "std")]
impl From<zkrownn_store::StoreError> for ZkrownnError {
    fn from(e: zkrownn_store::StoreError) -> Self {
        Self::Store(e.to_string())
    }
}
