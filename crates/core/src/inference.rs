//! Verifiable inference — the extension the paper closes with: "these
//! circuits can be combined to perform a myriad of tasks, including
//! verifiable machine learning inference".
//!
//! A model provider proves that the logits they returned for a *public*
//! input were computed by their *private* model: the weights stay witness,
//! the input and output logits are public. The same Dense/ReLU/Conv
//! gadgets as the extraction circuit are reused; only the
//! instance/witness split changes.

use crate::model::{QuantLayer, QuantizedModel};
use crate::reference::feed_forward_fixed;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::cmp::truncate;
use zkrownn_gadgets::conv::conv3d;
use zkrownn_gadgets::num::Num;
use zkrownn_gadgets::relu::relu_vec;
use zkrownn_r1cs::ConstraintSystem;

/// A verifiable-inference instance.
#[derive(Clone, Debug)]
pub struct InferenceSpec {
    /// The provider's quantized model (private witness).
    pub model: QuantizedModel,
    /// The query input (public).
    pub input: Vec<i128>,
}

/// A built inference circuit.
#[derive(Debug)]
pub struct BuiltInference {
    /// The populated constraint system.
    pub cs: ConstraintSystem<Fr>,
    /// The output logits the witness produces (public outputs).
    pub logits: Vec<i128>,
}

/// A built *class-only* inference circuit: the logits stay private and
/// only the argmax class index is exposed — a stronger privacy variant
/// (the confidence scores can leak information about the model).
#[derive(Debug)]
pub struct BuiltClassInference {
    /// The populated constraint system.
    pub cs: ConstraintSystem<Fr>,
    /// The predicted class (the only public output besides the query).
    pub class: usize,
}

impl InferenceSpec {
    /// Shape-compatible spec with a zeroed model, for trusted setup.
    pub fn placeholder_witness(&self) -> Self {
        let mut s = self.clone();
        for layer in s.model.layers.iter_mut() {
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    w.iter_mut().for_each(|v| *v = 0);
                    b.iter_mut().for_each(|v| *v = 0);
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {}
            }
        }
        s
    }

    /// Builds the inference circuit: public input → private feed-forward →
    /// public logits.
    pub fn build(&self) -> BuiltInference {
        let cfg = &self.model.cfg;
        let f = cfg.frac_bits;
        let act_bits = cfg.value_bits() + 2;
        let mut cs = ConstraintSystem::<Fr>::new();

        // public query input
        let input_nums: Vec<Num> = self
            .input
            .iter()
            .map(|&v| Num::alloc_instance(&mut cs, Fr::from_i128(v), cfg.value_bits()))
            .collect();

        // private model parameters
        let mut weight_nums: Vec<Vec<Num>> = Vec::new();
        let mut bias_nums: Vec<Vec<Num>> = Vec::new();
        for layer in &self.model.layers {
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    weight_nums.push(
                        w.iter()
                            .map(|&v| {
                                Num::alloc_witness(&mut cs, Fr::from_i128(v), cfg.value_bits())
                            })
                            .collect(),
                    );
                    bias_nums.push(
                        b.iter()
                            .map(|&v| {
                                Num::alloc_witness(&mut cs, Fr::from_i128(v), cfg.value_bits())
                            })
                            .collect(),
                    );
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {
                    weight_nums.push(Vec::new());
                    bias_nums.push(Vec::new());
                }
            }
        }

        // feed-forward (same fixed-point semantics as the extraction circuit)
        let mut act = input_nums;
        for (li, layer) in self.model.layers.iter().enumerate() {
            act = match layer {
                QuantLayer::Dense {
                    in_dim, out_dim, ..
                } => {
                    assert_eq!(act.len(), *in_dim);
                    let w = &weight_nums[li];
                    let b = &bias_nums[li];
                    (0..*out_dim)
                        .map(|o| {
                            let row: Vec<Num> = w[o * in_dim..(o + 1) * in_dim].to_vec();
                            let acc = Num::inner_product(&row, &act, &mut cs).add(&b[o].shl(f));
                            let mut out = truncate(&acc, f, &mut cs);
                            out.bits = out.bits.min(act_bits);
                            out
                        })
                        .collect()
                }
                QuantLayer::ReLU => relu_vec(&act, &mut cs),
                QuantLayer::Identity => act,
                QuantLayer::MaxPool {
                    channels,
                    height,
                    width,
                    size,
                    stride,
                } => zkrownn_gadgets::maxpool::maxpool2d(
                    &act, *channels, *height, *width, *size, *stride, &mut cs,
                ),
                QuantLayer::Conv { shape, .. } => {
                    let raw = conv3d(&act, &weight_nums[li], shape, &mut cs);
                    let (oh, ow) = (shape.out_height(), shape.out_width());
                    raw.iter()
                        .enumerate()
                        .map(|(idx, r)| {
                            let oc = idx / (oh * ow);
                            let acc = r.add(&bias_nums[li][oc].shl(f));
                            let mut out = truncate(&acc, f, &mut cs);
                            out.bits = out.bits.min(act_bits);
                            out
                        })
                        .collect()
                }
            };
        }

        // expose the logits as public outputs
        let logits: Vec<i128> = act
            .iter()
            .map(|num| {
                num.expose_as_output(&mut cs);
                num.value_i128()
            })
            .collect();

        BuiltInference { cs, logits }
    }

    /// Builds the class-only inference circuit: public input → private
    /// feed-forward → private logits → public argmax class. Uses the
    /// [`zkrownn_gadgets::cmp::enforce_argmax`] gadget: the circuit is only
    /// satisfiable if the exposed class really maximizes the logits.
    pub fn build_class_only(&self) -> BuiltClassInference {
        // run the plain build, then swap the exposure for an argmax proof
        // (rebuilding is simpler than threading a flag through; structure
        // stays assignment-independent either way)
        let cfg = &self.model.cfg;
        let f = cfg.frac_bits;
        let act_bits = cfg.value_bits() + 2;
        let mut cs = ConstraintSystem::<Fr>::new();
        let input_nums: Vec<Num> = self
            .input
            .iter()
            .map(|&v| Num::alloc_instance(&mut cs, Fr::from_i128(v), cfg.value_bits()))
            .collect();
        let mut weight_nums: Vec<Vec<Num>> = Vec::new();
        let mut bias_nums: Vec<Vec<Num>> = Vec::new();
        for layer in &self.model.layers {
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    weight_nums.push(
                        w.iter()
                            .map(|&v| {
                                Num::alloc_witness(&mut cs, Fr::from_i128(v), cfg.value_bits())
                            })
                            .collect(),
                    );
                    bias_nums.push(
                        b.iter()
                            .map(|&v| {
                                Num::alloc_witness(&mut cs, Fr::from_i128(v), cfg.value_bits())
                            })
                            .collect(),
                    );
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {
                    weight_nums.push(Vec::new());
                    bias_nums.push(Vec::new());
                }
            }
        }
        let mut act = input_nums;
        for (li, layer) in self.model.layers.iter().enumerate() {
            act = match layer {
                QuantLayer::Dense {
                    in_dim, out_dim, ..
                } => {
                    assert_eq!(act.len(), *in_dim);
                    let w = &weight_nums[li];
                    let b = &bias_nums[li];
                    (0..*out_dim)
                        .map(|o| {
                            let row: Vec<Num> = w[o * in_dim..(o + 1) * in_dim].to_vec();
                            let acc = Num::inner_product(&row, &act, &mut cs).add(&b[o].shl(f));
                            let mut out = truncate(&acc, f, &mut cs);
                            out.bits = out.bits.min(act_bits);
                            out
                        })
                        .collect()
                }
                QuantLayer::ReLU => relu_vec(&act, &mut cs),
                QuantLayer::Identity => act,
                QuantLayer::MaxPool {
                    channels,
                    height,
                    width,
                    size,
                    stride,
                } => zkrownn_gadgets::maxpool::maxpool2d(
                    &act, *channels, *height, *width, *size, *stride, &mut cs,
                ),
                QuantLayer::Conv { shape, .. } => {
                    let raw = conv3d(&act, &weight_nums[li], shape, &mut cs);
                    let (oh, ow) = (shape.out_height(), shape.out_width());
                    raw.iter()
                        .enumerate()
                        .map(|(idx, r)| {
                            let oc = idx / (oh * ow);
                            let acc = r.add(&bias_nums[li][oc].shl(f));
                            let mut out = truncate(&acc, f, &mut cs);
                            out.bits = out.bits.min(act_bits);
                            out
                        })
                        .collect()
                }
            };
        }
        // determine the class from the witness and enforce it in-circuit
        let class = act
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.value_i128())
            .map(|(i, _)| i)
            .expect("non-empty logits");
        zkrownn_gadgets::cmp::enforce_argmax(&act, class, &mut cs);
        let class_num = Num::constant(Fr::from_i128(class as i128));
        class_num.expose_as_output(&mut cs);
        BuiltClassInference { cs, class }
    }

    /// The verifier's public input vector for a class-only proof: the query
    /// followed by the claimed class index.
    pub fn public_inputs_class(&self, class: usize) -> Vec<Fr> {
        let mut out: Vec<Fr> = self.input.iter().map(|&v| Fr::from_i128(v)).collect();
        out.push(Fr::from_i128(class as i128));
        out
    }

    /// The verifier's public input vector: the query input followed by the
    /// claimed logits.
    pub fn public_inputs(&self, logits: &[i128]) -> Vec<Fr> {
        let mut out: Vec<Fr> = self.input.iter().map(|&v| Fr::from_i128(v)).collect();
        out.extend(logits.iter().map(|&v| Fr::from_i128(v)));
        out
    }

    /// Reference logits (bit-identical to the circuit).
    pub fn expected_logits(&self) -> Vec<i128> {
        feed_forward_fixed(&self.model, &self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuantizedModel;
    use rand::SeedableRng;
    use zkrownn_gadgets::FixedConfig;
    use zkrownn_groth16::{create_proof, generate_parameters, verify_proof};
    use zkrownn_nn::{Dense, Layer, Network};

    fn tiny_inference(seed: u64) -> InferenceSpec {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(8, 6, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(6, 3, &mut rng)),
        ]);
        let cfg = FixedConfig::default();
        let model = QuantizedModel::from_network(&net, 2, 8, &cfg);
        let input: Vec<i128> = (0..8).map(|i| cfg.encode((i as f64 - 4.0) / 3.0)).collect();
        InferenceSpec { model, input }
    }

    #[test]
    fn circuit_logits_match_reference() {
        let spec = tiny_inference(401);
        let built = spec.build();
        assert!(built.cs.is_satisfied().is_ok());
        assert_eq!(built.logits, spec.expected_logits());
    }

    #[test]
    fn inference_proof_roundtrip() {
        let spec = tiny_inference(402);
        let built = spec.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(403);
        let pk = generate_parameters(&built.cs.to_matrices(), &mut rng);
        let proof = create_proof(&pk, &built.cs, &mut rng);
        let publics = spec.public_inputs(&built.logits);
        assert!(verify_proof(&pk.vk, &proof, &publics).is_ok());
        // forged logits are rejected
        let mut wrong = built.logits.clone();
        wrong[0] += 1;
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs(&wrong)).is_err());
    }

    #[test]
    fn class_only_inference_roundtrip() {
        let spec = tiny_inference(405);
        let built = spec.build_class_only();
        assert!(built.cs.is_satisfied().is_ok());
        // the class matches the reference argmax
        let expected = spec.expected_logits();
        let ref_class = expected
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(built.class, ref_class);
        // prove & verify; wrong class rejected
        let mut rng = rand::rngs::StdRng::seed_from_u64(406);
        let pk = generate_parameters(&built.cs.to_matrices(), &mut rng);
        let proof = create_proof(&pk, &built.cs, &mut rng);
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs_class(built.class)).is_ok());
        let wrong = (built.class + 1) % expected.len();
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs_class(wrong)).is_err());
    }

    #[test]
    fn placeholder_matches_structure() {
        let spec = tiny_inference(404);
        let a = spec.build();
        let b = spec.placeholder_witness().build();
        assert_eq!(a.cs.num_constraints(), b.cs.num_constraints());
        assert_eq!(a.cs.num_witness_variables(), b.cs.num_witness_variables());
    }
}
