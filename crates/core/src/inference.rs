//! Verifiable inference — the extension the paper closes with: "these
//! circuits can be combined to perform a myriad of tasks, including
//! verifiable machine learning inference".
//!
//! A model provider proves that the logits they returned for a *public*
//! input were computed by their *private* model: the weights stay witness,
//! the input and output logits are public. The same Dense/ReLU/Conv
//! gadgets as the extraction circuit are reused; only the
//! instance/witness split changes. Both variants implement the
//! mode-agnostic `Circuit` trait, so trusted setup runs witness-free and
//! `groth16::{generate_parameters, create_proof}` consume them directly.

use crate::model::{QuantLayer, QuantizedModel};
use crate::reference::feed_forward_fixed;
use alloc::vec::Vec;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_gadgets::num::Num;
use zkrownn_r1cs::{Circuit, ConstraintSystem, ProvingSynthesizer, SynthesisError};

/// A verifiable-inference instance.
#[derive(Clone, Debug)]
pub struct InferenceSpec {
    /// The provider's quantized model (private witness).
    pub model: QuantizedModel,
    /// The query input (public).
    pub input: Vec<i128>,
}

/// A built inference circuit.
#[derive(Debug)]
pub struct BuiltInference {
    /// The populated proving-mode constraint system.
    pub cs: ProvingSynthesizer<Fr>,
    /// The output logits the witness produces (public outputs).
    pub logits: Vec<i128>,
}

/// A built *class-only* inference circuit: the logits stay private and
/// only the argmax class index is exposed — a stronger privacy variant
/// (the confidence scores can leak information about the model).
#[derive(Debug)]
pub struct BuiltClassInference {
    /// The populated proving-mode constraint system.
    pub cs: ProvingSynthesizer<Fr>,
    /// The predicted class (the only public output besides the query).
    pub class: usize,
}

/// Shared body: public query input → private model parameters →
/// feed-forward activations (same fixed-point semantics as the extraction
/// circuit). Returns the output-layer activations for the caller to expose.
fn synthesize_feed_forward<CS: ConstraintSystem<Fr>>(
    spec: &InferenceSpec,
    cs: &mut CS,
) -> Result<Vec<Num>, SynthesisError> {
    let cfg = &spec.model.cfg;

    // public query input
    let input_nums: Vec<Num> = {
        let mut ns = cs.ns("query");
        spec.input
            .iter()
            .map(|&v| Num::alloc_instance(&mut ns, || Ok(Fr::from_i128(v)), cfg.value_bits()))
            .collect::<Result<_, _>>()?
    };

    // private model parameters
    let mut weight_nums: Vec<Vec<Num>> = Vec::new();
    let mut bias_nums: Vec<Vec<Num>> = Vec::new();
    {
        let mut ns = cs.ns("model-params");
        for layer in &spec.model.layers {
            match layer {
                QuantLayer::Dense { w, b, .. } | QuantLayer::Conv { w, b, .. } => {
                    weight_nums.push(
                        w.iter()
                            .map(|&v| {
                                Num::alloc_witness(
                                    &mut ns,
                                    || Ok(Fr::from_i128(v)),
                                    cfg.value_bits(),
                                )
                            })
                            .collect::<Result<_, _>>()?,
                    );
                    bias_nums.push(
                        b.iter()
                            .map(|&v| {
                                Num::alloc_witness(
                                    &mut ns,
                                    || Ok(Fr::from_i128(v)),
                                    cfg.value_bits(),
                                )
                            })
                            .collect::<Result<_, _>>()?,
                    );
                }
                QuantLayer::ReLU | QuantLayer::Identity | QuantLayer::MaxPool { .. } => {
                    weight_nums.push(Vec::new());
                    bias_nums.push(Vec::new());
                }
            }
        }
    }

    // feed-forward (shared with the extraction circuit)
    let mut ff = cs.ns("feed-forward");
    crate::circuit::feed_forward_layers(
        &spec.model,
        cfg,
        &weight_nums,
        &bias_nums,
        input_nums,
        &mut ff,
    )
}

impl Circuit<Fr> for InferenceSpec {
    /// The output logits under the assignment (`None` per element never
    /// occurs — either the whole synthesis is witnessing or it isn't).
    type Output = Option<Vec<i128>>;

    fn synthesize<CS: ConstraintSystem<Fr>>(
        &self,
        cs: &mut CS,
    ) -> Result<Option<Vec<i128>>, SynthesisError> {
        let act = synthesize_feed_forward(self, cs)?;
        // expose the logits as public outputs
        let mut ns = cs.ns("logits");
        let mut logits = Some(Vec::with_capacity(act.len()));
        for num in &act {
            num.expose_as_output(&mut ns)?;
            logits = logits.take().and_then(|mut l| {
                let v = num.value?.to_i128().expect("bounded");
                l.push(v);
                Some(l)
            });
        }
        Ok(logits)
    }
}

/// The class-only variant: same feed-forward, but the logits stay private
/// and the circuit instead proves `logits[class]` is a maximum. The claimed
/// `class` is a public *parameter of the circuit structure* (computed
/// out-of-circuit from the reference feed-forward), not a witness — so
/// each claimed class has its own `CircuitId`, as it must: the constraint
/// wiring differs.
#[derive(Clone, Debug)]
pub struct ClassInferenceCircuit<'a> {
    /// The underlying model + query.
    pub spec: &'a InferenceSpec,
    /// The claimed argmax class.
    pub class: usize,
}

impl Circuit<Fr> for ClassInferenceCircuit<'_> {
    type Output = ();

    fn synthesize<CS: ConstraintSystem<Fr>>(&self, cs: &mut CS) -> Result<(), SynthesisError> {
        let act = synthesize_feed_forward(self.spec, cs)?;
        let mut ns = cs.ns("argmax");
        zkrownn_gadgets::cmp::enforce_argmax(&act, self.class, &mut ns)?;
        let class_num = Num::constant(Fr::from_i128(self.class as i128));
        class_num.expose_as_output(&mut ns)?;
        Ok(())
    }
}

impl InferenceSpec {
    /// Synthesizes the inference circuit in proving mode: public input →
    /// private feed-forward → public logits.
    pub fn build(&self) -> Result<BuiltInference, SynthesisError> {
        let mut cs = ProvingSynthesizer::new();
        let logits = self.synthesize(&mut cs)?;
        Ok(BuiltInference {
            cs,
            logits: logits.expect("proving synthesis evaluates every assignment"),
        })
    }

    /// The class-only circuit for a claimed class (use
    /// [`InferenceSpec::expected_logits`]' argmax for an honest claim).
    pub fn class_circuit(&self, class: usize) -> ClassInferenceCircuit<'_> {
        ClassInferenceCircuit { spec: self, class }
    }

    /// Synthesizes the class-only inference circuit in proving mode,
    /// claiming the reference argmax class: public input → private
    /// feed-forward → private logits → public argmax class. The circuit is
    /// only satisfiable if the exposed class really maximizes the logits.
    pub fn build_class_only(&self) -> Result<BuiltClassInference, SynthesisError> {
        let logits = self.expected_logits();
        let class = logits
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .expect("non-empty logits");
        let mut cs = ProvingSynthesizer::new();
        self.class_circuit(class).synthesize(&mut cs)?;
        Ok(BuiltClassInference { cs, class })
    }

    /// The verifier's public input vector for a class-only proof: the query
    /// followed by the claimed class index.
    pub fn public_inputs_class(&self, class: usize) -> Vec<Fr> {
        let mut out: Vec<Fr> = self.input.iter().map(|&v| Fr::from_i128(v)).collect();
        out.push(Fr::from_i128(class as i128));
        out
    }

    /// The verifier's public input vector: the query input followed by the
    /// claimed logits.
    pub fn public_inputs(&self, logits: &[i128]) -> Vec<Fr> {
        let mut out: Vec<Fr> = self.input.iter().map(|&v| Fr::from_i128(v)).collect();
        out.extend(logits.iter().map(|&v| Fr::from_i128(v)));
        out
    }

    /// Reference logits (bit-identical to the circuit).
    pub fn expected_logits(&self) -> Vec<i128> {
        feed_forward_fixed(&self.model, &self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QuantizedModel;
    use rand::SeedableRng;
    use zkrownn_gadgets::FixedConfig;
    use zkrownn_groth16::{create_proof_from_cs, generate_parameters, verify_proof};
    use zkrownn_nn::{Dense, Layer, Network};
    use zkrownn_r1cs::SetupSynthesizer;

    fn tiny_inference(seed: u64) -> InferenceSpec {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(8, 6, &mut rng)),
            Layer::ReLU,
            Layer::Dense(Dense::new(6, 3, &mut rng)),
        ]);
        let cfg = FixedConfig::default();
        let model = QuantizedModel::from_network(&net, 2, 8, &cfg);
        let input: Vec<i128> = (0..8).map(|i| cfg.encode((i as f64 - 4.0) / 3.0)).collect();
        InferenceSpec { model, input }
    }

    #[test]
    fn circuit_logits_match_reference() {
        let spec = tiny_inference(401);
        let built = spec.build().unwrap();
        assert!(built.cs.is_satisfied().is_ok());
        assert_eq!(built.logits, spec.expected_logits());
    }

    #[test]
    fn inference_proof_roundtrip() {
        let spec = tiny_inference(402);
        let built = spec.build().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(403);
        let pk = generate_parameters(&spec, &mut rng).unwrap();
        let proof = create_proof_from_cs(&pk, &built.cs, &mut rng);
        let publics = spec.public_inputs(&built.logits);
        assert!(verify_proof(&pk.vk, &proof, &publics).is_ok());
        // forged logits are rejected
        let mut wrong = built.logits.clone();
        wrong[0] += 1;
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs(&wrong)).is_err());
    }

    #[test]
    fn class_only_inference_roundtrip() {
        let spec = tiny_inference(405);
        let built = spec.build_class_only().unwrap();
        assert!(built.cs.is_satisfied().is_ok());
        // the class matches the reference argmax
        let expected = spec.expected_logits();
        let ref_class = expected
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(built.class, ref_class);
        // prove & verify; wrong class rejected
        let mut rng = rand::rngs::StdRng::seed_from_u64(406);
        let pk = generate_parameters(&spec.class_circuit(built.class), &mut rng).unwrap();
        let proof = create_proof_from_cs(&pk, &built.cs, &mut rng);
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs_class(built.class)).is_ok());
        let wrong = (built.class + 1) % expected.len();
        assert!(verify_proof(&pk.vk, &proof, &spec.public_inputs_class(wrong)).is_err());
    }

    #[test]
    fn setup_synthesis_matches_proving_structure() {
        let spec = tiny_inference(404);
        let built = spec.build().unwrap();
        let mut setup = SetupSynthesizer::<Fr>::new();
        spec.synthesize(&mut setup).unwrap();
        assert_eq!(built.cs.num_constraints(), setup.num_constraints());
        assert_eq!(
            built.cs.num_witness_variables(),
            setup.num_witness_variables()
        );
    }
}
