//! The verifier-side key registry: cached pairing precomputation and
//! amortized batch verification.
//!
//! A verification service receives many claims from many claimants, most of
//! them against a handful of circuits (one per disputed model family). Three
//! costs dominate a naive per-claim loop and are amortizable:
//!
//! * **pairing precomputation** — `VerifyingKey::prepare` runs `e(α, β)`
//!   and the G2 line precomputations; the [`KeyRegistry`] does it once per
//!   [`CircuitId`] and caches the result;
//! * **input preparation** — folding the suspect model's parameters into
//!   the instance commitment (one MSM over the key's `γ_abc` bases);
//!   [`KeyRegistry::verify_batch`] does it once per distinct
//!   statement-and-verdict, not once per claim — including on the
//!   per-claim fallback path after a failed combined check;
//! * **final exponentiations** — `verify_batch` folds all positive
//!   same-circuit claims into one random-linear-combination pairing check
//!   (`2n + 2` Miller loops and one final exponentiation instead of `3n`
//!   and `n`), falling back to per-claim verification only when the
//!   combined check fails — so a batch with a single forged claim still
//!   yields precise per-claim verdicts.
//!
//! For concurrent servers (many worker threads verifying independently),
//! [`ShardedKeyRegistry`] wraps the same cache in `CircuitId`-sharded
//! reader-writer locks: registration takes a per-shard write lock,
//! verification takes shared read locks, and claims for different circuits
//! never contend.
//!
//! Note that the registry authenticates each claim against the statement
//! *it carries*: `Ok(())` means "the watermark is in the model the claimant
//! described". A service adjudicating a dispute over one specific model
//! must additionally pin claims to that model's statement — compare
//! `claim.statement.content_digest()` against the disputed statement's
//! digest, as [`crate::VerifierKit::bind_statement`] does for the
//! single-kit path.

use crate::artifact::CircuitId;
use crate::error::ZkrownnError;
use crate::verify::{
    check_proof_circuit, check_statement_circuit, verify_claim_prepared, SignedClaim, VerifierKit,
};
use std::collections::HashMap;
use std::sync::RwLock;
use zkrownn_groth16::{
    prepare_inputs, verify_proof_with_prepared_inputs, verify_proofs_batch_prepared,
    PreparedInputs, PreparedVerifyingKey, Proof, VerificationError, VerifyingKey,
};

/// A cache of prepared verifying keys, indexed by circuit id.
#[derive(Default)]
pub struct KeyRegistry {
    prepared: HashMap<CircuitId, PreparedVerifyingKey>,
    preparations: usize,
}

/// Per-distinct-statement cache entry inside one `verify_batch` group: the
/// statement's (re-synthesized) circuit id plus the instance commitment for
/// each verdict value, prepared at most once and reused by the combined
/// check *and* the per-claim fallback.
struct StatementEntry {
    statement_id: CircuitId,
    inputs: [Option<Result<PreparedInputs, VerificationError>>; 2],
}

impl KeyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a verifying key for a circuit, preparing it (pairing
    /// precomputation) unless that circuit is already cached. Returns
    /// `true` if the key was newly prepared.
    pub fn register(&mut self, id: CircuitId, vk: &VerifyingKey) -> bool {
        if self.prepared.contains_key(&id) {
            return false;
        }
        self.prepared.insert(id, vk.prepare());
        self.preparations += 1;
        true
    }

    /// Registers a [`VerifierKit`]'s key under its circuit id.
    pub fn register_kit(&mut self, kit: &VerifierKit) -> bool {
        self.register(kit.circuit_id(), kit.verifying_key())
    }

    /// Whether a circuit's key is registered.
    pub fn contains(&self, id: CircuitId) -> bool {
        self.prepared.contains_key(&id)
    }

    /// Number of registered circuits.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }

    /// How many pairing precomputations this registry has run — one per
    /// registered circuit, however many claims are verified against it.
    pub fn preparations(&self) -> usize {
        self.preparations
    }

    /// Verifies a single claim against the registered keys.
    pub fn verify(&self, claim: &SignedClaim) -> Result<(), ZkrownnError> {
        let id = claim.circuit_id();
        let pvk = self
            .prepared
            .get(&id)
            .ok_or(ZkrownnError::UnknownCircuit(id))?;
        verify_claim_prepared(pvk, id, claim)
    }

    /// Verifies many claims, amortizing everything amortizable, and returns
    /// one `Result` per claim (index-aligned with `claims`).
    ///
    /// Claims are grouped by circuit id; within a group, the instance
    /// commitment (the public-input MSM) is prepared once per distinct
    /// statement and verdict, and all positive claims are checked with a
    /// single random-linear-combination pairing equation (coefficients
    /// drawn from `rng`). If the combined check fails, the group falls back
    /// to per-claim verification — reusing the already-prepared commitments
    /// — so exactly the bad claims are flagged. Negative-verdict claims are
    /// verified individually and reported as
    /// [`ZkrownnError::NegativeVerdict`] when their proof is sound (a
    /// forged negative claim still reports [`ZkrownnError::InvalidProof`]).
    pub fn verify_batch<R: rand::Rng + ?Sized>(
        &self,
        claims: &[SignedClaim],
        rng: &mut R,
    ) -> Vec<Result<(), ZkrownnError>> {
        let refs: Vec<&SignedClaim> = claims.iter().collect();
        self.verify_batch_refs(&refs, rng)
    }

    /// [`Self::verify_batch`] over borrowed claims — what sharded and
    /// service front ends call after partitioning a mixed batch without
    /// cloning statements around.
    pub fn verify_batch_refs<R: rand::Rng + ?Sized>(
        &self,
        claims: &[&SignedClaim],
        rng: &mut R,
    ) -> Vec<Result<(), ZkrownnError>> {
        let mut results: Vec<Result<(), ZkrownnError>> = vec![Ok(()); claims.len()];

        // group by the circuit the proof names
        let mut groups: HashMap<CircuitId, Vec<usize>> = HashMap::new();
        for (i, claim) in claims.iter().enumerate() {
            groups.entry(claim.circuit_id()).or_default().push(i);
        }

        for (id, indices) in groups {
            let Some(pvk) = self.prepared.get(&id) else {
                for i in indices {
                    results[i] = Err(ZkrownnError::UnknownCircuit(id));
                }
                continue;
            };

            // per distinct statement: the circuit id (one setup-mode
            // synthesis) and the per-verdict instance commitments, all
            // computed at most once for the whole group — combined check
            // and fallback included
            let mut statement_cache: HashMap<[u8; 32], StatementEntry> = HashMap::new();
            // positive claims eligible for the combined pairing check,
            // built directly in the shape `verify_proofs_batch_prepared`
            // consumes
            let mut positive_idx: Vec<usize> = Vec::new();
            let mut batch: Vec<(Proof, PreparedInputs)> = Vec::new();

            for i in indices {
                let claim = claims[i];
                if let Err(e) = check_proof_circuit(id, claim) {
                    results[i] = Err(e);
                    continue;
                }
                let entry = statement_cache
                    .entry(claim.statement.content_digest())
                    .or_insert_with(|| StatementEntry {
                        statement_id: claim.statement.circuit_id(),
                        inputs: [None, None],
                    });
                if let Err(e) = check_statement_circuit(id, entry.statement_id) {
                    results[i] = Err(e);
                    continue;
                }
                let verdict = claim.proof.verdict;
                let prepared = entry.inputs[usize::from(verdict)]
                    .get_or_insert_with(|| {
                        prepare_inputs(pvk, &claim.statement.public_inputs(verdict))
                    })
                    .clone();
                let prepared = match prepared {
                    Ok(p) => p,
                    Err(e) => {
                        results[i] = Err(ZkrownnError::InvalidProof(e));
                        continue;
                    }
                };
                if verdict {
                    positive_idx.push(i);
                    batch.push((claim.proof.proof.clone(), prepared));
                } else {
                    // sound-but-negative vs. forged must stay distinguishable,
                    // so negatives are never folded into the combined check
                    results[i] =
                        match verify_proof_with_prepared_inputs(pvk, &claim.proof.proof, &prepared)
                        {
                            Ok(()) => Err(ZkrownnError::NegativeVerdict),
                            Err(e) => Err(ZkrownnError::InvalidProof(e)),
                        };
                }
            }

            if batch.is_empty() {
                continue;
            }
            match verify_proofs_batch_prepared(pvk, &batch, rng) {
                Ok(()) => {} // every positive claim verified (already Ok)
                Err(_) => {
                    // locate the bad claims individually; the prepared
                    // commitments ride along from the combined attempt
                    for (i, (proof, prepared)) in positive_idx.iter().zip(&batch) {
                        results[*i] = verify_proof_with_prepared_inputs(pvk, proof, prepared)
                            .map_err(ZkrownnError::InvalidProof);
                    }
                }
            }
        }
        results
    }
}

/// Number of circuit shards — a power of two so the shard index is a mask
/// over the (uniform) circuit-id digest bytes. Sixteen keeps write
/// contention negligible for realistic circuit catalogs while staying
/// cache-friendly to iterate.
pub const REGISTRY_SHARDS: usize = 16;

/// A concurrent, `CircuitId`-sharded [`KeyRegistry`] for multi-threaded
/// verification services.
///
/// Every operation takes `&self`: registration write-locks only the shard
/// the circuit hashes to, and verification takes shared read locks, so
/// worker threads serving different circuits never contend and workers
/// serving the *same* circuit share the cached [`PreparedVerifyingKey`]
/// without cloning it. The type is `Send + Sync` by construction (asserted
/// at compile time) — wrap it in an `Arc` and hand it to every worker.
pub struct ShardedKeyRegistry {
    shards: Vec<RwLock<KeyRegistry>>,
}

impl Default for ShardedKeyRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedKeyRegistry {
    /// An empty sharded registry with [`REGISTRY_SHARDS`] shards.
    pub fn new() -> Self {
        Self {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| RwLock::new(KeyRegistry::new()))
                .collect(),
        }
    }

    /// The shard index a circuit id lives in.
    pub fn shard_of(id: CircuitId) -> usize {
        id.as_bytes()[0] as usize & (REGISTRY_SHARDS - 1)
    }

    fn shard(&self, id: CircuitId) -> &RwLock<KeyRegistry> {
        &self.shards[Self::shard_of(id)]
    }

    /// Registers a verifying key for a circuit (write-locking only its
    /// shard). Returns `true` if the key was newly prepared.
    pub fn register(&self, id: CircuitId, vk: &VerifyingKey) -> bool {
        self.shard(id)
            .write()
            .expect("shard poisoned")
            .register(id, vk)
    }

    /// Registers a [`VerifierKit`]'s key under its circuit id.
    pub fn register_kit(&self, kit: &VerifierKit) -> bool {
        self.register(kit.circuit_id(), kit.verifying_key())
    }

    /// Whether a circuit's key is registered.
    pub fn contains(&self, id: CircuitId) -> bool {
        self.shard(id).read().expect("shard poisoned").contains(id)
    }

    /// Number of registered circuits (sums all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no circuit is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pairing precomputations across all shards.
    pub fn preparations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").preparations())
            .sum()
    }

    /// Verifies a single claim (read-locking only its circuit's shard).
    pub fn verify(&self, claim: &SignedClaim) -> Result<(), ZkrownnError> {
        self.shard(claim.circuit_id())
            .read()
            .expect("shard poisoned")
            .verify(claim)
    }

    /// Verifies many claims, amortizing per-circuit work exactly like
    /// [`KeyRegistry::verify_batch`]; claims are partitioned per shard so
    /// only the shards actually referenced are read-locked.
    pub fn verify_batch<R: rand::Rng + ?Sized>(
        &self,
        claims: &[SignedClaim],
        rng: &mut R,
    ) -> Vec<Result<(), ZkrownnError>> {
        let mut results: Vec<Result<(), ZkrownnError>> = vec![Ok(()); claims.len()];
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); REGISTRY_SHARDS];
        for (i, claim) in claims.iter().enumerate() {
            per_shard[Self::shard_of(claim.circuit_id())].push(i);
        }
        for (shard_idx, indices) in per_shard.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let refs: Vec<&SignedClaim> = indices.iter().map(|&i| &claims[i]).collect();
            let shard_results = self.shards[shard_idx]
                .read()
                .expect("shard poisoned")
                .verify_batch_refs(&refs, rng);
            for (i, r) in indices.into_iter().zip(shard_results) {
                results[i] = r;
            }
        }
        results
    }
}

// The whole point of the sharded registry is to be shared across worker
// threads; lock it in at compile time so a non-Send field can never sneak
// into the prepared-key cache unnoticed.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedKeyRegistry>();
    assert_send_sync::<KeyRegistry>();
    assert_send_sync::<PreparedVerifyingKey>();
};
