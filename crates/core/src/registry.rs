//! The verifier-side key registry: cached pairing precomputation and
//! amortized batch verification.
//!
//! A verification service receives many claims from many claimants, most of
//! them against a handful of circuits (one per disputed model family). Two
//! costs dominate a naive per-claim loop and are amortizable:
//!
//! * **pairing precomputation** — `VerifyingKey::prepare` runs `e(α, β)`
//!   and the G2 line precomputations; the [`KeyRegistry`] does it once per
//!   [`CircuitId`] and caches the result;
//! * **input preparation** — embedding the suspect model's parameters into
//!   the scalar field; [`KeyRegistry::verify_batch`] does it once per
//!   distinct statement, not once per claim.
//!
//! On top of that, `verify_batch` folds all positive same-circuit claims
//! into one random-linear-combination pairing check (`2n + 2` Miller loops
//! instead of `3n`), falling back to per-claim verification only when the
//! combined check fails — so a batch with a single forged claim still
//! yields precise per-claim verdicts.
//!
//! Note that the registry authenticates each claim against the statement
//! *it carries*: `Ok(())` means "the watermark is in the model the claimant
//! described". A service adjudicating a dispute over one specific model
//! must additionally pin claims to that model's statement — compare
//! `claim.statement.content_digest()` against the disputed statement's
//! digest, as [`crate::VerifierKit::bind_statement`] does for the
//! single-kit path.

use crate::artifact::CircuitId;
use crate::error::ZkrownnError;
use crate::session::{
    check_proof_circuit, check_statement_circuit, verify_claim_prepared, SignedClaim, VerifierKit,
};
use std::collections::HashMap;
use zkrownn_ff::{Fr, PrimeField};
use zkrownn_groth16::{
    verify_proof_prepared, verify_proofs_batch, PreparedVerifyingKey, Proof, VerifyingKey,
};

/// A cache of prepared verifying keys, indexed by circuit id.
#[derive(Default)]
pub struct KeyRegistry {
    prepared: HashMap<CircuitId, PreparedVerifyingKey>,
    preparations: usize,
}

impl KeyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a verifying key for a circuit, preparing it (pairing
    /// precomputation) unless that circuit is already cached. Returns
    /// `true` if the key was newly prepared.
    pub fn register(&mut self, id: CircuitId, vk: &VerifyingKey) -> bool {
        if self.prepared.contains_key(&id) {
            return false;
        }
        self.prepared.insert(id, vk.prepare());
        self.preparations += 1;
        true
    }

    /// Registers a [`VerifierKit`]'s key under its circuit id.
    pub fn register_kit(&mut self, kit: &VerifierKit) -> bool {
        self.register(kit.circuit_id(), kit.verifying_key())
    }

    /// Whether a circuit's key is registered.
    pub fn contains(&self, id: CircuitId) -> bool {
        self.prepared.contains_key(&id)
    }

    /// Number of registered circuits.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }

    /// How many pairing precomputations this registry has run — one per
    /// registered circuit, however many claims are verified against it.
    pub fn preparations(&self) -> usize {
        self.preparations
    }

    /// Verifies a single claim against the registered keys.
    pub fn verify(&self, claim: &SignedClaim) -> Result<(), ZkrownnError> {
        let id = claim.circuit_id();
        let pvk = self
            .prepared
            .get(&id)
            .ok_or(ZkrownnError::UnknownCircuit(id))?;
        verify_claim_prepared(pvk, id, claim)
    }

    /// Verifies many claims, amortizing everything amortizable, and returns
    /// one `Result` per claim (index-aligned with `claims`).
    ///
    /// Claims are grouped by circuit id; within a group, public-input
    /// vectors are prepared once per distinct statement, and all positive
    /// claims are checked with a single random-linear-combination pairing
    /// equation (coefficients drawn from `rng`). If the combined check
    /// fails, the group falls back to per-claim verification so exactly the
    /// bad claims are flagged. Negative-verdict claims are verified
    /// individually and reported as [`ZkrownnError::NegativeVerdict`] when
    /// their proof is sound (a forged negative claim still reports
    /// [`ZkrownnError::InvalidProof`]).
    pub fn verify_batch<R: rand::Rng + ?Sized>(
        &self,
        claims: &[SignedClaim],
        rng: &mut R,
    ) -> Vec<Result<(), ZkrownnError>> {
        let mut results: Vec<Result<(), ZkrownnError>> = vec![Ok(()); claims.len()];

        // group by the circuit the proof names
        let mut groups: HashMap<CircuitId, Vec<usize>> = HashMap::new();
        for (i, claim) in claims.iter().enumerate() {
            groups.entry(claim.circuit_id()).or_default().push(i);
        }

        for (id, indices) in groups {
            let Some(pvk) = self.prepared.get(&id) else {
                for i in indices {
                    results[i] = Err(ZkrownnError::UnknownCircuit(id));
                }
                continue;
            };

            // per distinct statement: the circuit id (one setup-mode
            // synthesis) and the prepared public-input prefix, both cached
            let mut statement_cache: HashMap<[u8; 32], (CircuitId, Vec<Fr>)> = HashMap::new();
            // positive claims eligible for the combined pairing check,
            // built directly in the shape `verify_proofs_batch` consumes
            let mut positive_idx: Vec<usize> = Vec::new();
            let mut batch: Vec<(Proof, Vec<Fr>)> = Vec::new();

            for i in indices {
                let claim = &claims[i];
                if let Err(e) = check_proof_circuit(id, claim) {
                    results[i] = Err(e);
                    continue;
                }
                let (statement_id, params) = statement_cache
                    .entry(claim.statement.content_digest())
                    .or_insert_with(|| {
                        (claim.statement.circuit_id(), claim.statement.model_inputs())
                    });
                if let Err(e) = check_statement_circuit(id, *statement_id) {
                    results[i] = Err(e);
                    continue;
                }
                let mut inputs = params.clone();
                inputs.push(Fr::from_i128(i128::from(claim.proof.verdict)));
                if claim.proof.verdict {
                    positive_idx.push(i);
                    batch.push((claim.proof.proof.clone(), inputs));
                } else {
                    // sound-but-negative vs. forged must stay distinguishable,
                    // so negatives are never folded into the combined check
                    results[i] = match verify_proof_prepared(pvk, &claim.proof.proof, &inputs) {
                        Ok(()) => Err(ZkrownnError::NegativeVerdict),
                        Err(e) => Err(ZkrownnError::InvalidProof(e)),
                    };
                }
            }

            if batch.is_empty() {
                continue;
            }
            match verify_proofs_batch(pvk, &batch, rng) {
                Ok(()) => {} // every positive claim verified (already Ok)
                Err(_) => {
                    // locate the bad claims individually
                    for (i, (proof, inputs)) in positive_idx.iter().zip(&batch) {
                        results[*i] = verify_proof_prepared(pvk, proof, inputs)
                            .map_err(ZkrownnError::InvalidProof);
                    }
                }
            }
        }
        results
    }
}
